"""CLAIM-MELODY — §6's music queries.

``sub_select([A??F])(L)`` and the ``all_anc`` context query over songs
of growing length, naive scan vs the position-index plan the optimizer
produces.  Expected shape: naive grows linearly with song length at
fixed match count; the indexed plan grows with the number of A-notes.
"""

from __future__ import annotations

import pytest

from repro.algebra import all_anc_list, split_list_pieces, sub_select_list
from repro.api import Session
from repro.physical import lower, operators as P
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import by_pitch, song_with_melody

MELODY = ["A", "C", "D", "F"]


@pytest.mark.parametrize("length", [200, 1000, 5000])
def test_claim_melody_naive(benchmark, length):
    song = song_with_melody(length, MELODY, occurrences=4, seed=length)
    result = benchmark(sub_select_list, "[A??F]", song, by_pitch)
    assert len(result) == 4


@pytest.mark.parametrize("length", [200, 1000, 5000])
def test_claim_melody_indexed(benchmark, length):
    song = song_with_melody(length, MELODY, occurrences=4, seed=length)
    db = Database()
    db.bind_root("song", song)
    db.list_index(song, ["pitch"])
    query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()
    assert type(lower(query, db, choose_access_paths=True).root) is P.ListAnchorScan
    session = Session(db)
    result = benchmark(session.query, query, optimize=True)
    assert len(result) == 4


def test_claim_melody_counters():
    from repro import config

    song = song_with_melody(5000, MELODY, occurrences=4, seed=1)
    db = Database()
    db.bind_root("song", song)
    query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()

    # Pin the columnar kernel off for the naive leg: its shift-AND pass
    # would serve the scan from predicate columns and the position
    # counter would measure the kernel, not the scan.
    with config.columnar_scope("off"), db.stats.scope():
        evaluate(query, db)
        naive_positions = db.stats["positions_scanned"]

    session = Session(db)
    with db.stats.scope():
        session.query(query, optimize=True)
        indexed_positions = db.stats["positions_scanned"]

    assert naive_positions == 5000 + 4 * len(MELODY) + 1
    assert indexed_positions < naive_positions / 100


@pytest.mark.parametrize("length", [500, 2000])
def test_claim_melody_all_anc(benchmark, length):
    song = song_with_melody(length, MELODY, occurrences=3, seed=length + 1)
    result = benchmark(
        all_anc_list,
        "[A??F]",
        lambda before, melody: (len(before), len(melody)),
        song,
        by_pitch,
    )
    assert len(result) == 3


@pytest.mark.parametrize("length", [500, 2000])
def test_claim_melody_split_reassembly(benchmark, length):
    song = song_with_melody(length, MELODY, occurrences=3, seed=length + 2)

    def run() -> bool:
        pieces = split_list_pieces("[A??F]", song, resolver=by_pitch)
        return all(p.reassembled() == song for p in pieces)

    assert benchmark(run) is True
