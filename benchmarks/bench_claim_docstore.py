"""CLAIM-DOCSTORE — document path queries vs a naive DOM walk.

The document store compiles ``//article[@lang='en']//p`` to the stock
algebra (``split`` head + ``flatten(apply(step))`` stages), so the
first step is served from the ``(tag, kind)`` node index
(``index_anchor_split``) and later steps only ever walk the matched
subtrees.  The baseline walks the whole DOM for every step.

Expected shape: the algebra wins by roughly the corpus-to-match size
ratio; the gap widens as the selective first step matches fewer
articles.  Round-trip fidelity of the corpus is asserted alongside the
timing so the speedup figure can never outlive a correctness break.
"""

from __future__ import annotations

import pytest

from repro.docstore import from_html, naive_path, to_html
from repro.docstore.corpus import corpus_html, corpus_tree
from repro.docstore.store import Document

PATH = "//article[@lang='en']//p"


def make_document(articles: int) -> Document:
    return Document(corpus_tree(articles=articles), "html", name="site")


@pytest.mark.parametrize("articles", [50, 150, 300])
def test_claim_docstore_naive_walk(benchmark, articles):
    doc = make_document(articles)
    result = benchmark(naive_path, doc.tree, PATH)
    assert result


@pytest.mark.parametrize("articles", [50, 150, 300])
def test_claim_docstore_algebra(benchmark, articles):
    doc = make_document(articles)
    doc.path(PATH)  # warm the plan cache: steady-state is what we measure
    result = benchmark(doc.path, PATH)
    assert len(result) == len(naive_path(doc.tree, PATH))


def test_claim_docstore_parity_and_fidelity():
    """Parity with the walk and corpus round-trip, asserted unbenchmarked."""
    doc = make_document(150)
    algebra = sorted(to_html(member) for member in doc.path(PATH))
    walk = sorted(to_html(member) for member in naive_path(doc.tree, PATH))
    assert algebra == walk and algebra

    html = corpus_html(articles=150)
    assert to_html(from_html(html)) == html
