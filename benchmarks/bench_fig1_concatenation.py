"""FIG1 — concatenation points in tree patterns (paper Figure 1).

Reproduces the figure exactly (the pattern ``a(b(d(f g)e)c)`` written as
``[[a(α1 α2)]] ∘α1 [[b(d(f g)e)]] ∘α2 c``) and measures the cost of
value-level and pattern-level concatenation as structures grow.
"""

from __future__ import annotations

import pytest

from repro.core import alpha, parse_tree
from repro.patterns import parse_tree_pattern, tree_in_language
from repro.workloads import random_labeled_tree

FIG1_TARGET = "a(b(d(fg)e)c)"


def fig1_value_level():
    left = parse_tree("a(@1 @2)")
    combined = left.concat(alpha(1), parse_tree("b(d(fg)e)")).concat(
        alpha(2), parse_tree("c")
    )
    return combined


def test_fig1_exact(benchmark):
    """The figure's equation, timed: two concatenations on a 7-node tree."""
    result = benchmark(fig1_value_level)
    assert result == parse_tree(FIG1_TARGET)


def test_fig1_pattern_level(benchmark):
    """Pattern-level concatenation: membership of the composed pattern."""
    pattern = parse_tree_pattern("[[a(@1 @2)]] .@1 [[b(d(f g) e)]] .@2 c")
    target = parse_tree(FIG1_TARGET)
    result = benchmark(tree_in_language, pattern, target)
    assert result is True


@pytest.mark.parametrize("size", [100, 1000, 4000])
def test_fig1_concat_scales_linearly(benchmark, size):
    """Plugging a large subtree into a point: one pass over the host."""
    host = random_labeled_tree(size, "abcd", seed=size)
    # Attach a labeled NULL at the end of the host's root children.
    from repro.core.aqua_tree import AquaTree, TreeNode
    from repro.core.concat import ConcatPoint

    host.root.children.append(TreeNode(ConcatPoint("9")))
    payload = random_labeled_tree(size, "wxyz", seed=size + 1)

    result = benchmark(host.concat, alpha(9), payload)
    assert result.size() == 2 * size
