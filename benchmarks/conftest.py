"""Shared fixtures and knobs for the benchmark suite.

Every ``bench_*`` module regenerates one experiment from DESIGN.md §4
(one per paper figure or performance claim).  Sizes are chosen so the
whole suite completes in a few minutes on a laptop; the *shape* of the
results (who wins, by what factor, where crossovers sit) is what
EXPERIMENTS.md records, not absolute numbers.
"""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    # Keep benchmark output grouped per experiment module.
    items.sort(key=lambda item: item.module.__name__)


@pytest.fixture(scope="session")
def bench_sizes():
    """Input sizes shared across scaling benchmarks."""
    return (200, 1000, 4000)
