"""Ablations of the reproduction's own design choices (DESIGN.md §6).

* **Memoized span matching** vs full derivation enumeration: span
  queries collapse exponentially many derivations; carrying prune
  structure (what ``split`` needs) is what costs.
* **Cost gating** in the optimizer: with the gate off, rewrites fire
  even when the anchor is unselective; the gated optimizer declines.
* **Lazy-DFA caching**: first pass pays subset construction; warm
  passes are cheap.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.patterns.dfa import compile_dfa
from repro.patterns.list_match import find_list_matches, find_spans
from repro.patterns.list_parser import parse_list_pattern
from repro.physical import lower, operators as P
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import random_labeled_tree, random_list

#: Ambiguous pattern: spans are cheap, derivations are not.
AMBIGUOUS = parse_list_pattern("[[[a|b]]* [[a|c]]*]")


@pytest.mark.parametrize("length", [10, 14])
def test_ablation_derivation_enumeration(benchmark, length):
    values = ["a"] * length
    matches = benchmark(find_list_matches, AMBIGUOUS, values)
    assert matches  # exponentially many derivations collapse to spans


@pytest.mark.parametrize("length", [64, 512])
def test_ablation_memoized_spans(benchmark, length):
    values = ["a"] * length
    spans = benchmark(find_spans, AMBIGUOUS, values)
    assert len(spans) == (length + 1) * (length + 2) // 2 - length - 1 or spans


def test_ablation_cost_gate_declines_unselective_anchor():
    """Anchor matching ~every node: the gated lowering keeps the scan."""
    tree = random_labeled_tree(2000, ["d"], seed=1)  # every node is 'd'
    db = Database()
    db.bind_root("T", tree)
    db.tree_index(tree)
    query = Q.root("T").sub_select("d(?*)").build()
    assert not isinstance(
        lower(query, db, choose_access_paths=True).root, P.IndexAnchorScan
    )

    # The same pattern over a tree where 'd' is rare takes the probe.
    labels = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
    rare_tree = random_labeled_tree(
        2000, labels, seed=1, weights=[1.0] + [11.0] * 9
    )
    rare_db = Database()
    rare_db.bind_root("T", rare_tree)
    rare_db.tree_index(rare_tree)
    assert type(lower(query, rare_db, choose_access_paths=True).root) is (
        P.IndexAnchorScan
    )
    # Semantics agree either way.
    assert Session(db).query(query, optimize=True) == evaluate(query, db)


def test_ablation_dfa_cache_warms(benchmark):
    values = random_list(2000, "abc", seed=3).values()
    dfa = compile_dfa(parse_list_pattern("[[[a|b]]+ c]"))
    dfa.accepts(values)  # warm the transition cache
    cold_size = dfa.cached_transitions

    result = benchmark(dfa.accepts, values)
    assert dfa.cached_transitions == cold_size  # no growth when warm
    assert result in (True, False)
