"""Ablations of the reproduction's own design choices (DESIGN.md §6).

* **Memoized span matching** vs full derivation enumeration: span
  queries collapse exponentially many derivations; carrying prune
  structure (what ``split`` needs) is what costs.
* **Cost gating** in the optimizer: with the gate off, rewrites fire
  even when the anchor is unselective; the gated optimizer declines.
* **Lazy-DFA caching**: first pass pays subset construction; warm
  passes are cheap.
"""

from __future__ import annotations

import pytest

from repro.optimizer import Optimizer
from repro.patterns.dfa import compile_dfa
from repro.patterns.list_match import find_list_matches, find_spans
from repro.patterns.list_parser import parse_list_pattern
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database
from repro.workloads import random_labeled_tree, random_list

#: Ambiguous pattern: spans are cheap, derivations are not.
AMBIGUOUS = parse_list_pattern("[[[a|b]]* [[a|c]]*]")


@pytest.mark.parametrize("length", [10, 14])
def test_ablation_derivation_enumeration(benchmark, length):
    values = ["a"] * length
    matches = benchmark(find_list_matches, AMBIGUOUS, values)
    assert matches  # exponentially many derivations collapse to spans


@pytest.mark.parametrize("length", [64, 512])
def test_ablation_memoized_spans(benchmark, length):
    values = ["a"] * length
    spans = benchmark(find_spans, AMBIGUOUS, values)
    assert len(spans) == (length + 1) * (length + 2) // 2 - length - 1 or spans


def test_ablation_cost_gate_declines_unselective_anchor():
    """Anchor matching ~every node: the gated optimizer keeps the scan."""
    tree = random_labeled_tree(2000, ["d"], seed=1)  # every node is 'd'
    db = Database()
    db.bind_root("T", tree)
    db.tree_index(tree)
    query = Q.root("T").sub_select("d(?*)").build()

    gated, _ = Optimizer(db).optimize(query)
    ungated, _ = Optimizer(db, cost_gate=False).optimize(query)
    assert isinstance(gated, E.SubSelect)
    assert isinstance(ungated, E.IndexedSubSelect)
    # Semantics agree either way.
    assert evaluate(gated, db) == evaluate(ungated, db)


def test_ablation_dfa_cache_warms(benchmark):
    values = random_list(2000, "abc", seed=3).values()
    dfa = compile_dfa(parse_list_pattern("[[[a|b]]+ c]"))
    dfa.accepts(values)  # warm the transition cache
    cold_size = dfa.cached_transitions

    result = benchmark(dfa.accepts, values)
    assert dfa.cached_transitions == cold_size  # no growth when warm
    assert result in (True, False)
