"""CLAIM-KLEENE — footnote 3: closure queries can be exponential; the
optimizations recover performance.

Workload: RNA-style vertical chains.  The query "an S-B ladder of any
depth ending in a hairpin" uses the tree closure ``+α``.  Enumerating
every match on a tree with many chains is expensive; restricting
candidate roots via the anchor index (the split rewrite) prunes most of
the work.  An ambiguous sibling-closure query shows the blowup in the
horizontal direction.
"""

from __future__ import annotations

import pytest

from repro.core import AquaTree
from repro.patterns import find_tree_matches, parse_tree_pattern
from repro.query import Q, evaluate
from repro.query import expr as E
from repro.storage import Database
from repro.workloads import by_element, element, random_rna_structure

LADDER = "[[S(B(@))]]+@ .@ S(H)"


def chain(depth: int) -> AquaTree:
    """S(B(S(B(...S(H)...)))) of the given depth."""
    tree = AquaTree.build(element("S"), [AquaTree.leaf(element("H"))])
    for _ in range(depth):
        tree = AquaTree.build(element("S"), [AquaTree.build(element("B"), [tree])])
    return tree


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_claim_kleene_chain_depth(benchmark, depth):
    """All ladder suffixes of one chain: quadratically many matches."""
    pattern = parse_tree_pattern(LADDER, resolver=by_element)
    tree = chain(depth)
    matches = benchmark(find_tree_matches, pattern, tree)
    assert len(matches) == depth  # one ladder per starting S above the last


@pytest.mark.parametrize("size", [300, 1200])
def test_claim_kleene_rna_naive(benchmark, size):
    structure = random_rna_structure(size, seed=size)
    pattern = parse_tree_pattern(LADDER, resolver=by_element)
    benchmark(find_tree_matches, pattern, structure)


@pytest.mark.parametrize("size", [300, 1200])
def test_claim_kleene_rna_anchored(benchmark, size):
    """Same query, candidate roots narrowed to S-nodes with a B child
    via the node index — the paper's split rewrite applied by hand."""
    structure = random_rna_structure(size, seed=size)
    pattern = parse_tree_pattern(LADDER, resolver=by_element)

    db = Database()
    db.bind_root("rna", structure)
    index = db.tree_index(structure, ["kind"])

    def anchored():
        candidates, used = index.candidate_nodes(by_element("S"))
        assert used
        roots = [
            node
            for node in candidates
            if node.children and getattr(node.children[0].value, "kind", "") == "B"
        ]
        return find_tree_matches(pattern, structure, roots=roots)

    naive = find_tree_matches(pattern, structure)
    matches = benchmark(anchored)
    assert {m.key() for m in matches} == {m.key() for m in naive}


@pytest.mark.parametrize("arity", [6, 10, 14])
def test_claim_kleene_ambiguous_sibling_closure(benchmark, arity):
    """Horizontal ambiguity: ``M(!?* S !?*)`` over wide fan-outs.

    The explicit ``S`` can sit at any position; each placement prunes a
    different sibling partition, so all ``arity`` derivations survive
    deduplication and enumeration cost grows with the fan-out.
    """
    fan = AquaTree.build(element("M"), [AquaTree.leaf(element("S")) for _ in range(arity)])
    pattern = parse_tree_pattern("M(!?* S !?*)", resolver=by_element)
    matches = benchmark(find_tree_matches, pattern, fan)
    assert len(matches) == arity
