"""EXT-APPROX — §7's distance-based queries, measured.

Tree edit distance (Zhang–Shasha) scaling, and the
"subtrees which almost satisfy P" retrieval with and without the
size-window lower-bound pruning.
"""

from __future__ import annotations

import pytest

from repro.algebra.approximate import approx_matches, tree_edit_distance
from repro.core import AquaTree
from repro.workloads import element, random_labeled_tree, random_rna_structure


@pytest.mark.parametrize("size", [20, 60, 180])
def test_approx_distance_scales(benchmark, size):
    t1 = random_labeled_tree(size, "abcd", seed=size)
    t2 = random_labeled_tree(size, "abcd", seed=size + 1)
    distance = benchmark(tree_edit_distance, t1, t2)
    assert 0 <= distance <= 2 * size


def _motif() -> AquaTree:
    return AquaTree.build(
        element("S"),
        [
            AquaTree.build(
                element("B"),
                [AquaTree.build(element("S"), [AquaTree.leaf(element("H"))])],
            )
        ],
    )


def _kind_relabel(a, b) -> float:
    return 0.0 if a.kind == b.kind else 1.0


@pytest.mark.parametrize("size", [150, 500])
def test_approx_retrieval_with_window(benchmark, size):
    structure = random_rna_structure(size, seed=size)
    target = _motif()
    matches = benchmark(
        approx_matches, target, 1.0, structure, _kind_relabel, None, 1
    )
    assert all(m.distance <= 1.0 for m in matches)


@pytest.mark.parametrize("size", [150, 500])
def test_approx_retrieval_without_window(benchmark, size):
    structure = random_rna_structure(size, seed=size)
    target = _motif()
    matches = benchmark(
        approx_matches, target, 1.0, structure, _kind_relabel, None, 10**9
    )
    assert all(m.distance <= 1.0 for m in matches)


def test_window_and_full_agree():
    structure = random_rna_structure(200, seed=5)
    target = _motif()
    with_window = approx_matches(target, 1.0, structure, _kind_relabel, None, 1)
    without = approx_matches(target, 1.0, structure, _kind_relabel, None, 10**9)
    assert {id(m.root) for m in with_window} == {id(m.root) for m in without}
