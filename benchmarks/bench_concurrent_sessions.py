"""BENCH-CONCURRENT — the PR-6 serving layer: N clients, zero corruption.

Drives a :class:`repro.api.SessionPool` with a mixed read/update
workload at client counts 1..N and reports:

* **throughput** (operations/second) per client count — each simulated
  client performs ``OPS_PER_CLIENT`` operations, ~90% snapshot-pinned
  reads and ~10% root updates, with a small simulated network/IO stall
  per operation (``IO_SECONDS``, disclosed in the output).  The stall is
  what a serving layer overlaps: pure-CPU Python threads cannot scale
  under the GIL, but a pool whose clients spend time in IO genuinely
  can, and the benchmark gates on that overlap;
* **corruption checks** — every read runs against a snapshot pinned at
  submission; after the storm, each recorded (pin, query, result)
  triple is re-executed serially on its pin and must compare equal.
  ``corrupted`` must be 0;
* **plan-cache behavior** — all clients share one cache; the warm
  hit-rate must clear ``MIN_HIT_RATE``, and a root update must leave
  extent-only plans warm (fine-grained invalidation, measured).

Run standalone (CI smoke): ``python benchmarks/bench_concurrent_sessions.py
--quick --json BENCH_PR6.json``.
"""

from __future__ import annotations

import json
import time

import pytest

from repro import Database, Record, Session, SessionPool
from repro.algebra.update import replace_at
from repro.core.aqua_list import AquaList
from repro.query import prepare
from repro.query.plan_cache import PlanCache

#: Simulated per-operation client IO (network round-trip / disk stall).
#: ``time.sleep`` releases the GIL, so this is the component a thread
#: pool overlaps — disclosed here and in the JSON output.
IO_SECONDS = 0.001

OPS_PER_CLIENT = 30
PEOPLE = 200

READ_QUERIES = (
    "extent Person | sselect {age >= 18} | project name",
    "extent Person | sselect {age < 30} | project name",
    "extent Person | project name",
)


def make_db(people: int = PEOPLE) -> Database:
    db = Database()
    for i in range(people):
        db.insert(Record(name=f"p{i}", age=i % 80), "Person")
    db.create_index("Person", "age")
    db.bind_root("L", AquaList.from_values(list(range(16))))
    return db


def client_ops(pool: SessionPool, client: int, ops: int, io_seconds: float):
    """One client's workload: returns recorded (pin, query, result) reads."""
    recorded = []
    for op in range(ops):
        time.sleep(io_seconds)  # simulated network/IO, overlappable
        if op % 10 == 9:  # ~10% writes
            pool.submit_update("L", replace_at, op % 16, client * 1000 + op).result()
        else:
            source = READ_QUERIES[(client + op) % len(READ_QUERIES)]
            pin = pool.pin()
            result = sorted(pool.submit(source, snapshot=pin).result())
            recorded.append((pin, source, result))
    return recorded


def run_storm(db: Database, clients: int, ops: int, io_seconds: float):
    """``clients`` concurrent clients; returns (elapsed, recorded reads)."""
    from concurrent.futures import ThreadPoolExecutor

    cache = PlanCache(capacity=64)
    with SessionPool(db, workers=clients, plan_cache=cache) as pool:
        started = time.perf_counter()
        with ThreadPoolExecutor(max_workers=clients) as drivers:
            futures = [
                drivers.submit(client_ops, pool, client, ops, io_seconds)
                for client in range(clients)
            ]
            recorded = [triple for f in futures for triple in f.result()]
        elapsed = time.perf_counter() - started
    return elapsed, recorded, cache


def verify_no_corruption(recorded) -> int:
    """Serially re-run every read on its pin; count mismatches."""
    corrupted = 0
    for pin, source, concurrent_result in recorded:
        serial = sorted(Session(pin, plan_cache=PlanCache()).query(source))
        if serial != concurrent_result:
            corrupted += 1
    return corrupted


def measure_fine_grained_invalidation(db: Database) -> dict:
    """An ``apply_update`` commit must invalidate only plans over the
    touched resource; plans over untouched extents stay cached."""
    from repro.algebra.update import apply_update

    cache = PlanCache(capacity=16)
    extent_plan = prepare(READ_QUERIES[0], db, cache=cache)
    apply_update(db, "L", replace_at, 0, -1)
    still_warm = prepare(READ_QUERIES[0], db, cache=cache) is extent_plan
    return {
        "extent_plan_survived_root_update": still_warm,
        "invalidations": cache.invalidations,
    }


# ---------------------------------------------------------------------------
# pytest-benchmark entry points
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("clients", [1, 4])
def test_bench_concurrent_storm(benchmark, clients):
    db = make_db(people=60)
    elapsed, recorded, _cache = benchmark(
        run_storm, db, clients, ops=10, io_seconds=IO_SECONDS
    )
    assert verify_no_corruption(recorded) == 0


def test_bench_fine_grained_invalidation():
    db = make_db(people=60)
    report = measure_fine_grained_invalidation(db)
    assert report["extent_plan_survived_root_update"]
    assert report["invalidations"] == 0


# ---------------------------------------------------------------------------
# standalone/CI entry point
# ---------------------------------------------------------------------------


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller storm")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    parser.add_argument(
        "--clients",
        type=int,
        nargs="*",
        default=None,
        help="client counts to sweep (default: 1 2 4 8)",
    )
    arguments = parser.parse_args(argv)

    ops = 10 if arguments.quick else OPS_PER_CLIENT
    people = 60 if arguments.quick else PEOPLE
    sweep = arguments.clients or [1, 2, 4, 8]

    rows = []
    total_corrupted = 0
    for clients in sweep:
        db = make_db(people=people)
        elapsed, recorded, cache = run_storm(
            db, clients, ops=ops, io_seconds=IO_SECONDS
        )
        corrupted = verify_no_corruption(recorded)
        total_corrupted += corrupted
        stats = cache.snapshot()
        lookups = stats["hits"] + stats["misses"]
        throughput = (clients * ops) / elapsed if elapsed else 0.0
        rows.append(
            {
                "clients": clients,
                "ops": clients * ops,
                "elapsed_seconds": round(elapsed, 4),
                "throughput_ops_per_second": round(throughput, 1),
                "reads_verified": len(recorded),
                "corrupted": corrupted,
                "plan_cache_hit_rate": round(stats["hits"] / lookups, 3)
                if lookups
                else 0.0,
                "plan_cache": stats,
            }
        )
        print(
            f"clients={clients:2d}  ops={clients * ops:4d}  "
            f"elapsed={elapsed:7.3f}s  throughput={throughput:8.1f} ops/s  "
            f"corrupted={corrupted}  "
            f"hit_rate={rows[-1]['plan_cache_hit_rate']:.3f}"
        )

    invalidation = measure_fine_grained_invalidation(make_db(people=people))
    baseline = next(r for r in rows if r["clients"] == min(sweep))
    peak = max(rows, key=lambda r: r["throughput_ops_per_second"])
    scaling = (
        peak["throughput_ops_per_second"]
        / baseline["throughput_ops_per_second"]
        if baseline["throughput_ops_per_second"]
        else 0.0
    )
    report = {
        "benchmark": "bench_concurrent_sessions",
        "io_seconds_simulated_per_op": IO_SECONDS,
        "rows": rows,
        "total_corrupted": total_corrupted,
        "throughput_scaling_vs_single_client": round(scaling, 2),
        "fine_grained_invalidation": invalidation,
    }

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {arguments.json}")

    assert total_corrupted == 0, f"{total_corrupted} corrupted reads"
    assert invalidation["extent_plan_survived_root_update"], (
        "root update invalidated an extent-only plan"
    )
    print(
        f"concurrent-sessions smoke ok: scaling x{scaling:.2f}, "
        f"0 corrupted of {sum(r['reads_verified'] for r in rows)} reads"
    )


if __name__ == "__main__":
    main()
