"""CLAIM-DFA — §3.2: "the expressiveness and tractability of regular
expressions is well known".

Tractability made concrete: the reference engine (memoized spans), the
ε-NFA, the lazy DFA and Brzozowski derivatives answer the same span
queries, all polynomially — even on the classic pathological ``(a|a)*``
pattern.  The one inherently exponential task is *derivation
enumeration* when prune structures genuinely differ (what ``split``
needs, cf. footnote 3) — measured last.
"""

from __future__ import annotations

import pytest

from repro.patterns.derivatives import deriv_find_spans
from repro.patterns.dfa import compile_dfa, dfa_find_spans
from repro.patterns.list_match import find_spans
from repro.patterns.list_parser import parse_list_pattern
from repro.patterns.nfa import compile_nfa, nfa_find_spans
from repro.workloads import random_list

BENIGN = parse_list_pattern("[a??f]")
PATHOLOGICAL = parse_list_pattern("^[[[a|a]]*]$")


def song(length: int):
    return random_list(length, "abcdef", seed=length).values()


@pytest.mark.parametrize("length", [200, 800])
def test_engine_backtracking_benign(benchmark, length):
    values = song(length)
    benchmark(find_spans, BENIGN, values)


@pytest.mark.parametrize("length", [200, 800])
def test_engine_nfa_benign(benchmark, length):
    values = song(length)
    benchmark(nfa_find_spans, BENIGN, values)


@pytest.mark.parametrize("length", [200, 800])
def test_engine_dfa_benign(benchmark, length):
    values = song(length)
    benchmark(dfa_find_spans, BENIGN, values)


@pytest.mark.parametrize("length", [200, 800])
def test_engine_derivatives_benign(benchmark, length):
    values = song(length)
    benchmark(deriv_find_spans, BENIGN, values)


@pytest.mark.parametrize("length", [64, 256])
def test_engine_spans_pathological(benchmark, length):
    """Memoized spans stay polynomial on (a|a)* (2^n derivations)."""
    values = ["a"] * length
    spans = benchmark(find_spans, PATHOLOGICAL, values)
    assert spans == [(0, length)]


@pytest.mark.parametrize("length", [8, 11])
def test_engine_derivation_enumeration_pathological(benchmark, length):
    """The inherently exponential case: prune partitions all differ, so
    every derivation is a distinct result (what split must enumerate)."""
    from repro.patterns.list_match import find_list_matches
    from repro.patterns.list_parser import parse_list_pattern

    pattern = parse_list_pattern("[[[!a | a]]*]")
    values = ["a"] * length
    matches = benchmark(find_list_matches, pattern, values)
    assert len(matches) > 2 ** (length // 2)


@pytest.mark.parametrize("length", [64, 512])
def test_engine_nfa_pathological(benchmark, length):
    values = ["a"] * length
    nfa = compile_nfa(PATHOLOGICAL)
    result = benchmark(nfa.accepts, values)
    assert result is True


@pytest.mark.parametrize("length", [64, 512])
def test_engine_dfa_pathological(benchmark, length):
    values = ["a"] * length
    dfa = compile_dfa(PATHOLOGICAL)
    result = benchmark(dfa.accepts, values)
    assert result is True


def test_engines_agree_on_benign():
    values = song(400)
    reference = find_spans(BENIGN, values)
    assert nfa_find_spans(BENIGN, values) == reference
    assert dfa_find_spans(BENIGN, values) == reference
    assert deriv_find_spans(BENIGN, values) == reference
