"""CLAIM-PRINTF — §5's variable-arity query.

``sub_select(printf(?* LargeData ?* LargeData ?*))(T)`` over synthetic C
parse trees: find every printf referring to ``LargeData`` at least
twice.  Measures the naive scan, the index-anchored plan, and the effect
of call arity on the sibling-closure matching cost.
"""

from __future__ import annotations

import pytest

from repro.algebra import sub_select
from repro.api import Session
from repro.physical import lower, operators as P
from repro.query import Q
from repro.storage import Database
from repro.workloads import by_op_name, random_c_program

PATTERN = "printf(?* LargeData ?* LargeData ?*)"


@pytest.mark.parametrize("size", [1000, 4000])
def test_claim_printf_naive(benchmark, size):
    program = random_c_program(size, seed=size, printf_count=20, double_ref_count=6)
    result = benchmark(sub_select, PATTERN, program, by_op_name)
    assert len(result) == 6


@pytest.mark.parametrize("size", [1000, 4000])
def test_claim_printf_indexed(benchmark, size):
    program = random_c_program(size, seed=size, printf_count=20, double_ref_count=6)
    db = Database()
    db.bind_root("prog", program)
    db.tree_index(program, ["OpName"])
    query = Q.root("prog").sub_select(PATTERN, resolver=by_op_name).build()
    assert type(lower(query, db, choose_access_paths=True).root) is P.IndexAnchorScan
    session = Session(db)
    result = benchmark(session.query, query, optimize=True)
    assert len(result) == 6


@pytest.mark.parametrize("max_arity", [4, 8, 16])
def test_claim_printf_arity_sweep(benchmark, max_arity):
    """Sibling closures cost more as the argument lists grow."""
    program = random_c_program(
        1500, seed=max_arity, printf_count=25, double_ref_count=8, max_arity=max_arity
    )
    result = benchmark(sub_select, PATTERN, program, by_op_name)
    assert len(result) == 8
