"""FIG4 — ``split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T)`` (Figure 4).

Reproduces the figure's three pieces exactly, verifies the reassembly
invariant, then scales the split over random family trees with a fixed
number of planted matches.
"""

from __future__ import annotations

import pytest

from repro.algebra import split, split_pieces
from repro.core import make_tuple
from repro.workloads import by_citizen_or_name, figure3_family_tree, random_family_tree

PATTERN = "Brazil(!?* USA !?*)"


def test_fig4_exact_pieces(benchmark):
    family = figure3_family_tree()
    result = benchmark(
        split,
        PATTERN,
        lambda x, y, z: make_tuple(x, y, z),
        family,
        by_citizen_or_name,
    )
    assert len(result) == 1
    x, y, z = next(iter(result))
    name = lambda p: p.name
    assert x.to_notation(name) == "Maria(@ Tom(Rita Carl))"
    assert y.to_notation(name) == "Mat(@1 Ed(@2))"
    assert [t.to_notation(name) for t in z.values()] == ["Ana", "Bill"]


def test_fig4_reassembly(benchmark):
    family = figure3_family_tree()

    def split_and_reassemble() -> bool:
        pieces = split_pieces(PATTERN, family, resolver=by_citizen_or_name)
        return all(piece.reassembled() == family for piece in pieces)

    assert benchmark(split_and_reassemble) is True


@pytest.mark.parametrize("size", [200, 1000, 4000])
def test_fig4_split_scales(benchmark, size):
    family = random_family_tree(size, seed=size * 7, planted_matches=3)
    pieces = benchmark(split_pieces, PATTERN, family, by_citizen_or_name)
    assert len(pieces) == 3


@pytest.mark.parametrize("plants", [1, 8, 32])
def test_fig4_split_scales_with_matches(benchmark, plants):
    family = random_family_tree(2000, seed=plants, planted_matches=plants)
    pieces = benchmark(split_pieces, PATTERN, family, by_citizen_or_name)
    assert len(pieces) == plants
