"""FIG5 — the §5 parse-tree rewrite, done with the algebra (Figure 5).

``select(R, and(p1,p2)) ≡ select(select(R,p1),p2)`` located with
``split("select(!? and)")`` and rebuilt by the three-place function.
Measures one rewrite on the literal figure and rewrite-to-fixpoint
throughput on larger random operator trees.
"""

from __future__ import annotations

import pytest

from repro.algebra import split, sub_select
from repro.core import AquaTree
from repro.workloads import (
    by_op_name,
    figure5_parse_tree,
    random_algebra_tree,
    section5_rebuild,
)

REDEX = "select(!? and)"


def rewrite_once(tree: AquaTree) -> AquaTree | None:
    for result in split(REDEX, section5_rebuild, tree, resolver=by_op_name):
        return result
    return None


def rewrite_to_fixpoint(tree: AquaTree) -> tuple[AquaTree, int]:
    steps = 0
    while True:
        rewritten = rewrite_once(tree)
        if rewritten is None:
            return tree, steps
        tree, steps = rewritten, steps + 1


def test_fig5_single_rewrite_exact(benchmark):
    tree = figure5_parse_tree()
    result = benchmark(rewrite_once, tree)
    assert result is not None
    assert result.to_notation(lambda v: v.OpName) == (
        "join(select(select(R p1) p2) scan(S))"
    )


@pytest.mark.parametrize("size,redexes", [(100, 2), (400, 6), (1600, 12)])
def test_fig5_fixpoint_scales(benchmark, size, redexes):
    tree = random_algebra_tree(size, seed=size, planted_redexes=redexes)

    def run() -> int:
        _, steps = rewrite_to_fixpoint(tree)
        return steps

    steps = benchmark(run)
    assert steps == redexes


@pytest.mark.parametrize("size", [400, 1600])
def test_fig5_redex_detection_cost(benchmark, size):
    """Just locating the redexes (the sub_select half of the rewrite)."""
    tree = random_algebra_tree(size, seed=size + 1, planted_redexes=5)
    result = benchmark(sub_select, REDEX, tree, by_op_name)
    assert len(result) == 5
