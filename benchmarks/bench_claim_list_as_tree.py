"""CLAIM-LISTTREE — §6: list operators ≡ tree operators on list-like trees.

The equivalence is semantic; this benchmark runs the same queries on
both engines, asserts the answers agree, and records the performance
relationship (the native engine wins on selects and long inputs; the
tree engine is competitive on short pattern queries since the §6
translation hands it the same anchored work).
"""

from __future__ import annotations

import pytest

from repro.algebra import select_list, sub_select_list
from repro.algebra.list_tree_bridge import select_via_tree, sub_select_via_tree
from repro.patterns.list_parser import parse_list_pattern
from repro.workloads import random_list

PATTERN = parse_list_pattern("[a??b]")


@pytest.mark.parametrize("length", [100, 400, 1600])
def test_list_engine_sub_select(benchmark, length):
    values = random_list(length, "abcdefg", seed=length)
    result = benchmark(sub_select_list, PATTERN, values)
    assert result == sub_select_via_tree(PATTERN, values)


@pytest.mark.parametrize("length", [100, 400])
def test_tree_engine_sub_select(benchmark, length):
    values = random_list(length, "abcdefg", seed=length)
    result = benchmark(sub_select_via_tree, PATTERN, values)
    assert result == sub_select_list(PATTERN, values)


@pytest.mark.parametrize("length", [1000, 4000])
def test_list_engine_select(benchmark, length):
    values = random_list(length, "abcdefg", seed=length)
    predicate = lambda v: v in "abc"
    result = benchmark(select_list, predicate, values)
    assert len(result) == sum(1 for v in values.values() if v in "abc")


@pytest.mark.parametrize("length", [1000, 4000])
def test_tree_engine_select(benchmark, length):
    values = random_list(length, "abcdefg", seed=length)
    predicate = lambda v: v in "abc"
    result = benchmark(select_via_tree, predicate, values)
    assert result == select_list(predicate, values)
