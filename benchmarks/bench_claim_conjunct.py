"""CLAIM-CONJ — §4: conjunctive select decomposes into indexed pieces.

"In relational optimization, a select with a complex conjunctive
predicate might be rewritten as [pieces] ... some of which might be very
cheap to process (e.g., by using an index)."

Naive plan: evaluate the whole conjunction on every extent member.
Decomposed plan: probe the index for the selective equality conjunct,
re-check the residual on the survivors.  Expected shape: decomposed wins
proportionally to the indexed conjunct's selectivity.
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.core.identity import Record
from repro.physical import lower, operators as P
from repro.predicates.alphabet import attr
from repro.query import Q, evaluate
from repro.storage import Database


def make_db(size: int, cities: int) -> Database:
    db = Database()
    db.insert_many(
        [
            Record(name=f"p{i}", age=i % 60, city=f"C{i % cities}", salary=i % 9000)
            for i in range(size)
        ],
        "Person",
    )
    db.create_index("Person", "city")
    return db


def conjunctive_query():
    return (
        Q.extent("Person")
        .sselect((attr("age") > 30) & (attr("city") == "C3") & (attr("salary") > 1000))
        .build()
    )


@pytest.mark.parametrize("size", [2000, 10000])
def test_claim_conjunct_naive(benchmark, size):
    db = make_db(size, cities=50)
    query = conjunctive_query()
    result = benchmark(evaluate, query, db)
    assert all(p.city == "C3" for p in result)


@pytest.mark.parametrize("size", [2000, 10000])
def test_claim_conjunct_decomposed(benchmark, size):
    db = make_db(size, cities=50)
    query = conjunctive_query()
    assert type(lower(query, db, choose_access_paths=True).root) is P.IndexedSelectFilter
    session = Session(db)
    result = benchmark(session.query, query, optimize=True)
    assert result == evaluate(query, db)


@pytest.mark.parametrize("cities", [2, 20, 200])
def test_claim_conjunct_selectivity_sweep(benchmark, cities):
    """Decomposed plan over varying index selectivity (1/cities)."""
    db = make_db(6000, cities=cities)
    query = conjunctive_query()
    session = Session(db)
    result = benchmark(session.query, query, optimize=True)
    assert result == evaluate(query, db)


def test_claim_conjunct_counters():
    db = make_db(10000, cities=50)
    query = conjunctive_query()

    evaluate(query, db)
    naive_evals = db.stats["predicate_evals"]
    db.stats.reset()

    Session(db).query(query, optimize=True)
    decomposed_evals = db.stats["predicate_evals"]

    assert naive_evals == 10000
    assert decomposed_evals < naive_evals / 10
