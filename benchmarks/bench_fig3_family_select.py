"""FIG3 — the family tree and order-preserving select (Figure 3).

Reproduces the literal figure semantics (edge contraction, forest
results), then scales ``select`` over random family trees: stable select
is a single pass, so time grows linearly with tree size.
"""

from __future__ import annotations

import pytest

from repro.algebra import apply_tree, select
from repro.workloads import BRAZIL, USA, figure3_family_tree, random_family_tree


def test_fig3_select_brazil_exact(benchmark):
    family = figure3_family_tree()
    forest = benchmark(select, BRAZIL, family)
    (survivors,) = forest
    assert survivors.to_notation(lambda p: p.name) == "Maria(Mat(Ana) Tom(Rita))"


def test_fig3_select_usa_forest(benchmark):
    family = figure3_family_tree()
    forest = benchmark(select, USA, family)
    assert sorted(t.to_notation(lambda p: p.name) for t in forest) == ["Ed(Bill)"]


def test_fig3_apply_names(benchmark):
    family = figure3_family_tree()
    result = benchmark(apply_tree, lambda p: p.name, family)
    assert result.size() == family.size()


@pytest.mark.parametrize("size", [200, 1000, 4000])
def test_fig3_select_scales_linearly(benchmark, size):
    family = random_family_tree(size, seed=size, planted_matches=3)
    forest = benchmark(select, BRAZIL, family)
    survivors = sum(t.size() for t in forest)
    expected = sum(1 for p in family.values() if p.citizen == "Brazil")
    assert survivors == expected


@pytest.mark.parametrize("size", [200, 1000, 4000])
def test_fig3_apply_scales_linearly(benchmark, size):
    family = random_family_tree(size, seed=size, planted_matches=1)
    result = benchmark(apply_tree, lambda p: p.citizen, family)
    assert result.size() == size
