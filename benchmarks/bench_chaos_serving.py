"""BENCH-CHAOS — the PR-7 fault-tolerant serving layer under chaos.

Drives a :class:`repro.api.SessionPool` through three chaos segments
and gates on the resilience contracts:

* **availability** — a read storm under the injected fault plan
  (default ``storage_lookup:error:0.05,index_probe:latency:0.2:0.002``,
  overridable via ``AQUA_FAULTS``/``AQUA_FAULT_SEED``), run twice:
  retries **off** (the disclosed baseline) and retries **on**.  With
  retries on, availability must clear ``MIN_AVAILABILITY`` (99%) and
  retry amplification (attempts per admitted request) must stay under
  ``MAX_AMPLIFICATION`` (3x);
* **zero corruption** — every successful read from the retries-on storm
  is re-executed serially with fault injection uninstalled and must be
  *bit-identical* (same elements, same order): retries, degradation and
  re-pinning may change latency, never answers;
* **breaker** — against a seam failing 100% of the time, the first
  request burns its schedule until the breaker trips; subsequent
  requests shed after a single attempt (``breaker_to_open`` counted);
* **overload** — a burst beyond ``max_in_flight`` is shed at submission
  with structured :class:`~repro.errors.ServerOverloadedError`, never
  queued into unbounded latency.

Writes are exercised under the same plan but never retried (a commit
cannot be re-checked from the serving layer); their failure count is
disclosed separately and excluded from read availability.

Run standalone (CI smoke): ``python benchmarks/bench_chaos_serving.py
--quick --json BENCH_PR7.json``.
"""

from __future__ import annotations

import json
import os
import time

from repro import Database, Record, Session, SessionPool, faults
from repro.algebra.update import replace_at
from repro.config import FAULT_SEED_ENV, FAULTS_ENV
from repro.core.aqua_list import AquaList
from repro.errors import CircuitOpenError, ServerOverloadedError
from repro.guardrails import Budget
from repro.query.plan_cache import PlanCache
from repro.serving import BreakerBoard, RetryPolicy

#: The chaos plan the gates are calibrated against (ISSUE PR 7).
DEFAULT_SPEC = "storage_lookup:error:0.05,index_probe:latency:0.2:0.002"
DEFAULT_SEED = 42

MIN_AVAILABILITY = 0.99
MAX_AMPLIFICATION = 3.0

PEOPLE = 120
READ_QUERIES = (
    "extent Person | sselect {age >= 18} | project name",
    "extent Person | sselect {age < 30} | project name",
    "extent Person | project name",
)

RETRY = RetryPolicy(
    max_attempts=4, base_delay=0.001, max_delay=0.01, jitter=0.5, seed=7
)


def chaos_plan() -> faults.FaultPlan:
    """The environment's plan, or the calibrated default."""
    spec = os.environ.get(FAULTS_ENV, "").strip() or DEFAULT_SPEC
    raw_seed = os.environ.get(FAULT_SEED_ENV, "").strip()
    seed = int(raw_seed) if raw_seed else DEFAULT_SEED
    return faults.FaultPlan(faults.parse_rules(spec), seed=seed)


def make_db(people: int = PEOPLE) -> Database:
    db = Database()
    for i in range(people):
        db.insert(Record(name=f"p{i}", age=i % 80), "Person")
    db.create_index("Person", "age")
    db.bind_root("L", AquaList.from_values(list(range(16))))
    return db


# ---------------------------------------------------------------------------
# segment 1: availability + bit-identical reads
# ---------------------------------------------------------------------------


def read_storm(
    db: Database, requests: int, *, retries: bool
) -> tuple[SessionPool, list, int]:
    """Run ``requests`` reads under the chaos plan; returns the closed
    pool (for stats), recorded (source, result) successes, failures."""
    policy = RETRY if retries else None
    # Reads under chaos can see long failure streaks without the seam
    # being *down*; the availability segment uses a tolerant board so
    # the breaker segment below can test tripping in isolation.
    board = BreakerBoard(failure_threshold=1000)
    recorded = []
    failures = 0
    with SessionPool(
        db,
        workers=4,
        retry_policy=policy,
        breakers=board,
        budget=Budget(deadline_seconds=5.0),
        plan_cache=PlanCache(capacity=64),
    ) as pool:
        with faults.injected(chaos_plan()):
            futures = [
                (
                    READ_QUERIES[i % len(READ_QUERIES)],
                    pool.submit(READ_QUERIES[i % len(READ_QUERIES)]),
                )
                for i in range(requests)
            ]
            for source, future in futures:
                try:
                    recorded.append((source, list(future.result())))
                except Exception:
                    failures += 1
    return pool, recorded, failures


def verify_bit_identical(db: Database, recorded) -> int:
    """Re-run every successful read serially, faults uninstalled; count
    results that are not bit-identical (same order, same elements)."""
    previous = faults.install(None)
    try:
        corrupted = 0
        session = Session(db, plan_cache=PlanCache())
        for source, chaotic_result in recorded:
            if list(session.query(source)) != chaotic_result:
                corrupted += 1
        return corrupted
    finally:
        faults.install(previous)


def write_disclosure(db: Database, updates: int) -> dict:
    """Writes under the same plan: never retried, failures disclosed."""
    ok = failed = 0
    with SessionPool(db, workers=2) as pool:
        with faults.injected(chaos_plan()):
            futures = [
                pool.submit_update("L", replace_at, i % 16, i)
                for i in range(updates)
            ]
            for future in futures:
                try:
                    future.result()
                    ok += 1
                except Exception:
                    failed += 1
    return {"updates": updates, "committed": ok, "failed": failed}


# ---------------------------------------------------------------------------
# segment 2: circuit breaker against a hard-down seam
# ---------------------------------------------------------------------------


def breaker_segment(db: Database) -> dict:
    """A seam failing 100%: the first request trips the breaker, later
    requests shed after one attempt instead of burning retries."""
    down = faults.FaultPlan(
        [faults.FaultRule("storage_lookup", "error", 1.0)]
    )
    board = BreakerBoard(failure_threshold=3, reset_timeout=60.0)
    with SessionPool(
        db,
        workers=1,
        retry_policy=RetryPolicy(
            max_attempts=4, base_delay=0.0005, max_delay=0.002
        ),
        breakers=board,
    ) as pool:
        outcomes = []
        with faults.injected(down):
            for _ in range(4):
                before = pool.stats.counters["attempts"]
                try:
                    pool.query(READ_QUERIES[0])
                    outcomes.append("success")
                except CircuitOpenError:
                    outcomes.append("shed")
                except Exception:
                    outcomes.append("failed")
                outcomes[-1] += f":{pool.stats.counters['attempts'] - before}"
        snap = pool.stats.snapshot()
        return {
            "outcomes": outcomes,
            "attempts": snap["attempts"],
            "breaker_to_open": snap["breaker_to_open"],
            "breaker_short_circuits": snap["breaker_short_circuits"],
            "breaker_state": board.breaker("storage_lookup").state,
        }


# ---------------------------------------------------------------------------
# segment 3: admission control under a burst
# ---------------------------------------------------------------------------


def overload_segment(db: Database, burst: int = 24) -> dict:
    """Fire a burst past ``max_in_flight``; excess must shed at submit."""
    slow = faults.FaultPlan(
        [faults.FaultRule("index_probe", "latency", 1.0, 0.005)]
    )
    shed = 0
    futures = []
    with SessionPool(db, workers=2, max_in_flight=6) as pool:
        with faults.injected(slow):
            for i in range(burst):
                try:
                    futures.append(pool.submit(READ_QUERIES[0]))
                except ServerOverloadedError as exc:
                    shed += 1
                    stats = exc.queue_stats()
                    assert stats["max_in_flight"] == 6
            for future in futures:
                future.result()
        snap = pool.stats.snapshot()
        return {
            "burst": burst,
            "accepted": len(futures),
            "shed": shed,
            "shed_overload_counter": snap["shed_overload"],
            "availability_of_admitted": snap["availability"],
        }


# ---------------------------------------------------------------------------
# standalone/CI entry point
# ---------------------------------------------------------------------------


def run(requests: int, people: int) -> dict:
    db = make_db(people=people)

    started = time.perf_counter()
    baseline_pool, _, baseline_failures = read_storm(
        db, requests, retries=False
    )
    baseline_stats = baseline_pool.stats.snapshot()

    retry_pool, recorded, retry_failures = read_storm(
        db, requests, retries=True
    )
    retry_stats = retry_pool.stats.snapshot()
    corrupted = verify_bit_identical(db, recorded)

    writes = write_disclosure(db, updates=16)
    breaker = breaker_segment(make_db(people=30))
    overload = overload_segment(make_db(people=30))
    elapsed = time.perf_counter() - started

    return {
        "benchmark": "bench_chaos_serving",
        "fault_spec": os.environ.get(FAULTS_ENV, "").strip() or DEFAULT_SPEC,
        "requests": requests,
        "elapsed_seconds": round(elapsed, 3),
        "availability_without_retries": baseline_stats["availability"],
        "availability_with_retries": retry_stats["availability"],
        "retry_amplification": retry_stats["retry_amplification"],
        "reads_verified_bit_identical": len(recorded),
        "corrupted": corrupted,
        "baseline_failures": baseline_failures,
        "retry_failures": retry_failures,
        "pool_stats": retry_stats,
        "pool_stats_baseline": baseline_stats,
        "writes": writes,
        "breaker": breaker,
        "overload": overload,
    }


def gate(report: dict) -> None:
    availability = report["availability_with_retries"]
    assert availability >= MIN_AVAILABILITY, (
        f"availability {availability:.4f} below the {MIN_AVAILABILITY} gate"
    )
    assert report["corrupted"] == 0, (
        f"{report['corrupted']} retried reads were not bit-identical"
    )
    amplification = report["retry_amplification"]
    assert amplification <= MAX_AMPLIFICATION, (
        f"retry amplification {amplification:.2f} above {MAX_AMPLIFICATION}x"
    )
    assert report["breaker"]["breaker_to_open"] >= 1, "breaker never tripped"
    assert report["breaker"]["breaker_short_circuits"] >= 1, (
        "open breaker never shed a request"
    )
    assert report["overload"]["shed"] >= 1, "overload burst was never shed"
    assert (
        report["availability_without_retries"]
        <= report["availability_with_retries"]
    ), "retries made availability worse"


def main(argv: list[str] | None = None) -> None:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller storm")
    parser.add_argument("--json", metavar="PATH", help="write results as JSON")
    arguments = parser.parse_args(argv)

    # The environment plan auto-installs at import; the benchmark owns
    # fault activation per segment, so start clean.
    faults.install(None)

    requests = 200 if arguments.quick else 400
    people = 60 if arguments.quick else PEOPLE
    report = run(requests, people)

    print(
        f"availability: retries-off={report['availability_without_retries']:.4f}  "
        f"retries-on={report['availability_with_retries']:.4f}  "
        f"amplification={report['retry_amplification']:.2f}x"
    )
    print(
        f"bit-identical: {report['reads_verified_bit_identical']} reads, "
        f"{report['corrupted']} corrupted; "
        f"writes: {report['writes']['committed']}/{report['writes']['updates']} "
        f"committed (never retried)"
    )
    print(
        f"breaker: {report['breaker']['outcomes']} "
        f"(to_open={report['breaker']['breaker_to_open']})"
    )
    print(
        f"overload: shed {report['overload']['shed']} of "
        f"{report['overload']['burst']} burst submissions"
    )

    if arguments.json:
        with open(arguments.json, "w") as handle:
            json.dump(report, handle, indent=2)
        print(f"wrote {arguments.json}")

    gate(report)
    print("chaos-serving smoke ok")


if __name__ == "__main__":
    main()
