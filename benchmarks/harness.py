"""Standalone experiment harness: prints the paper-vs-measured summary.

Run with ``python benchmarks/harness.py``.  For every experiment in
DESIGN.md §4 it reproduces the figure/claim, measures the competing
plans, and prints the rows EXPERIMENTS.md records: who wins, by what
factor, and where the crossover sits.  (pytest-benchmark gives the
rigorous timings; this harness gives the one-screen story.)

``--json PATH`` additionally writes the rows as machine-readable
records; the index-vs-scan claims (CLAIM-SPLIT, CLAIM-MELODY) attach
per-operator runtime metrics from the instrumented executor — the same
rows/counters/time data ``EXPLAIN ANALYZE`` renders.

Each experiment runs under the ``AQUA_*`` execution budget (see README
"Execution limits & fault injection"): a tripped limit aborts that
experiment with a diagnostic row instead of hanging the harness, and
the JSON output leads with a ``BUDGET`` record carrying the configured
limits and which experiments (if any) tripped.
"""

from __future__ import annotations

import argparse
import json
import os
import time
from contextlib import contextmanager
from typing import Any, Callable

from repro import guardrails
from repro.errors import AquaError
from repro.guardrails import Budget

from repro.algebra import (
    select,
    split,
    split_list_pieces,
    split_pieces,
    sub_select,
    sub_select_list,
)
from repro.algebra.list_tree_bridge import sub_select_via_tree
from repro.api import Session
from repro.core import alpha, make_tuple, parse_tree
from repro.patterns import (
    compile_dfa,
    find_spans,
    find_tree_matches,
    nfa_find_spans,
    parse_list_pattern,
    parse_tree_pattern,
    tree_in_language,
)
from repro.predicates import attr
from repro.query import Q, evaluate, evaluate_with_metrics
from repro.query import expr as E
from repro.storage import Database
from repro.core.identity import Record
from repro.storage.stats import Instrumentation
from repro.workloads import (
    BRAZIL,
    by_citizen_or_name,
    by_element,
    by_op_name,
    by_pitch,
    element,
    figure3_family_tree,
    figure5_parse_tree,
    random_algebra_tree,
    random_c_program,
    random_family_tree,
    random_labeled_tree,
    random_list,
    random_rna_structure,
    section5_rebuild,
    song_with_melody,
)


@contextmanager
def tree_engine_env(engine: str):
    """Pin ``AQUA_TREE_ENGINE`` for one measurement."""
    previous = os.environ.get("AQUA_TREE_ENGINE")
    os.environ["AQUA_TREE_ENGINE"] = engine
    try:
        yield
    finally:
        if previous is None:
            del os.environ["AQUA_TREE_ENGINE"]
        else:
            os.environ["AQUA_TREE_ENGINE"] = previous


def timed(function: Callable[[], object], repeat: int = 3) -> tuple[float, object]:
    best = float("inf")
    result: object = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - start)
    return best, result


#: Machine-readable records mirroring the printed rows (``--json``).
RECORDS: list[dict[str, Any]] = []


def row(experiment: str, line: str, **extra: Any) -> None:
    print(f"{experiment:<14} {line}")
    RECORDS.append({"experiment": experiment, "line": line, **extra})


def operator_metrics(query, db, *, optimize: bool = False) -> list[dict[str, Any]]:
    """Per-operator runtime metrics for one instrumented run of ``query``."""
    with db.stats.scope():
        if optimize:
            _, metrics = Session(db).query_with_metrics(query, optimize=True)
        else:
            _, metrics = evaluate_with_metrics(query, db)
    return metrics.to_records()


def fig1() -> None:
    target = parse_tree("a(b(d(fg)e)c)")
    combined = (
        parse_tree("a(@1 @2)")
        .concat(alpha(1), parse_tree("b(d(fg)e)"))
        .concat(alpha(2), parse_tree("c"))
    )
    pattern = parse_tree_pattern("[[a(@1 @2)]] .@1 [[b(d(f g) e)]] .@2 c")
    row(
        "FIG1",
        f"value-level concat == figure: {combined == target}; "
        f"pattern-level membership: {tree_in_language(pattern, target)}",
    )


def fig2() -> None:
    pattern = parse_tree_pattern("[[a(b c @)]]*@")
    from repro.core import AquaTree

    tree = AquaTree.build("a", ["b", "c"])
    memberships = []
    for _ in range(4):
        memberships.append(tree_in_language(pattern, tree))
        tree = AquaTree.build("a", ["b", "c", tree])
    row("FIG2", f"first four self-concatenations in L: {all(memberships)}")


def fig3() -> None:
    family = figure3_family_tree()
    (survivors,) = select(BRAZIL, family)
    row(
        "FIG3",
        "select(Brazil) = "
        + survivors.to_notation(lambda p: p.name)
        + " (Ed contracted away)",
    )


def fig4() -> None:
    family = figure3_family_tree()
    result = split(
        "Brazil(!?* USA !?*)",
        lambda x, y, z: make_tuple(x, y, z),
        family,
        resolver=by_citizen_or_name,
    )
    x, y, z = next(iter(result))
    name = lambda p: p.name
    (piece,) = split_pieces("Brazil(!?* USA !?*)", family, resolver=by_citizen_or_name)
    row(
        "FIG4",
        f"x={x.to_notation(name)}  y={y.to_notation(name)}  "
        f"z={[t.to_notation(name) for t in z.values()]}  "
        f"reassembles={piece.reassembled() == family}",
    )


def fig5() -> None:
    tree = figure5_parse_tree()
    (rewritten,) = split("select(!? and)", section5_rebuild, tree, resolver=by_op_name)
    big = random_algebra_tree(800, seed=5, planted_redexes=8)
    naive_time, matches = timed(
        lambda: sub_select("select(!? and)", big, resolver=by_op_name)
    )
    row(
        "FIG5",
        f"rewrite: {rewritten.to_notation(lambda v: v.OpName)}; "
        f"redex scan on 800-node tree: {naive_time * 1e3:.1f} ms, {len(matches)} redexes",
    )


def claim_split() -> None:
    labels = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
    weights = [1.0] + [11.0] * 9
    tree = random_labeled_tree(6000, labels, seed=42, weights=weights)
    db = Database()
    db.bind_root("T", tree)
    db.tree_index(tree)
    query = Q.root("T").sub_select("d(e(h i) j ?*)").build()
    session = Session(db)
    naive_time, naive = timed(lambda: evaluate(query, db))
    indexed_time, indexed = timed(lambda: session.query(query, optimize=True))
    assert naive == indexed
    row(
        "CLAIM-SPLIT",
        f"naive {naive_time * 1e3:.1f} ms vs indexed {indexed_time * 1e3:.1f} ms "
        f"(x{naive_time / max(indexed_time, 1e-9):.1f}) at ~1% anchor selectivity, n=6000",
        naive_ms=naive_time * 1e3,
        indexed_ms=indexed_time * 1e3,
        naive_operators=operator_metrics(query, db),
        indexed_operators=operator_metrics(query, db, optimize=True),
    )


def claim_conjunct() -> None:
    db = Database()
    db.insert_many(
        [
            Record(name=f"p{i}", age=i % 60, city=f"C{i % 50}", salary=i % 9000)
            for i in range(20000)
        ],
        "Person",
    )
    db.create_index("Person", "city")
    query = (
        Q.extent("Person")
        .sselect((attr("age") > 30) & (attr("city") == "C3") & (attr("salary") > 1000))
        .build()
    )
    session = Session(db)
    naive_time, naive = timed(lambda: evaluate(query, db))
    indexed_time, indexed = timed(lambda: session.query(query, optimize=True))
    assert naive == indexed
    row(
        "CLAIM-CONJ",
        f"naive {naive_time * 1e3:.1f} ms vs decomposed {indexed_time * 1e3:.1f} ms "
        f"(x{naive_time / max(indexed_time, 1e-9):.1f}) on 20k extent, 2% index selectivity",
    )


def claim_kleene() -> None:
    structure = random_rna_structure(1500, seed=7)
    pattern = parse_tree_pattern("[[S(B(@))]]+@ .@ S(H)", resolver=by_element)
    db = Database()
    index = db.tree_index(structure, ["kind"])
    naive_time, naive = timed(lambda: find_tree_matches(pattern, structure))

    def anchored():
        candidates, _ = index.candidate_nodes(by_element("S"))
        roots = [
            n
            for n in candidates
            if n.children and getattr(n.children[0].value, "kind", "") == "B"
        ]
        return find_tree_matches(pattern, structure, roots=roots)

    anchored_time, anchored_matches = timed(anchored)
    assert {m.key() for m in naive} == {m.key() for m in anchored_matches}
    row(
        "CLAIM-KLEENE",
        f"closure query naive {naive_time * 1e3:.1f} ms vs anchored "
        f"{anchored_time * 1e3:.1f} ms (x{naive_time / max(anchored_time, 1e-9):.1f}), "
        f"{len(naive)} ladders in a {structure.size()}-node structure",
    )


def claim_memo() -> None:
    """Footnote 3 revisited: the packrat memo engine vs the backtracker.

    Measures matcher steps and wall time, memo off vs on, over the two
    workloads CI gates on: the CLAIM-KLEENE closure ladder and the
    FIG4 family-tree split.
    """
    from repro.core import AquaTree

    ladder = parse_tree_pattern("[[S(B(@))]]+@ .@ S(H)", resolver=by_element)
    ladder_chain = AquaTree.build(element("S"), [AquaTree.leaf(element("H"))])
    for _ in range(64):
        ladder_chain = AquaTree.build(
            element("S"), [AquaTree.build(element("B"), [ladder_chain])]
        )
    structure = random_rna_structure(1500, seed=7)
    family = random_family_tree(2000, seed=8, planted_matches=8)

    def kleene_run():
        return (
            [m.key() for m in find_tree_matches(ladder, ladder_chain)],
            [m.key() for m in find_tree_matches(ladder, structure)],
        )

    def fig4_run():
        pieces = split_pieces(
            "Brazil(!?* USA !?*)", family, resolver=by_citizen_or_name
        )
        return len(pieces)

    for workload, run in (
        ("bench_claim_kleene", kleene_run),
        ("bench_fig4_split", fig4_run),
    ):
        measured: dict[str, dict[str, float]] = {}
        answers = {}
        for engine in ("backtrack", "memo"):
            with tree_engine_env(engine):
                stats = Instrumentation()
                with stats.activated():
                    answers[engine] = run()
                elapsed, _ = timed(run)
            measured[engine] = {
                "steps": stats["backtrack_steps"],
                "ms": elapsed * 1e3,
            }
        assert answers["memo"] == answers["backtrack"]
        off, on = measured["backtrack"], measured["memo"]
        row(
            "CLAIM-MEMO",
            f"{workload}: matcher steps {off['steps']:.0f} → {on['steps']:.0f} "
            f"(x{off['steps'] / max(on['steps'], 1):.1f}), "
            f"wall {off['ms']:.1f} ms → {on['ms']:.1f} ms",
            workload=workload,
            backtrack_steps=off["steps"],
            memo_steps=on["steps"],
            backtrack_ms=off["ms"],
            memo_ms=on["ms"],
        )


def claim_printf() -> None:
    program = random_c_program(5000, seed=3, printf_count=25, double_ref_count=7)
    pattern = "printf(?* LargeData ?* LargeData ?*)"
    naive_time, hits = timed(lambda: sub_select(pattern, program, resolver=by_op_name))
    row(
        "CLAIM-PRINTF",
        f"{len(hits)} double-LargeData printfs found in {naive_time * 1e3:.1f} ms "
        f"over a {program.size()}-node C parse tree",
    )


def claim_melody() -> None:
    song = song_with_melody(8000, ["A", "C", "D", "F"], occurrences=5, seed=11)
    db = Database()
    db.bind_root("song", song)
    db.list_index(song, ["pitch"])
    query = Q.root("song").lsub_select("[A??F]", resolver=by_pitch).build()
    session = Session(db)
    naive_time, naive = timed(lambda: evaluate(query, db))
    indexed_time, indexed = timed(lambda: session.query(query, optimize=True))
    assert naive == indexed
    pieces = split_list_pieces("[A??F]", song, resolver=by_pitch)
    row(
        "CLAIM-MELODY",
        f"naive {naive_time * 1e3:.1f} ms vs indexed {indexed_time * 1e3:.1f} ms "
        f"(x{naive_time / max(indexed_time, 1e-9):.1f}); "
        f"reassembly holds for all {len(pieces)} matches",
        naive_ms=naive_time * 1e3,
        indexed_ms=indexed_time * 1e3,
        naive_operators=operator_metrics(query, db),
        indexed_operators=operator_metrics(query, db, optimize=True),
    )


def claim_prepared() -> None:
    """PR 5: prepared queries — cold vs warm plan-cache planning cost.

    Prepares the CLAIM-SPLIT anchor query (AQL text) and the FIG4 split
    (built expression) twice against one Session: the first prepare pays
    the optimizer rewrites and pattern compilations, the second is a
    pure plan-cache hit.  CI gates on the warm path doing *strictly
    fewer* planning steps (rewrites + compilations) than the cold path.
    """
    from repro.api import Session
    from repro.query import PlanCache
    from repro.query.explain import PLANNING_COUNTERS

    labels = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
    weights = [1.0] + [11.0] * 9
    tree = random_labeled_tree(6000, labels, seed=42, weights=weights)
    split_db = Database()
    split_db.bind_root("T", tree)
    split_db.tree_index(tree)

    family = random_family_tree(2000, seed=8, planted_matches=8)
    family_db = Database()
    family_db.bind_root("family", family)
    family_db.tree_index(family, ["citizen", "name"])
    family_query = (
        Q.root("family")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .build()
    )

    for workload, db, source in (
        ("bench_claim_split_index", split_db, 'root T | sub_select "d(e(h i) j ?*)"'),
        ("bench_fig4_split", family_db, family_query),
    ):
        session = Session(db, plan_cache=PlanCache())

        def plan_once(session=session, source=source):
            sink = Instrumentation()
            with sink.activated():
                start = time.perf_counter()
                prepared = session.prepare(source, optimize=True)
                elapsed = time.perf_counter() - start
            steps = sink["optimizer_rewrites"] + sink["pattern_compilations"]
            counters = {name: sink[name] for name in PLANNING_COUNTERS}
            return prepared, elapsed, steps, counters

        cold_prepared, cold_s, cold_steps, cold_counters = plan_once()
        warm_prepared, warm_s, warm_steps, warm_counters = plan_once()
        assert warm_prepared is cold_prepared
        assert warm_counters["plan_cache_hits"] == 1
        row(
            "CLAIM-PREPARED",
            f"{workload}: planning {cold_s * 1e3:.2f} ms cold → {warm_s * 1e3:.3f} ms warm "
            f"(x{cold_s / max(warm_s, 1e-9):.0f}); planning steps {cold_steps} → {warm_steps}",
            workload=workload,
            cold_ms=cold_s * 1e3,
            warm_ms=warm_s * 1e3,
            cold_planning_steps=cold_steps,
            warm_planning_steps=warm_steps,
            cold_planning=cold_counters,
            warm_planning=warm_counters,
        )


def claim_list_tree() -> None:
    values = random_list(600, "abcdefg", seed=9)
    pattern = parse_list_pattern("[a??b]")
    native_time, native = timed(lambda: sub_select_list(pattern, values))
    tree_time, via_tree = timed(lambda: sub_select_via_tree(pattern, values))
    assert native == via_tree
    row(
        "CLAIM-LISTTREE",
        f"same answers (§6 equivalence); native list engine {native_time * 1e3:.1f} ms,"
        f" tree engine on the chain {tree_time * 1e3:.1f} ms",
    )


def claim_engines() -> None:
    from repro.patterns.list_match import find_list_matches

    benign = parse_list_pattern("[a??f]")
    values = random_list(1500, "abcdef", seed=13).values()
    bt_time, spans = timed(lambda: find_spans(benign, values))
    nfa_time, nfa_spans = timed(lambda: nfa_find_spans(benign, values))
    assert spans == nfa_spans
    # Span queries stay polynomial on the classic pathological pattern
    # (memoized spans / DFA); only *derivation enumeration* — needed when
    # prune structures differ — is inherently exponential.
    pathological = parse_list_pattern("^[[[a|a]]*]$")
    span_time, _ = timed(lambda: find_spans(pathological, ["a"] * 512))
    dfa = compile_dfa(pathological)
    dfa_time, accepted = timed(lambda: dfa.accepts(["a"] * 4096))
    assert accepted
    derivations = parse_list_pattern("[[[!a | a]]*]")
    deriv_time, deriv_matches = timed(
        lambda: find_list_matches(derivations, ["a"] * 12), repeat=1
    )
    row(
        "CLAIM-DFA",
        f"benign 1500 elems: backtrack {bt_time * 1e3:.1f} ms / NFA {nfa_time * 1e3:.1f} ms; "
        f"pathological spans 512 elems {span_time * 1e3:.1f} ms, DFA 4096 elems "
        f"{dfa_time * 1e3:.2f} ms; prune-derivation enumeration: "
        f"{len(deriv_matches)} matches in {deriv_time * 1e3:.0f} ms on 12 elems",
    )


def claim_columnar() -> None:
    """PR 8: the columnar tree kernel — batch bitset filtering vs node-at-a-time.

    Two n=100k workloads at ~1% anchor selectivity, kernel pinned off
    (the per-node scan every prior PR used) vs on (shared predicate
    columns select candidate roots in bulk).  Both legs run the *same
    logical plan* through the same executor — only candidate selection
    differs — so the result sets must be bit-identical.  CI gates
    ``speedup_x >= 10`` and ``identical`` for both workloads
    (BENCH_PR8.json), once per backend (pure-Python ints and numpy).

    The fig4 leg times split-site *discovery* (``sub_select`` of the
    split pattern): building the 24 split pieces themselves rebuilds a
    100k-node remainder tree per piece, an O(answer) cost both legs pay
    identically that would drown the matching signal.  The full split
    is still checked bit-identical off-vs-on at n=20k below.
    """
    from repro import config
    from repro.storage.columnar import resolve_backend

    size = 100_000
    labels = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
    weights = [1.0] + [11.0] * 9
    labeled = random_labeled_tree(size, labels, seed=42, weights=weights)
    labeled_db = Database()
    labeled_db.bind_root("T", labeled)
    labeled_query = Q.root("T").sub_select("d(e(h i) j ?*)").build()

    family = random_family_tree(size, seed=8, planted_matches=24)
    family_db = Database()
    family_db.bind_root("family", family)
    family_query = (
        Q.root("family")
        .sub_select("Brazil(!?* USA !?*)", resolver=by_citizen_or_name)
        .build()
    )

    # Full Figure 4 split, off vs on, at a scale where the O(answer)
    # piece construction stays affordable: the whole split answer —
    # every (x, y, z) tuple — must be bit-identical.
    small_family = random_family_tree(20_000, seed=8, planted_matches=8)
    small_db = Database()
    small_db.bind_root("family", small_family)
    split_query = (
        Q.root("family")
        .split("Brazil(!?* USA !?*)", make_tuple, resolver=by_citizen_or_name)
        .build()
    )
    with config.columnar_scope("off"):
        split_off = evaluate(split_query, small_db)
    with config.columnar_scope("on"):
        split_on = evaluate(split_query, small_db)
    assert split_off == split_on, "fig4 split diverged under the columnar kernel"

    backend = resolve_backend()
    counter_names = (
        "column_builds",
        "column_rows",
        "column_hits",
        "columnar_roots",
        "columnar_pruned",
        "nodes_scanned",
    )
    for workload, db, query, detail in (
        ("bench_claim_split_index", labeled_db, labeled_query, "deep sub_select"),
        ("bench_fig4_split", family_db, family_query, "split-site discovery"),
    ):
        with config.columnar_scope("off"):
            scan_time, scan_result = timed(lambda: evaluate(query, db))
        with config.columnar_scope("on"):
            evaluate(query, db)  # warm the predicate columns once
            columnar_time, columnar_result = timed(lambda: evaluate(query, db))
            with db.stats.scope():
                evaluate(query, db)
                counters = {name: db.stats[name] for name in counter_names}
        identical = scan_result == columnar_result
        assert identical, f"{workload}: columnar result diverged from scan"
        speedup = scan_time / max(columnar_time, 1e-9)
        row(
            "CLAIM-COLUMNAR",
            f"{workload} ({detail}): scan {scan_time * 1e3:.1f} ms vs columnar "
            f"{columnar_time * 1e3:.1f} ms (x{speedup:.1f}) at n={size}, "
            f"{counters['columnar_roots']} roots survive the bitset filter "
            f"[{backend}]",
            workload=workload,
            measured=detail,
            size=size,
            backend=backend,
            scan_ms=scan_time * 1e3,
            columnar_ms=columnar_time * 1e3,
            speedup_x=speedup,
            identical=identical,
            full_split_identical=True,
            full_split_size=20_000,
            columnar_counters=counters,
        )


def claim_chaos_serving() -> None:
    """PR 7: fault-tolerant serving — availability under injected chaos.

    A small read storm through a :class:`SessionPool` under the PR-7
    chaos plan, retries off vs on; the row carries the full PoolStats
    snapshot so shed/breaker/retry counters land in ``--json`` output.
    """
    from repro import faults
    from repro import Record
    from repro.api import SessionPool
    from repro.guardrails import Budget
    from repro.query import PlanCache
    from repro.serving import BreakerBoard, RetryPolicy

    previous = faults.install(None)
    try:
        db = Database()
        for i in range(60):
            db.insert(Record(name=f"p{i}", age=i % 80), "Person")
        db.create_index("Person", "age")
        source = "extent Person | sselect {age >= 18} | project name"
        plan_rules = "storage_lookup:error:0.05,index_probe:latency:0.2:0.002"

        availability = {}
        stats_snapshots = {}
        for label, policy in (
            ("retries_off", None),
            (
                "retries_on",
                RetryPolicy(
                    max_attempts=4, base_delay=0.001, max_delay=0.01, seed=7
                ),
            ),
        ):
            chaos = faults.FaultPlan(faults.parse_rules(plan_rules), seed=42)
            with SessionPool(
                db,
                workers=4,
                retry_policy=policy,
                breakers=BreakerBoard(failure_threshold=1000),
                budget=Budget(deadline_seconds=5.0),
                plan_cache=PlanCache(capacity=16),
            ) as pool:
                with faults.injected(chaos):
                    futures = [pool.submit(source) for _ in range(120)]
                    for future in futures:
                        try:
                            future.result()
                        except Exception:
                            pass
                snapshot = pool.stats.snapshot()
            availability[label] = snapshot["availability"]
            stats_snapshots[label] = snapshot

        row(
            "CHAOS-SERVING",
            f"120 reads under {plan_rules!r}: availability "
            f"{availability['retries_off']:.3f} without retries → "
            f"{availability['retries_on']:.3f} with retries "
            f"(amplification x"
            f"{stats_snapshots['retries_on']['retry_amplification']:.2f}, "
            f"{stats_snapshots['retries_on']['shed_overload']} shed)",
            fault_spec=plan_rules,
            availability_without_retries=availability["retries_off"],
            availability_with_retries=availability["retries_on"],
            pool_stats=stats_snapshots["retries_on"],
            pool_stats_baseline=stats_snapshots["retries_off"],
        )
    finally:
        faults.install(previous)


#: Simulated per-tree IO stall for CLAIM-PARALLEL (fetching a stored
#: tree from cold storage / a remote page server).  ``time.sleep``
#: releases the GIL, so this is the component the exchange worker pool
#: overlaps — disclosed in the printed row and the JSON record, like
#: ``bench_concurrent_sessions``'s per-op IO.
PARALLEL_IO_SECONDS = 0.008

#: Worker count for CLAIM-PARALLEL (the ``--shards`` flag).
PARALLEL_SHARDS = 4


def claim_parallel() -> None:
    """PR 9: sharded parallel execution with order-preserving merge.

    A forest-split workload — ~300 family trees, ~100k nodes total,
    each member's work being one simulated-IO fetch plus a real
    ``split`` of the Figure-4 pattern — evaluated once sequentially
    (``AQUA_PARALLEL=off``) and once through the exchange operator at
    ``--shards`` workers.  Ordered bit-identity between the two runs is
    asserted in the same process as the timing, so the speedup figure
    can never outlive a parity break.
    """
    from repro import config

    trees = 300
    nodes_per_tree = 350
    workers = PARALLEL_SHARDS
    db = Database()
    db.insert_many(
        [
            random_family_tree(nodes_per_tree, seed=s, planted_matches=s % 3)
            for s in range(trees)
        ],
        "Families",
    )
    total_nodes = sum(tree.size() for tree in db.extent("Families"))

    def fetch_and_split(tree):
        time.sleep(PARALLEL_IO_SECONDS)  # simulated storage IO, overlappable
        return len(
            split_pieces("Brazil(!?* USA !?*)", tree, resolver=by_citizen_or_name)
        )

    query = Q.extent("Families").sapply(fetch_and_split).build()

    with config.parallel_scope("off"):
        sequential_s, sequential = timed(lambda: evaluate(query, db), repeat=1)
    with config.parallel_scope("on"), config.parallel_workers_scope(workers):
        parallel_s, parallel = timed(lambda: evaluate(query, db), repeat=1)

    ordered_parity = list(sequential) == list(parallel) and sequential == parallel
    assert ordered_parity, "parallel stream diverged from the sequential one"
    speedup = sequential_s / parallel_s if parallel_s else 0.0
    row(
        "CLAIM-PARALLEL",
        f"{trees} trees ({total_nodes} nodes), split + {PARALLEL_IO_SECONDS * 1e3:.0f}ms"
        f" simulated IO/tree: sequential {sequential_s:.2f}s → "
        f"{workers} workers {parallel_s:.2f}s (x{speedup:.1f}, ordered parity"
        f" {'OK' if ordered_parity else 'BROKEN'})",
        workload="bench_fig4_split",
        trees=trees,
        total_nodes=total_nodes,
        workers=workers,
        mode=config.validated_parallel_worker_kind(),
        simulated_io_ms=PARALLEL_IO_SECONDS * 1e3,
        sequential_seconds=sequential_s,
        parallel_seconds=parallel_s,
        speedup_x=round(speedup, 2),
        ordered_parity=ordered_parity,
        cpu_count=os.cpu_count(),
    )


def claim_docstore() -> None:
    """PR 10: document-store path queries vs a naive DOM walk.

    The corpus is a ~10k-node scraped-site HTML page (150 articles,
    1 in 20 carrying ``lang='en'``) ingested through ``from_html``.
    The measured query ``//article[@lang='en']//p`` runs through the
    full pipeline — AQL alias table → plan cache → optimizer →
    ``index_anchor_split`` on the ``(tag, kind)`` node index →
    ``flatten(apply(step))`` — against ``repro.docstore.naive_path``,
    a plain recursive DOM walk over the same tree.  Result parity (by
    serialization), corpus round-trip fidelity, and warm plan-cache
    service are asserted in the same process as the timing.
    """
    from repro.docstore import from_html, naive_path, to_html
    from repro.docstore.corpus import corpus_document, corpus_html

    path = "//article[@lang='en']//p"
    html = corpus_html()
    round_trip = to_html(from_html(html)) == html
    assert round_trip, "corpus does not survive from_html → to_html"

    doc = corpus_document()
    nodes = doc.tree.size()

    algebra_s, algebra = timed(lambda: doc.path(path), repeat=5)
    naive_s, reference = timed(lambda: naive_path(doc.tree, path), repeat=5)

    rendered = sorted(to_html(member) for member in algebra)
    identical = rendered == sorted(to_html(member) for member in reference)
    assert identical, "path query diverged from the naive walk"

    hits_before = doc.session.plan_cache.hits
    doc.path(path)
    warm_hit = doc.session.plan_cache.hits == hits_before + 1

    speedup = naive_s / algebra_s if algebra_s else 0.0
    row(
        "CLAIM-DOCSTORE",
        f"{nodes}-node scraped site, {path}: naive walk {naive_s * 1e3:.1f}ms"
        f" → algebra {algebra_s * 1e3:.1f}ms (x{speedup:.1f},"
        f" {len(rendered)} matches, parity {'OK' if identical else 'BROKEN'},"
        f" round-trip {'OK' if round_trip else 'BROKEN'},"
        f" warm cache {'hit' if warm_hit else 'MISS'})",
        workload="bench_claim_docstore",
        nodes=nodes,
        matches=len(rendered),
        naive_seconds=naive_s,
        algebra_seconds=algebra_s,
        speedup_x=round(speedup, 2),
        identical=identical,
        round_trip=round_trip,
        warm_cache_hit=warm_hit,
    )


EXPERIMENTS = [
    fig1,
    fig2,
    fig3,
    fig4,
    fig5,
    claim_split,
    claim_conjunct,
    claim_kleene,
    claim_memo,
    claim_printf,
    claim_melody,
    claim_prepared,
    claim_list_tree,
    claim_engines,
    claim_columnar,
    claim_chaos_serving,
    claim_parallel,
    claim_docstore,
]


def main(argv: list[str] | None = None) -> None:
    global PARALLEL_SHARDS
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", metavar="PATH", help="also write rows as JSON records"
    )
    parser.add_argument(
        "--only",
        nargs="+",
        metavar="NAME",
        help="run only the named experiments (function names, e.g. claim_columnar)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=PARALLEL_SHARDS,
        metavar="N",
        help="worker count for the CLAIM-PARALLEL experiment (default 4)",
    )
    arguments = parser.parse_args(argv)
    if arguments.shards < 1:
        parser.error(f"--shards must be >= 1, got {arguments.shards}")
    PARALLEL_SHARDS = arguments.shards
    experiments = EXPERIMENTS
    if arguments.only:
        known = {e.__name__: e for e in EXPERIMENTS}
        unknown = [name for name in arguments.only if name not in known]
        if unknown:
            parser.error(
                f"unknown experiments {unknown}; choose from {sorted(known)}"
            )
        experiments = [known[name] for name in arguments.only]
    budget = Budget.from_env()
    print("AQUA reproduction — experiment summary (see EXPERIMENTS.md)")
    if not budget.is_unlimited:
        print(f"execution budget: {budget.describe()}")
    print("-" * 78)
    tripped: list[str] = []
    for experiment in experiments:
        label = experiment.__name__.upper().replace("_", "-")
        try:
            with guardrails.guarded(budget):
                experiment()
        except AquaError as exc:
            tripped.append(label)
            row(label, f"ABORTED: {exc}", budget_tripped=True)
    print("-" * 78)
    if arguments.json:
        records = [
            {
                "experiment": "BUDGET",
                "limits": budget.to_dict(),
                "tripped_experiments": tripped,
                "any_tripped": bool(tripped),
                "cpu_count": os.cpu_count(),
            },
            *RECORDS,
        ]
        with open(arguments.json, "w") as handle:
            json.dump(records, handle, indent=2)
        print(f"records written to {arguments.json}")


if __name__ == "__main__":
    main()
