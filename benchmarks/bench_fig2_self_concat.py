"""FIG2 — iterative self-concatenation ``[[a(b c α)]]*α`` (Figure 2).

Checks the first elements of the language exactly, then measures
membership cost as the unfolding depth grows — linear in depth, because
the matcher unrolls the closure lazily along the data spine.
"""

from __future__ import annotations

import pytest

from repro.core import AquaTree, parse_tree
from repro.patterns import parse_tree_pattern, tree_in_language

PATTERN = parse_tree_pattern("[[a(b c @)]]*@")


def unfolding(depth: int) -> AquaTree:
    """The depth-``d`` element of L([[a(b c α)]]*α)."""
    tree = AquaTree.build("a", ["b", "c"])
    for _ in range(depth - 1):
        tree = AquaTree.build("a", ["b", "c", tree])
    return tree


def test_fig2_first_four_elements(benchmark):
    """The four elements shown in Figure 2, all verified in one shot."""

    def check() -> bool:
        return all(tree_in_language(PATTERN, unfolding(d)) for d in range(1, 5))

    assert benchmark(check) is True


def test_fig2_non_elements_rejected(benchmark):
    bad = [parse_tree(t) for t in ["a(b)", "a(b c d)", "b", "a(a(b c) c b)"]]

    def check() -> bool:
        return not any(tree_in_language(PATTERN, t) for t in bad)

    assert benchmark(check) is True


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_fig2_membership_scales_with_depth(benchmark, depth):
    tree = unfolding(depth)
    result = benchmark(tree_in_language, PATTERN, tree)
    assert result is True


@pytest.mark.parametrize("depth", [4, 16, 64])
def test_fig2_plus_closure(benchmark, depth):
    pattern = parse_tree_pattern("[[a(b c @)]]+@")
    tree = unfolding(depth)
    result = benchmark(tree_in_language, pattern, tree)
    assert result is True
