"""CLAIM-SPLIT — §4 "Why Split?": the split/index rewrite of sub_select.

The paper: rewriting ``sub_select(d(e(h i)j))(T)`` through ``split`` on
an indexed anchor ``d`` "drastically narrows the search space".  We run
the logical plan (scan every node) and the index-anchored plan the
lowering chooses under ``optimize=True`` (probe the anchor's node
index) on the same trees and sweep anchor selectivity.

Expected shape: the indexed plan wins by roughly the inverse of the
anchor's selectivity; as the anchor approaches selectivity 1 the plans
converge (and the lowering's cost gate stops choosing the probe).
"""

from __future__ import annotations

import pytest

from repro.api import Session
from repro.physical import lower, operators as P
from repro.query import Q, evaluate
from repro.storage import Database
from repro.workloads import random_labeled_tree

#: Labels: 'd' is the anchor; others are background.
LABELS = ["d", "e", "h", "i", "j", "u", "v", "w", "x", "y"]
PATTERN = "d(?*)"
DEEP_PATTERN = "d(e(h i) j ?*)"


def make_db(size: int, anchor_weight: float, seed: int = 0) -> Database:
    weights = [anchor_weight] + [(100.0 - anchor_weight) / 9.0] * 9
    tree = random_labeled_tree(size, LABELS, seed=seed, weights=weights, max_arity=4)
    db = Database()
    db.bind_root("T", tree)
    # Warm the node index so the benchmark isolates query work.
    db.tree_index(tree)
    return db


@pytest.mark.parametrize("size", [500, 2000, 8000])
def test_claim_split_naive_scan(benchmark, size):
    db = make_db(size, anchor_weight=1.0, seed=size)
    query = Q.root("T").sub_select(DEEP_PATTERN).build()
    result = benchmark(evaluate, query, db)
    assert result is not None


@pytest.mark.parametrize("size", [500, 2000, 8000])
def test_claim_split_indexed(benchmark, size):
    db = make_db(size, anchor_weight=1.0, seed=size)
    query = Q.root("T").sub_select(DEEP_PATTERN).build()
    assert type(lower(query, db, choose_access_paths=True).root) is P.IndexAnchorScan
    session = Session(db)
    result = benchmark(session.query, query, optimize=True)
    assert result == evaluate(query, db)


@pytest.mark.parametrize("anchor_pct", [1, 10, 50])
def test_claim_split_selectivity_sweep_naive(benchmark, anchor_pct):
    db = make_db(3000, anchor_weight=float(anchor_pct), seed=anchor_pct)
    query = Q.root("T").sub_select(PATTERN).build()
    benchmark(evaluate, query, db)


@pytest.mark.parametrize("anchor_pct", [1, 10, 50])
def test_claim_split_selectivity_sweep_indexed(benchmark, anchor_pct):
    db = make_db(3000, anchor_weight=float(anchor_pct), seed=anchor_pct)
    query = Q.root("T").sub_select(PATTERN).build()
    assert type(lower(query, db, choose_access_paths=True).root) is P.IndexAnchorScan
    session = Session(db)
    result = benchmark(session.query, query, optimize=True)
    assert result == evaluate(query, db)


def test_claim_split_counters_narrow_search_space():
    """The narrowing itself, counted: index candidates ≪ nodes scanned."""
    db = make_db(4000, anchor_weight=1.0, seed=99)
    query = Q.root("T").sub_select(DEEP_PATTERN).build()

    with db.stats.scope():
        evaluate(query, db)
        naive_scanned = db.stats["nodes_scanned"]

    session = Session(db)
    with db.stats.scope():
        session.query(query, optimize=True)
        indexed_candidates = db.stats["index_candidates"]

    assert naive_scanned >= 4000
    assert indexed_candidates < naive_scanned / 10


def main(argv: list[str] | None = None) -> None:
    """Smoke entry point (CI): run the claims once, no pytest-benchmark."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true", help="small tree, single run"
    )
    arguments = parser.parse_args(argv)
    size = 500 if arguments.quick else 4000
    db = make_db(size, anchor_weight=1.0, seed=99)
    query = Q.root("T").sub_select(DEEP_PATTERN).build()
    assert type(lower(query, db, choose_access_paths=True).root) is P.IndexAnchorScan
    from repro import config
    from repro.query import evaluate_with_metrics

    # Pin the columnar kernel off: this smoke isolates the §4 index-probe
    # access path, and the kernel would otherwise accelerate the *naive*
    # leg (its own claim is gated separately via CLAIM-COLUMNAR).
    with config.columnar_scope("off"):
        with db.stats.scope():
            naive, naive_metrics = evaluate_with_metrics(query, db)
        session = Session(db)
        with db.stats.scope():
            indexed, indexed_metrics = session.query_with_metrics(
                query, optimize=True
            )
    assert naive == indexed
    naive_evals = naive_metrics.total("predicate_evals")
    indexed_evals = indexed_metrics.total("predicate_evals")
    assert indexed_evals < naive_evals, (indexed_evals, naive_evals)
    print(
        f"claim-split smoke ok (n={size}): "
        f"predicate_evals naive={naive_evals} indexed={indexed_evals}"
    )


if __name__ == "__main__":
    main()
