"""Deterministic fault injection at named engine seams (testing/CI only).

Proving that the engine *degrades gracefully* — the shell keeps its
session, the CLI exits nonzero with a diagnostic, the optimizer falls
back to a safe plan — requires making the failure happen on demand.
This module plants cheap :func:`fault_point` probes at named seams; a
:class:`FaultPlan` (seeded, so runs are reproducible) decides per hit
whether to raise, sleep, or trip the active budget.

Documented seams (see README "Execution limits & fault injection"):

* ``storage_lookup`` — :meth:`Database.root`, :meth:`Database.extent`,
  :meth:`Database.candidates`;
* ``index_probe`` — hash/ordered index lookups and range probes, list
  index position probes;
* ``matcher_step`` — once per candidate root/start position in the
  backtracking matchers and language-membership checks;
* ``optimizer_rewrite`` — before each rewrite-rule probe in the
  optimizer's pass loop.

Configuration is code (``injected(plan)``) or environment::

    AQUA_FAULTS="storage_lookup:error:1.0,index_probe:latency:0.5:0.002"
    AQUA_FAULT_SEED=42

Each rule is ``seam:kind:probability[:value]`` where ``kind`` is
``error`` (raise :class:`~repro.errors.InjectedFaultError`), ``latency``
(sleep ``value`` seconds), or ``budget`` (raise
:class:`~repro.errors.ResourceExhaustedError` as if a limit tripped —
budget *pressure* without waiting for real exhaustion).  Determinism:
every seam draws from its own ``random.Random`` seeded with
``seed ^ crc32(seam)``, so a given plan fires at the same hit numbers in
every run regardless of seam interleaving.
"""

from __future__ import annotations

import os
import random
import threading
import time
import zlib
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .config import FAULT_SEED_ENV, FAULTS_ENV, invalid_knob
from .errors import InjectedFaultError, QueryError, ResourceExhaustedError

#: The seams :func:`fault_point` is planted at.
SEAMS = ("storage_lookup", "index_probe", "matcher_step", "optimizer_rewrite")

FAULT_KINDS = ("error", "latency", "budget")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: at ``seam``, with ``probability``, do ``kind``."""

    seam: str
    kind: str
    probability: float = 1.0
    value: float = 0.0  # latency seconds (ignored by other kinds)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (use {FAULT_KINDS})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")


class FaultPlan:
    """A seeded set of fault rules plus per-seam hit/fire accounting.

    Thread-safe: a :class:`SessionPool` shares one plan across all its
    workers, so the hit/fire counters and the per-seam RNG draws are
    serialized under a lock.  The seeded-determinism contract survives
    concurrency in the aggregate — the *n*-th hit of a seam fires
    exactly when it would single-threaded — though which worker lands
    which hit number depends on scheduling.  The lock covers only the
    bookkeeping: injected latency sleeps and raised faults happen
    outside it, so one seam's slow fault never blocks another seam.
    """

    def __init__(self, rules: list[FaultRule] | None = None, seed: int = 0) -> None:
        self.seed = seed
        self.rules: dict[str, list[FaultRule]] = {}
        self.hits: Counter = Counter()
        self.fired: Counter = Counter()
        self._rngs: dict[str, random.Random] = {}
        self._lock = threading.Lock()
        for rule in rules or ():
            self.add(rule)

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.setdefault(rule.seam, []).append(rule)
        return self

    def _rng(self, seam: str) -> random.Random:
        rng = self._rngs.get(seam)
        if rng is None:
            rng = self._rngs[seam] = random.Random(self.seed ^ zlib.crc32(seam.encode()))
        return rng

    def check(self, seam: str) -> None:
        """One seam hit: fire whichever rules the seeded dice select."""
        rules = self.rules.get(seam)
        if not rules:
            return
        sleep_for = 0.0
        raise_exc: Exception | None = None
        with self._lock:
            self.hits[seam] += 1
            hit = self.hits[seam]
            rng = self._rng(seam)
            for rule in rules:
                # Always draw, even when the rule won't fire, so the
                # random sequence (and therefore which hits fire) is a
                # function of the hit number alone — deterministic
                # across runs.
                draw = rng.random()
                if rule.probability < 1.0 and draw >= rule.probability:
                    continue
                self.fired[seam] += 1
                if rule.kind == "latency":
                    sleep_for += rule.value
                elif rule.kind == "error":
                    raise_exc = InjectedFaultError(seam, hit)
                    break
                else:  # budget pressure
                    raise_exc = ResourceExhaustedError(
                        f"injected budget pressure at seam {seam!r} "
                        f"(hit #{hit})",
                        limit_name="injected",
                        seam=seam,
                    )
                    break
        # Act outside the lock: a latency fault must not serialize every
        # other thread's fault points behind this thread's sleep.
        if sleep_for > 0.0:
            time.sleep(sleep_for)
        if raise_exc is not None:
            raise raise_exc

    def snapshot(self) -> dict:
        """A consistent copy of the accounting (for reports / shell)."""
        with self._lock:
            return {
                "seed": self.seed,
                "rules": {
                    seam: [
                        {
                            "kind": rule.kind,
                            "probability": rule.probability,
                            "value": rule.value,
                        }
                        for rule in rules
                    ]
                    for seam, rules in sorted(self.rules.items())
                },
                "hits": dict(self.hits),
                "fired": dict(self.fired),
            }

    def __repr__(self) -> str:
        rules = sum(len(r) for r in self.rules.values())
        with self._lock:
            fired = dict(self.fired)
        return f"FaultPlan(seed={self.seed}, rules={rules}, fired={fired})"


_RULE_GRAMMAR = "seam:kind:probability[:value] (comma-separated)"


def parse_rules(text: str) -> list[FaultRule]:
    """Parse the ``AQUA_FAULTS`` grammar: ``seam:kind:probability[:value]``.

    Malformed input raises a :class:`~repro.errors.QueryError` naming
    the knob — the same validation style as :mod:`repro.config` — so a
    typo in the environment produces a diagnostic, not a stack trace
    from ``float()`` deep inside a dataclass.
    """
    rules: list[FaultRule] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise invalid_knob(FAULTS_ENV, chunk, _RULE_GRAMMAR)
        seam, kind = parts[0], parts[1]
        try:
            probability = float(parts[2]) if len(parts) > 2 else 1.0
            value = float(parts[3]) if len(parts) > 3 else 0.0
        except ValueError:
            raise invalid_knob(FAULTS_ENV, chunk, _RULE_GRAMMAR) from None
        try:
            rules.append(FaultRule(seam, kind, probability, value))
        except ValueError as exc:
            raise invalid_knob(FAULTS_ENV, chunk, str(exc)) from None
    return rules


def plan_from_env(environ=None) -> FaultPlan | None:
    """Build the plan ``AQUA_FAULTS``/``AQUA_FAULT_SEED`` describe, if any.

    Raises :class:`~repro.errors.QueryError` on a malformed spec *or* a
    malformed seed — a chaos run configured with a typo must fail loudly
    at the knob, not silently run with seed 0 or no faults at all.
    """
    environ = os.environ if environ is None else environ
    spec = environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return None
    raw_seed = environ.get(FAULT_SEED_ENV, "0").strip() or "0"
    try:
        seed = int(raw_seed)
    except ValueError:
        raise invalid_knob(FAULT_SEED_ENV, raw_seed, "an integer") from None
    return FaultPlan(parse_rules(spec), seed=seed)


def _initial_state() -> tuple[FaultPlan | None, QueryError | None]:
    """Read the environment once at import, deferring any error.

    A malformed ``AQUA_FAULTS`` must not make ``import repro`` itself
    explode (that would take down tools that never hit a fault point);
    the error is stored and raised from :func:`active_plan` /
    :func:`fault_point` — the first moment the bad config would have
    mattered — with the knob named in the message.
    """
    try:
        return plan_from_env(), None
    except QueryError as exc:
        return None, exc


#: The active plan.  ``None`` keeps every fault point a single global
#: read.  Initialized from the environment once at import; tests install
#: plans with :func:`injected` and CI sets the env before Python starts.
_active: FaultPlan | None
_env_error: QueryError | None
_active, _env_error = _initial_state()


def active_plan() -> FaultPlan | None:
    if _env_error is not None:
        raise _env_error
    return _active


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan.

    Explicit installation supersedes a malformed environment: the
    deferred import-time error is cleared.
    """
    global _active, _env_error
    previous = _active
    _active = plan
    _env_error = None
    return previous


def refresh_from_env() -> FaultPlan | None:
    """Re-read the environment (for tests that monkeypatch it)."""
    return install(plan_from_env())


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Run a block with ``plan`` active, restoring the previous plan."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def fault_point(seam: str) -> None:
    """A seam probe: free when no plan is active."""
    plan = _active
    if plan is not None:
        plan.check(seam)
    elif _env_error is not None:
        raise _env_error
