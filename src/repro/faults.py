"""Deterministic fault injection at named engine seams (testing/CI only).

Proving that the engine *degrades gracefully* — the shell keeps its
session, the CLI exits nonzero with a diagnostic, the optimizer falls
back to a safe plan — requires making the failure happen on demand.
This module plants cheap :func:`fault_point` probes at named seams; a
:class:`FaultPlan` (seeded, so runs are reproducible) decides per hit
whether to raise, sleep, or trip the active budget.

Documented seams (see README "Execution limits & fault injection"):

* ``storage_lookup`` — :meth:`Database.root`, :meth:`Database.extent`,
  :meth:`Database.candidates`;
* ``index_probe`` — hash/ordered index lookups and range probes, list
  index position probes;
* ``matcher_step`` — once per candidate root/start position in the
  backtracking matchers and language-membership checks;
* ``optimizer_rewrite`` — before each rewrite-rule probe in the
  optimizer's pass loop.

Configuration is code (``injected(plan)``) or environment::

    AQUA_FAULTS="storage_lookup:error:1.0,index_probe:latency:0.5:0.002"
    AQUA_FAULT_SEED=42

Each rule is ``seam:kind:probability[:value]`` where ``kind`` is
``error`` (raise :class:`~repro.errors.InjectedFaultError`), ``latency``
(sleep ``value`` seconds), or ``budget`` (raise
:class:`~repro.errors.ResourceExhaustedError` as if a limit tripped —
budget *pressure* without waiting for real exhaustion).  Determinism:
every seam draws from its own ``random.Random`` seeded with
``seed ^ crc32(seam)``, so a given plan fires at the same hit numbers in
every run regardless of seam interleaving.
"""

from __future__ import annotations

import os
import random
import time
import zlib
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from .errors import InjectedFaultError, ResourceExhaustedError

#: The seams :func:`fault_point` is planted at.
SEAMS = ("storage_lookup", "index_probe", "matcher_step", "optimizer_rewrite")

FAULT_KINDS = ("error", "latency", "budget")


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: at ``seam``, with ``probability``, do ``kind``."""

    seam: str
    kind: str
    probability: float = 1.0
    value: float = 0.0  # latency seconds (ignored by other kinds)

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} (use {FAULT_KINDS})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"fault probability must be in [0, 1], got {self.probability}")


class FaultPlan:
    """A seeded set of fault rules plus per-seam hit/fire accounting."""

    def __init__(self, rules: list[FaultRule] | None = None, seed: int = 0) -> None:
        self.seed = seed
        self.rules: dict[str, list[FaultRule]] = {}
        self.hits: Counter = Counter()
        self.fired: Counter = Counter()
        self._rngs: dict[str, random.Random] = {}
        for rule in rules or ():
            self.add(rule)

    def add(self, rule: FaultRule) -> "FaultPlan":
        self.rules.setdefault(rule.seam, []).append(rule)
        return self

    def _rng(self, seam: str) -> random.Random:
        rng = self._rngs.get(seam)
        if rng is None:
            rng = self._rngs[seam] = random.Random(self.seed ^ zlib.crc32(seam.encode()))
        return rng

    def check(self, seam: str) -> None:
        """One seam hit: fire whichever rules the seeded dice select."""
        rules = self.rules.get(seam)
        if not rules:
            return
        self.hits[seam] += 1
        rng = self._rng(seam)
        for rule in rules:
            # Always draw, even when the rule won't fire, so the random
            # sequence (and therefore which hits fire) is a function of
            # the hit number alone — deterministic across runs.
            draw = rng.random()
            if rule.probability < 1.0 and draw >= rule.probability:
                continue
            self.fired[seam] += 1
            if rule.kind == "latency":
                time.sleep(rule.value)
            elif rule.kind == "error":
                raise InjectedFaultError(seam, self.hits[seam])
            else:  # budget pressure
                raise ResourceExhaustedError(
                    f"injected budget pressure at seam {seam!r} "
                    f"(hit #{self.hits[seam]})",
                    limit_name="injected",
                    seam=seam,
                )

    def __repr__(self) -> str:
        rules = sum(len(r) for r in self.rules.values())
        return f"FaultPlan(seed={self.seed}, rules={rules}, fired={dict(self.fired)})"


def parse_rules(text: str) -> list[FaultRule]:
    """Parse the ``AQUA_FAULTS`` grammar: ``seam:kind:probability[:value]``."""
    rules: list[FaultRule] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        parts = chunk.split(":")
        if len(parts) < 2:
            raise ValueError(f"malformed fault rule {chunk!r} (seam:kind[:prob[:value]])")
        seam, kind = parts[0], parts[1]
        probability = float(parts[2]) if len(parts) > 2 else 1.0
        value = float(parts[3]) if len(parts) > 3 else 0.0
        rules.append(FaultRule(seam, kind, probability, value))
    return rules


def plan_from_env(environ=None) -> FaultPlan | None:
    """Build the plan ``AQUA_FAULTS``/``AQUA_FAULT_SEED`` describe, if any."""
    environ = os.environ if environ is None else environ
    spec = environ.get("AQUA_FAULTS", "").strip()
    if not spec:
        return None
    try:
        seed = int(environ.get("AQUA_FAULT_SEED", "0"))
    except ValueError:
        seed = 0
    return FaultPlan(parse_rules(spec), seed=seed)


#: The active plan.  ``None`` keeps every fault point a single global
#: read.  Initialized from the environment once at import; tests install
#: plans with :func:`injected` and CI sets the env before Python starts.
_active: FaultPlan | None = plan_from_env()


def active_plan() -> FaultPlan | None:
    return _active


def install(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` process-wide; returns the previous plan."""
    global _active
    previous = _active
    _active = plan
    return previous


def refresh_from_env() -> FaultPlan | None:
    """Re-read the environment (for tests that monkeypatch it)."""
    return install(plan_from_env())


@contextmanager
def injected(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Run a block with ``plan`` active, restoring the previous plan."""
    previous = install(plan)
    try:
        yield plan
    finally:
        install(previous)


def fault_point(seam: str) -> None:
    """A seam probe: free when no plan is active."""
    plan = _active
    if plan is not None:
        plan.check(seam)
