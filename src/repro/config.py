"""Configuration knobs: one validation point for the ``AQUA_*`` environment.

Three knobs steer execution, and historically each was parsed at its
point of use — a typo either crashed deep in the stack or silently fell
back to a default.  This module is now the single place a knob value is
read and validated; a bad value raises a one-line
:class:`~repro.errors.QueryError` naming the knob and the accepted
values, whether it arrived via the environment or an explicit argument.

Precedence (resolved here and documented in the README table):

1. an explicit per-call argument (``executor=``, ``engine=``, ...);
2. a :class:`~repro.api.Session`-scoped override (thread-local,
   armed by :func:`tree_engine_scope` / :func:`executor_scope`);
3. the ``AQUA_*`` environment variable;
4. the built-in default.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Iterator

from .errors import QueryError

#: Environment knob selecting the default executor.
EXECUTOR_ENV = "AQUA_EXECUTOR"
EXECUTORS = ("streaming", "eager")
DEFAULT_EXECUTOR = "streaming"

#: Environment knob selecting the default tree-matching engine.
TREE_ENGINE_ENV = "AQUA_TREE_ENGINE"
TREE_ENGINES = ("memo", "backtrack")
DEFAULT_TREE_ENGINE = "memo"

#: Environment knob overriding the default DFA transition-cache bound.
DFA_CACHE_LIMIT_ENV = "AQUA_DFA_CACHE_LIMIT"
DEFAULT_DFA_CACHE_LIMIT = 4096

#: Environment knob enabling/disabling the columnar tree kernel — the
#: escape hatch back to pure node-at-a-time evaluation.
COLUMNAR_ENV = "AQUA_COLUMNAR"
COLUMNAR_MODES = ("on", "off")
DEFAULT_COLUMNAR = "on"

#: Environment knob selecting the column backend.  ``auto`` prefers
#: numpy when the ``[columnar]`` extra is installed and falls back to
#: pure-Python int bitsets; the explicit values pin one backend.
COLUMNAR_BACKEND_ENV = "AQUA_COLUMNAR_BACKEND"
COLUMNAR_BACKENDS = ("auto", "numpy", "python")
DEFAULT_COLUMNAR_BACKEND = "auto"

#: Environment knob: minimum element count before a structure is worth
#: encoding columnar.  Small trees pay more in column builds than they
#: save in matcher dispatch (and their work counters are pinned by
#: golden tests), so the kernel only engages at or above this size.
COLUMNAR_THRESHOLD_ENV = "AQUA_COLUMNAR_THRESHOLD"
DEFAULT_COLUMNAR_THRESHOLD = 512

#: Environment knob enabling/disabling parallel (sharded) execution of
#: set-shaped physical operators — the escape hatch back to the
#: single-threaded pipeline.
PARALLEL_ENV = "AQUA_PARALLEL"
PARALLEL_MODES = ("on", "off")
DEFAULT_PARALLEL = "on"

#: Environment knob sizing the worker pool an exchange operator may fan
#: out to.  ``auto`` resolves to ``os.cpu_count()``; an explicit integer
#: pins the pool.  The resolved value is also the capacity of the
#: process-wide shared worker budget, so nested fan-out (a pooled
#: session whose query itself shards) never multiplies threads.
PARALLEL_WORKERS_ENV = "AQUA_PARALLEL_WORKERS"
DEFAULT_PARALLEL_WORKERS = "auto"

#: Environment knob: minimum member count before an extent is worth
#: sharding.  Small inputs pay more in worker arming (thread spawn,
#: guard/match-scope re-arming) than they save — mirrored by the
#: optimizer's exchange cost term (`EXCHANGE_WORKER_COST`).
PARALLEL_MIN_ROWS_ENV = "AQUA_PARALLEL_MIN_ROWS"
DEFAULT_PARALLEL_MIN_ROWS = 256

#: Environment knob selecting the worker kind: ``threads`` (default —
#: shares the storage caches and the cumulative budget ledger) or
#: ``processes`` (fork-based, for CPU-bound matching on multi-core
#: machines; falls back to threads when fork or pickling is
#: unavailable, counted as ``parallel_process_fallbacks``).
PARALLEL_MODE_ENV = "AQUA_PARALLEL_MODE"
PARALLEL_WORKER_KINDS = ("threads", "processes")
DEFAULT_PARALLEL_WORKER_KIND = "threads"

#: Environment knobs configuring deterministic fault injection (parsed
#: and validated by :mod:`repro.faults`, reported here so every knob
#: failure reads the same).
FAULTS_ENV = "AQUA_FAULTS"
FAULT_SEED_ENV = "AQUA_FAULT_SEED"

_local = threading.local()


def invalid_knob(knob: str, value: object, accepted: str) -> QueryError:
    """The one-line diagnostic every ``AQUA_*`` knob failure uses.

    Public so other modules that own a knob's grammar (e.g.
    :mod:`repro.faults` for ``AQUA_FAULTS``) raise the same shape of
    error the core knobs do: the knob name, the offending value, and
    what would have been accepted.
    """
    return QueryError(f"{knob}: invalid value {value!r} (accepted: {accepted})")


_bad_knob = invalid_knob


@contextmanager
def executor_scope(executor: str | None) -> Iterator[None]:
    """Arm a thread-local executor default (a Session's ``executor=``)."""
    if executor is not None and executor not in EXECUTORS:
        raise _bad_knob(EXECUTOR_ENV, executor, " | ".join(EXECUTORS))
    previous = getattr(_local, "executor", None)
    _local.executor = executor if executor is not None else previous
    try:
        yield
    finally:
        _local.executor = previous


@contextmanager
def tree_engine_scope(engine: str | None) -> Iterator[None]:
    """Arm a thread-local tree-engine default (a Session's ``engine=``)."""
    if engine is not None and engine not in TREE_ENGINES:
        raise _bad_knob(TREE_ENGINE_ENV, engine, " | ".join(TREE_ENGINES))
    previous = getattr(_local, "tree_engine", None)
    _local.tree_engine = engine if engine is not None else previous
    try:
        yield
    finally:
        _local.tree_engine = previous


def validated_executor(executor: str | None = None) -> str:
    """Resolve the executor: argument > session scope > env > default."""
    chosen = executor
    if chosen is None:
        chosen = getattr(_local, "executor", None)
    if chosen is None:
        chosen = os.environ.get(EXECUTOR_ENV)
    if chosen is None:
        return DEFAULT_EXECUTOR
    if chosen not in EXECUTORS:
        raise _bad_knob(EXECUTOR_ENV, chosen, " | ".join(EXECUTORS))
    return chosen


def validated_tree_engine(engine: str | None = None) -> str:
    """Resolve the tree engine: argument > session scope > env > default."""
    chosen = engine
    if chosen is None:
        chosen = getattr(_local, "tree_engine", None)
    if chosen is None:
        chosen = os.environ.get(TREE_ENGINE_ENV)
    if chosen is None:
        return DEFAULT_TREE_ENGINE
    if chosen not in TREE_ENGINES:
        raise _bad_knob(TREE_ENGINE_ENV, chosen, " | ".join(TREE_ENGINES))
    return chosen


@contextmanager
def columnar_scope(mode: str | None) -> Iterator[None]:
    """Arm a thread-local columnar on/off default (tests, benchmarks)."""
    if mode is not None and mode not in COLUMNAR_MODES:
        raise _bad_knob(COLUMNAR_ENV, mode, " | ".join(COLUMNAR_MODES))
    previous = getattr(_local, "columnar", None)
    _local.columnar = mode if mode is not None else previous
    try:
        yield
    finally:
        _local.columnar = previous


def validated_columnar(mode: str | None = None) -> str:
    """Resolve the columnar switch: argument > scope > env > default."""
    chosen = mode
    if chosen is None:
        chosen = getattr(_local, "columnar", None)
    if chosen is None:
        chosen = os.environ.get(COLUMNAR_ENV)
    if chosen is None:
        return DEFAULT_COLUMNAR
    if chosen not in COLUMNAR_MODES:
        raise _bad_knob(COLUMNAR_ENV, chosen, " | ".join(COLUMNAR_MODES))
    return chosen


def columnar_enabled(mode: str | None = None) -> bool:
    return validated_columnar(mode) == "on"


@contextmanager
def columnar_backend_scope(backend: str | None) -> Iterator[None]:
    """Arm a thread-local column-backend default (tests, benchmarks)."""
    if backend is not None and backend not in COLUMNAR_BACKENDS:
        raise _bad_knob(COLUMNAR_BACKEND_ENV, backend, " | ".join(COLUMNAR_BACKENDS))
    previous = getattr(_local, "columnar_backend", None)
    _local.columnar_backend = backend if backend is not None else previous
    try:
        yield
    finally:
        _local.columnar_backend = previous


def validated_columnar_backend(backend: str | None = None) -> str:
    """Resolve the backend choice: argument > scope > env > default.

    Returns one of ``auto | numpy | python`` — availability of numpy is
    resolved by :func:`repro.storage.columnar.resolve_backend`, which
    raises the same knob-shaped error when ``numpy`` is pinned but not
    installed.
    """
    chosen = backend
    if chosen is None:
        chosen = getattr(_local, "columnar_backend", None)
    if chosen is None:
        chosen = os.environ.get(COLUMNAR_BACKEND_ENV)
    if chosen is None:
        return DEFAULT_COLUMNAR_BACKEND
    if chosen not in COLUMNAR_BACKENDS:
        raise _bad_knob(COLUMNAR_BACKEND_ENV, chosen, " | ".join(COLUMNAR_BACKENDS))
    return chosen


@contextmanager
def columnar_threshold_scope(threshold: int | None) -> Iterator[None]:
    """Arm a thread-local threshold default (tests force 0 to engage)."""
    if threshold is not None and threshold < 0:
        raise _bad_knob(COLUMNAR_THRESHOLD_ENV, threshold, "an integer >= 0")
    previous = getattr(_local, "columnar_threshold", None)
    _local.columnar_threshold = threshold if threshold is not None else previous
    try:
        yield
    finally:
        _local.columnar_threshold = previous


def validated_columnar_threshold(threshold: int | None = None) -> int:
    """Resolve the engagement threshold: argument > scope > env > default."""
    chosen: int | None = threshold
    if chosen is None:
        chosen = getattr(_local, "columnar_threshold", None)
    if chosen is None:
        raw = os.environ.get(COLUMNAR_THRESHOLD_ENV)
        if raw is None:
            return DEFAULT_COLUMNAR_THRESHOLD
        try:
            chosen = int(raw)
        except ValueError:
            raise _bad_knob(
                COLUMNAR_THRESHOLD_ENV, raw, "an integer >= 0"
            ) from None
    if chosen < 0:
        raise _bad_knob(COLUMNAR_THRESHOLD_ENV, chosen, "an integer >= 0")
    return chosen


@contextmanager
def parallel_scope(mode: str | None) -> Iterator[None]:
    """Arm a thread-local parallel on/off default (a Session's ``parallel=``)."""
    if mode is not None and mode not in PARALLEL_MODES:
        raise _bad_knob(PARALLEL_ENV, mode, " | ".join(PARALLEL_MODES))
    previous = getattr(_local, "parallel", None)
    _local.parallel = mode if mode is not None else previous
    try:
        yield
    finally:
        _local.parallel = previous


def validated_parallel(mode: str | None = None) -> str:
    """Resolve the parallel switch: argument > scope > env > default."""
    chosen = mode
    if chosen is None:
        chosen = getattr(_local, "parallel", None)
    if chosen is None:
        chosen = os.environ.get(PARALLEL_ENV)
    if chosen is None:
        return DEFAULT_PARALLEL
    if chosen not in PARALLEL_MODES:
        raise _bad_knob(PARALLEL_ENV, chosen, " | ".join(PARALLEL_MODES))
    return chosen


def parallel_enabled(mode: str | None = None) -> bool:
    return validated_parallel(mode) == "on"


def _coerce_workers(knob_value: object) -> int | None:
    """``auto`` → None (resolve from the machine); else a positive int."""
    if knob_value == "auto":
        return None
    try:
        workers = int(knob_value)  # type: ignore[arg-type]
    except (TypeError, ValueError):
        raise _bad_knob(
            PARALLEL_WORKERS_ENV, knob_value, "auto | an integer >= 1"
        ) from None
    if workers < 1:
        raise _bad_knob(PARALLEL_WORKERS_ENV, workers, "auto | an integer >= 1")
    return workers


@contextmanager
def parallel_workers_scope(workers: int | str | None) -> Iterator[None]:
    """Arm a thread-local worker-count default (tests, benchmarks)."""
    if workers is not None:
        _coerce_workers(workers)
    previous = getattr(_local, "parallel_workers", None)
    _local.parallel_workers = workers if workers is not None else previous
    try:
        yield
    finally:
        _local.parallel_workers = previous


def validated_parallel_workers(workers: int | str | None = None) -> int:
    """Resolve the worker-pool size: argument > scope > env > default.

    Returns a concrete positive integer — ``auto`` resolves to
    ``os.cpu_count()`` (floored at 1), so callers never see the
    sentinel.
    """
    chosen: int | str | None = workers
    if chosen is None:
        chosen = getattr(_local, "parallel_workers", None)
    if chosen is None:
        chosen = os.environ.get(PARALLEL_WORKERS_ENV)
    if chosen is None:
        chosen = DEFAULT_PARALLEL_WORKERS
    resolved = _coerce_workers(chosen)
    if resolved is None:
        return max(1, os.cpu_count() or 1)
    return resolved


@contextmanager
def parallel_min_rows_scope(min_rows: int | None) -> Iterator[None]:
    """Arm a thread-local sharding threshold (tests force 0 to engage)."""
    if min_rows is not None and min_rows < 0:
        raise _bad_knob(PARALLEL_MIN_ROWS_ENV, min_rows, "an integer >= 0")
    previous = getattr(_local, "parallel_min_rows", None)
    _local.parallel_min_rows = min_rows if min_rows is not None else previous
    try:
        yield
    finally:
        _local.parallel_min_rows = previous


def validated_parallel_min_rows(min_rows: int | None = None) -> int:
    """Resolve the sharding threshold: argument > scope > env > default."""
    chosen: int | None = min_rows
    if chosen is None:
        chosen = getattr(_local, "parallel_min_rows", None)
    if chosen is None:
        raw = os.environ.get(PARALLEL_MIN_ROWS_ENV)
        if raw is None:
            return DEFAULT_PARALLEL_MIN_ROWS
        try:
            chosen = int(raw)
        except ValueError:
            raise _bad_knob(
                PARALLEL_MIN_ROWS_ENV, raw, "an integer >= 0"
            ) from None
    if chosen < 0:
        raise _bad_knob(PARALLEL_MIN_ROWS_ENV, chosen, "an integer >= 0")
    return chosen


@contextmanager
def parallel_worker_kind_scope(kind: str | None) -> Iterator[None]:
    """Arm a thread-local worker-kind default (``threads``/``processes``)."""
    if kind is not None and kind not in PARALLEL_WORKER_KINDS:
        raise _bad_knob(PARALLEL_MODE_ENV, kind, " | ".join(PARALLEL_WORKER_KINDS))
    previous = getattr(_local, "parallel_worker_kind", None)
    _local.parallel_worker_kind = kind if kind is not None else previous
    try:
        yield
    finally:
        _local.parallel_worker_kind = previous


def validated_parallel_worker_kind(kind: str | None = None) -> str:
    """Resolve the worker kind: argument > scope > env > default."""
    chosen = kind
    if chosen is None:
        chosen = getattr(_local, "parallel_worker_kind", None)
    if chosen is None:
        chosen = os.environ.get(PARALLEL_MODE_ENV)
    if chosen is None:
        return DEFAULT_PARALLEL_WORKER_KIND
    if chosen not in PARALLEL_WORKER_KINDS:
        raise _bad_knob(PARALLEL_MODE_ENV, chosen, " | ".join(PARALLEL_WORKER_KINDS))
    return chosen


def validated_dfa_cache_limit(limit: int | None = None) -> int:
    """Resolve the DFA cache bound: argument > env > default (≥ 1)."""
    if limit is not None:
        if limit < 1:
            raise _bad_knob(DFA_CACHE_LIMIT_ENV, limit, "an integer >= 1")
        return limit
    raw = os.environ.get(DFA_CACHE_LIMIT_ENV)
    if raw is None:
        return DEFAULT_DFA_CACHE_LIMIT
    try:
        parsed = int(raw)
    except ValueError:
        raise _bad_knob(DFA_CACHE_LIMIT_ENV, raw, "an integer >= 1") from None
    if parsed < 1:
        raise _bad_knob(DFA_CACHE_LIMIT_ENV, parsed, "an integer >= 1")
    return parsed
