"""ODMG-93 collection interfaces mapped onto the AQUA algebra (paper §8).

"As part of our research on AQUA, we have developed a mapping for the
ODMG set and bag algebra to the AQUA set and multiset algebra.  The
array type in the ODMG specification is similar to our notion of list,
and we believe that we will have little difficulty simulating the ODMG
arrays with AQUA lists."

This module carries out that program: the ODMG-93 (Release 1.1 [5])
collection operations expressed over the AQUA bulk types.

* :class:`OdmgSet` / :class:`OdmgBag` — thin views over
  :class:`~repro.core.aqua_set.AquaSet` / ``AquaMultiset`` with the
  ODMG operation names (``union_of``, ``insert_element`` ...).
* :class:`OdmgArray` — the ODMG array simulated with an AQUA list:
  positional access, in-place-style updates (persistent underneath),
  and ``resize`` semantics.  AQUA's pattern operators remain available
  through :meth:`OdmgArray.as_aqua_list` — which is the paper's point:
  the ODMG interface costs nothing, the richer predicates come free.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from .core.aqua_list import AquaList
from .core.aqua_set import AquaMultiset, AquaSet
from .core.equality import DEFAULT, Equality
from .errors import QueryError


class OdmgSet:
    """ODMG ``Set<T>`` over an AQUA set."""

    def __init__(self, items: Iterable[Any] = (), equality: Equality = DEFAULT) -> None:
        self._set = AquaSet(items, equality)

    # -- ODMG collection protocol ------------------------------------------

    def cardinality(self) -> int:
        return len(self._set)

    def is_empty(self) -> bool:
        return not self._set

    def contains_element(self, element: Any) -> bool:
        return element in self._set

    def insert_element(self, element: Any) -> None:
        self._set.add(element)

    def remove_element(self, element: Any) -> None:
        if element not in self._set:
            raise QueryError("remove_element: element not present")
        self._set = self._set.difference(AquaSet([element], self._set.equality))

    # -- ODMG set algebra -----------------------------------------------------

    def union_of(self, other: "OdmgSet") -> "OdmgSet":
        return OdmgSet(self._set.union(other._set))

    def intersection_of(self, other: "OdmgSet") -> "OdmgSet":
        return OdmgSet(self._set.intersection(other._set))

    def difference_of(self, other: "OdmgSet") -> "OdmgSet":
        return OdmgSet(self._set.difference(other._set))

    def select(self, predicate: Callable[[Any], bool]) -> "OdmgSet":
        return OdmgSet(self._set.select(predicate))

    def is_subset_of(self, other: "OdmgSet") -> bool:
        return all(element in other._set for element in self._set)

    def is_proper_subset_of(self, other: "OdmgSet") -> bool:
        return self.is_subset_of(other) and self.cardinality() < other.cardinality()

    # -- bridges -----------------------------------------------------------------

    def as_aqua_set(self) -> AquaSet:
        return self._set

    def __iter__(self) -> Iterator[Any]:
        return iter(self._set)

    def __repr__(self) -> str:
        return f"OdmgSet({sorted(map(repr, self._set))})"


class OdmgBag:
    """ODMG ``Bag<T>`` over an AQUA multiset."""

    def __init__(self, items: Iterable[Any] = (), equality: Equality = DEFAULT) -> None:
        self._bag = AquaMultiset(items, equality)

    def cardinality(self) -> int:
        return len(self._bag)

    def is_empty(self) -> bool:
        return len(self._bag) == 0

    def contains_element(self, element: Any) -> bool:
        return element in self._bag

    def occurrences_of(self, element: Any) -> int:
        return self._bag.count(element)

    def insert_element(self, element: Any) -> None:
        self._bag.add(element)

    def remove_element(self, element: Any) -> None:
        if element not in self._bag:
            raise QueryError("remove_element: element not present")
        self._bag = self._bag.difference(AquaMultiset([element], self._bag.equality))

    def union_of(self, other: "OdmgBag") -> "OdmgBag":
        result = OdmgBag()
        result._bag = self._bag.union(other._bag)
        return result

    def intersection_of(self, other: "OdmgBag") -> "OdmgBag":
        result = OdmgBag()
        result._bag = self._bag.intersection(other._bag)
        return result

    def difference_of(self, other: "OdmgBag") -> "OdmgBag":
        result = OdmgBag()
        result._bag = self._bag.difference(other._bag)
        return result

    def distinct(self) -> OdmgSet:
        return OdmgSet(self._bag.dup_elim())

    def as_aqua_multiset(self) -> AquaMultiset:
        return self._bag

    def __iter__(self) -> Iterator[Any]:
        return iter(self._bag)


class OdmgArray:
    """ODMG ``Array<T>`` simulated with an AQUA list (§8).

    The ODMG interface mutates; underneath every operation rebuilds the
    persistent AQUA list, so snapshots taken via :meth:`as_aqua_list`
    are never disturbed — and all of §6's pattern machinery applies to
    them unchanged.
    """

    def __init__(self, items: Iterable[Any] = ()) -> None:
        self._list = AquaList.from_values(items)

    # -- ODMG array protocol ---------------------------------------------------

    def cardinality(self) -> int:
        return len(self._list)

    upper_bound = cardinality

    def retrieve_element_at(self, index: int) -> Any:
        self._check(index)
        return self._list.values()[index]

    def replace_element_at(self, element: Any, index: int) -> None:
        self._check(index)
        values = self._list.values()
        values[index] = element
        self._list = AquaList.from_values(values)

    def insert_element_at(self, element: Any, index: int) -> None:
        if not 0 <= index <= len(self._list):
            raise QueryError(f"array index {index} out of bounds")
        values = self._list.values()
        values.insert(index, element)
        self._list = AquaList.from_values(values)

    def remove_element_at(self, index: int) -> Any:
        self._check(index)
        values = self._list.values()
        removed = values.pop(index)
        self._list = AquaList.from_values(values)
        return removed

    def resize(self, new_size: int, filler: Any = None) -> None:
        """Grow with ``filler`` or truncate to ``new_size`` (ODMG resize)."""
        if new_size < 0:
            raise QueryError("array size cannot be negative")
        values = self._list.values()
        if new_size <= len(values):
            values = values[:new_size]
        else:
            values = values + [filler] * (new_size - len(values))
        self._list = AquaList.from_values(values)

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self._list):
            raise QueryError(f"array index {index} out of bounds")

    # -- the AQUA bridge ----------------------------------------------------------

    def as_aqua_list(self) -> AquaList:
        """A snapshot usable with every §6 list operator and pattern."""
        return self._list

    def sub_select(self, pattern: Any, resolver=None) -> AquaSet:
        """AQUA's pattern predicates, "significantly more powerful" than
        the ODMG view of collections (§8) — one call away."""
        from .algebra.list_ops import sub_select_list

        return sub_select_list(pattern, self._list, resolver=resolver)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._list.values())

    def __len__(self) -> int:
        return len(self._list)

    def __repr__(self) -> str:
        return f"OdmgArray({self._list.values()!r})"
