"""Columnar tree kernel: structure-of-arrays extents + predicate columns.

The paper's alphabet predicates (§3.1) are constant-time unary
functions — ideal for batch evaluation over whole extents — yet every
consumer historically walked linked :class:`~repro.core.aqua_tree.TreeNode`
objects one Python dispatch at a time.  This module re-encodes a stored
tree (or list) as structure-of-arrays:

* :class:`ColumnarExtent` — one per stored tree: the pre-order node and
  label arrays, parent / first-child / next-sibling / depth /
  subtree-size vectors, lazily extracted attribute columns, and cached
  **predicate columns**: each alphabet predicate evaluated once over the
  whole extent as a bitset (a Python int, one bit per pre-order
  position, or a numpy bool array when the ``[columnar]`` extra is
  installed).
* :class:`ColumnarList` — the positional analogue for lists, whose
  predicate columns feed a batch shift-AND pass (the list-pattern DFA's
  required-symbol profile run over the whole label array at once).

Predicate columns generalize the per-query
:class:`~repro.storage.tree_index.PredicateBitmap` (PR 4): a bitmap
caches outcomes *as individual nodes are tested*, per query; a column is
computed for the whole extent once and then shared by every consumer of
every query — index fallback scans, anchor analysis, the memo engine's
``TreeAtom`` fast-fail (bitmaps consult columns through their
``source`` hook) and the batch physical operators.

Gating: the kernel engages only when ``AQUA_COLUMNAR=on`` (the default)
and the structure has at least ``AQUA_COLUMNAR_THRESHOLD`` elements —
small structures pay more in column builds than they save, and their
work counters are pinned by golden tests.  ``AQUA_COLUMNAR_BACKEND``
picks ``numpy`` or pure-``python`` columns (``auto`` prefers numpy when
installed).  Column evaluation is semantics-preserving by construction:
the numpy fast paths only fire for homogeneous native dtypes where the
vectorized comparison agrees with :class:`Comparison`'s per-object
semantics, and everything else evaluates the real predicate per element.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from .. import config
from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree, TreeNode
from ..params import Param
from ..predicates.alphabet import (
    AlphabetPredicate,
    And,
    Comparison,
    Not,
    Or,
    SymbolEquals,
    TruePredicate,
    _MISSING,
    _OPERATORS,
    _read_attribute,
)
from . import stats as stats_mod

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy


def _import_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised on CI's no-numpy leg
        return None
    return numpy


def numpy_available() -> bool:
    """Is the optional ``[columnar]`` extra (numpy) importable?"""
    return _import_numpy() is not None


def resolve_backend(backend: str | None = None) -> str:
    """Resolve ``AQUA_COLUMNAR_BACKEND`` to a concrete backend name.

    ``auto`` prefers numpy and silently falls back to the pure-Python
    bitsets; pinning ``numpy`` without the ``[columnar]`` extra raises
    the standard one-line knob error instead of an import crash.
    """
    chosen = config.validated_columnar_backend(backend)
    if chosen == "python":
        return "python"
    if chosen == "numpy":
        if not numpy_available():
            raise config.invalid_knob(
                config.COLUMNAR_BACKEND_ENV,
                chosen,
                "auto | python (numpy is not installed — "
                "pip install 'repro[columnar]')",
            )
        return "numpy"
    return "numpy" if numpy_available() else "python"


def column_servable(predicate: AlphabetPredicate) -> bool:
    """Can ``predicate`` be evaluated once-per-extent as a column?

    Servable means the predicate is built from the paper's restricted
    grammar (comparisons, symbol equality, ``?``, AND/OR/NOT) with no
    ``$param`` constants — a parameterized predicate's outcome varies
    per binding, and columns are cached per extent, not per query.
    Opaque :class:`RawPredicate` callables are refused (they may close
    over mutable state, so eager whole-extent evaluation is unsound).
    """
    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, Comparison):
        return not isinstance(predicate.constant, Param)
    if isinstance(predicate, SymbolEquals):
        return not isinstance(predicate.symbol, Param)
    if isinstance(predicate, (And, Or)):
        return all(column_servable(term) for term in predicate.terms)
    if isinstance(predicate, Not):
        return column_servable(predicate.term)
    return False


class _ColumnStore:
    """Shared machinery: values → predicate bitset columns, per backend.

    Subclasses provide the positional ``values`` sequence and a
    ``present`` test; this class owns the per-predicate column cache,
    the build loop (or vectorized numpy path) and the boolean-algebra
    combinators over whole columns.
    """

    def __init__(self, values: Sequence[Any], present: Sequence[bool], backend: str) -> None:
        self._values = values
        self._present = present
        self._count = len(values)
        self.backend = backend
        self._np = _import_numpy() if backend == "numpy" else None
        self._lock = threading.RLock()
        self._pred_columns: dict[AlphabetPredicate, Any] = {}
        self._attr_columns: dict[str, list[Any]] = {}
        #: Cumulative build telemetry (also emitted to the active stats
        #: sinks as ``column_builds`` / ``column_rows`` at build time).
        self.column_builds = 0
        self.column_rows = 0
        if self._np is not None:
            self._present_mask = self._np.asarray(present, dtype=bool)
        else:
            mask = 0
            for position, flag in enumerate(present):
                if flag:
                    mask |= 1 << position
            self._present_mask = mask

    # -- column access ---------------------------------------------------------

    @property
    def position_count(self) -> int:
        return self._count

    def has_column(self, predicate: AlphabetPredicate) -> bool:
        with self._lock:
            return predicate in self._pred_columns

    def predicate_column(self, predicate: AlphabetPredicate):
        """The predicate's bitset column, built (and cached) on demand."""
        with self._lock:
            column = self._pred_columns.get(predicate)
            if column is None:
                column = self._build_column(predicate)
                self._pred_columns[predicate] = column
                self.column_builds += 1
                self.column_rows += self._count
                stats_mod.emit("column_builds")
                stats_mod.emit("column_rows", self._count)
            return column

    def column_value(self, predicate: AlphabetPredicate, position: int) -> bool | None:
        """Serve one cell from an **already built** column, else ``None``.

        Deliberately never builds: callers probing a handful of nodes
        (index anchor re-checks) must not trigger a whole-extent
        evaluation — only the batch consumers build columns.
        """
        if position >= self._count or not self._present[position]:
            return None
        with self._lock:
            column = self._pred_columns.get(predicate)
        if column is None:
            return None
        stats_mod.emit("column_hits")
        if self._np is not None:
            return bool(column[position])
        return bool(column >> position & 1)

    def positions(self, column) -> list[int]:
        """Set-bit positions of ``column``, ascending."""
        if self._np is not None:
            return [int(i) for i in self._np.flatnonzero(column)]
        result = []
        position = 0
        while column:
            chunk = column & 0xFFFFFFFFFFFFFFFF
            while chunk:
                low = chunk & -chunk
                result.append(position + low.bit_length() - 1)
                chunk ^= low
            column >>= 64
            position += 64
        return result

    def union(self, columns: Iterable[Any]):
        columns = list(columns)
        if self._np is not None:
            out = self._np.zeros(self._count, dtype=bool)
            for column in columns:
                out |= column
            return out
        out = 0
        for column in columns:
            out |= column
        return out

    # -- column construction ---------------------------------------------------

    def _build_column(self, predicate: AlphabetPredicate):
        if isinstance(predicate, And):
            parts = [self._build_column(term) for term in predicate.terms]
            out = parts[0]
            for part in parts[1:]:
                out = out & part
            return out
        if isinstance(predicate, Or):
            parts = [self._build_column(term) for term in predicate.terms]
            out = parts[0]
            for part in parts[1:]:
                out = out | part
            return out
        if isinstance(predicate, Not):
            inner = self._build_column(predicate.term)
            # NOT is relative to the present positions: absent slots
            # (concatenation points) stay outside every column.
            if self._np is not None:
                return self._present_mask & ~inner
            return self._present_mask & ~inner
        if isinstance(predicate, TruePredicate):
            if self._np is not None:
                return self._present_mask.copy()
            return self._present_mask
        return self._leaf_column(predicate)

    def _leaf_column(self, predicate: AlphabetPredicate):
        if self._np is not None:
            vectorized = self._vectorized_leaf(predicate)
            if vectorized is not None:
                return vectorized
        return self._loop_column(predicate)

    def _loop_column(self, predicate: AlphabetPredicate):
        """The semantics oracle: the real predicate, once per element."""
        values = self._values
        present = self._present
        if self._np is not None:
            out = self._np.zeros(self._count, dtype=bool)
            for position in range(self._count):
                if present[position] and predicate(values[position]):
                    out[position] = True
            return out
        out = 0
        for position in range(self._count):
            if present[position] and predicate(values[position]):
                out |= 1 << position
        return out

    def attribute_column(self, attribute: str) -> list[Any]:
        """Raw stored-attribute column (``_MISSING`` at absent slots)."""
        with self._lock:
            column = self._attr_columns.get(attribute)
            if column is None:
                column = [
                    _read_attribute(value, attribute) if flag else _MISSING
                    for value, flag in zip(self._values, self._present)
                ]
                self._attr_columns[attribute] = column
            return column

    def _vectorized_leaf(self, predicate: AlphabetPredicate):
        """A numpy fast path, or ``None`` when per-object semantics could
        diverge (mixed dtypes, missing attributes, exotic constants)."""
        np = self._np
        if isinstance(predicate, SymbolEquals):
            raw, constant, op = list(self._values), predicate.symbol, "="
            if not all(self._present):
                return None
        elif isinstance(predicate, Comparison):
            raw, constant, op = (
                self.attribute_column(predicate.attribute),
                predicate.constant,
                predicate.op,
            )
            if any(cell is _MISSING for cell in raw):
                # A missing attribute is False under *every* operator
                # (including ``!=``) — keep that via the eval loop.
                return None
        else:
            return None
        if isinstance(constant, bool):
            kinds = "b"
        elif isinstance(constant, (int, float)):
            kinds = "if"
        elif isinstance(constant, str):
            kinds = "U"
        else:
            return None
        try:
            array = np.asarray(raw)
        except Exception:
            return None
        if array.ndim != 1 or array.dtype.kind not in kinds:
            return None
        try:
            mask = _OPERATORS[op](array, constant)
        except Exception:
            return None
        if not isinstance(mask, np.ndarray) or mask.shape != (self._count,):
            return None
        return mask.astype(bool)


class ColumnarExtent(_ColumnStore):
    """Structure-of-arrays encoding of one stored tree.

    Positions are dense pre-order indexes over ``tree.nodes()`` — the
    same ordering the matcher's
    :class:`~repro.patterns.tree_memo.TreeMatchContext` interns — with
    concatenation points present as positions but absent from every
    predicate column.  Built once per tree object and cached by
    :meth:`repro.storage.database.Database.columnar_extent`; a rebound
    root is a new tree object, so the identity-keyed cache plus the
    per-resource version counters give pinned snapshots a consistent
    columnar cut for free (trees are immutable).
    """

    def __init__(self, tree: AquaTree, backend: str | None = None) -> None:
        self.tree = tree
        nodes: list[TreeNode] = list(tree.nodes())
        values: list[Any] = []
        present: list[bool] = []
        self._position_of: dict[int, int] = {}
        for position, node in enumerate(nodes):
            self._position_of[id(node)] = position
            if node.is_concat_point:
                values.append(None)
                present.append(False)
            else:
                values.append(node.value)
                present.append(True)
        super().__init__(values, present, backend or resolve_backend())
        self.nodes = nodes
        self.size = sum(present)
        self._structure: dict[str, Any] | None = None
        self._root_lists: dict[tuple, list[TreeNode]] = {}
        self._children_positions: dict[int, int] | None = None

    # -- structure vectors -----------------------------------------------------

    def structure(self) -> dict[str, Any]:
        """The parent/first-child/next-sibling/depth/subtree-size vectors.

        Indexed by pre-order position; ``-1`` marks "none".  Subtree
        sizes count every node (concatenation points included) so
        ``subtree_size[root] == len(nodes)``.  Built lazily in one DFS
        and cached — the navigational complement of the label array for
        batch consumers that walk positions instead of node objects.
        """
        with self._lock:
            if self._structure is None:
                count = len(self.nodes)
                parent = [-1] * count
                depth = [0] * count
                first_child = [-1] * count
                next_sibling = [-1] * count
                subtree_size = [1] * count
                if count:
                    position_of = self._position_of
                    stack: list[tuple[TreeNode, int, int]] = [(self.tree.root, -1, 0)]
                    while stack:
                        node, parent_pos, node_depth = stack.pop()
                        position = position_of[id(node)]
                        parent[position] = parent_pos
                        depth[position] = node_depth
                        previous = -1
                        for child in node.children:
                            child_pos = position_of[id(child)]
                            if previous == -1:
                                first_child[position] = child_pos
                            else:
                                next_sibling[previous] = child_pos
                            previous = child_pos
                            stack.append((child, position, node_depth + 1))
                    # Positions are pre-order, so every child's position
                    # exceeds its parent's: one reverse sweep accumulates
                    # subtree sizes bottom-up.
                    for position in range(count - 1, 0, -1):
                        subtree_size[parent[position]] += subtree_size[position]
                vectors = {
                    "parent": parent,
                    "depth": depth,
                    "first_child": first_child,
                    "next_sibling": next_sibling,
                    "subtree_size": subtree_size,
                }
                if self._np is not None:
                    vectors = {
                        name: self._np.asarray(column, dtype=self._np.int64)
                        for name, column in vectors.items()
                    }
                self._structure = vectors
            return self._structure

    # -- consumers -------------------------------------------------------------

    def servable(self, predicate: AlphabetPredicate) -> bool:
        return column_servable(predicate)

    def position_of(self, node: TreeNode) -> int | None:
        return self._position_of.get(id(node))

    def position_maps(self) -> tuple[dict[int, int], dict[int, int]]:
        """The preorder interning maps a match context needs, prebuilt.

        ``(node-id → position, children-list-id → position)`` over this
        extent's pinned node list.  Sharing them lets
        :class:`~repro.patterns.tree_memo.TreeMatchContext` skip its own
        O(n) interning walk on every evaluation; both maps are read-only
        to consumers, and the extent's ``nodes`` list keeps every id
        alive.
        """
        with self._lock:
            if self._children_positions is None:
                self._children_positions = {
                    id(node.children): position
                    for position, node in enumerate(self.nodes)
                }
            return self._position_of, self._children_positions

    def outcome_for(self, predicate: AlphabetPredicate, node: TreeNode) -> bool | None:
        """Bitmap ``source`` hook: serve an already built column cell.

        ``None`` means "not served" (unknown node, concat point, or no
        column built yet) — the caller falls back to evaluating the
        predicate itself.  Never triggers a column build.
        """
        position = self._position_of.get(id(node))
        if position is None:
            return None
        return self.column_value(predicate, position)

    def matching_nodes(self, predicate: AlphabetPredicate) -> list[TreeNode]:
        """Pre-order nodes whose column bit is set (builds the column)."""
        return self.candidate_roots((predicate,))

    def candidate_roots(
        self, anchors: Sequence[AlphabetPredicate]
    ) -> list[TreeNode]:
        """Pre-order nodes satisfying **any** anchor — the complete
        candidate-root set for a pattern with these root predicates.

        Cached per anchor set: repeated queries over a warm extent skip
        both the predicate pass and the bit-extraction loop.
        """
        key = tuple(sorted(anchor.describe() for anchor in anchors))
        with self._lock:
            cached = self._root_lists.get(key)
            if cached is None:
                mask = self.union(
                    self.predicate_column(anchor) for anchor in anchors
                )
                nodes = self.nodes
                cached = [nodes[position] for position in self.positions(mask)]
                self._root_lists[key] = cached
            return cached


class ColumnarList(_ColumnStore):
    """Positional predicate columns for one stored list.

    The batch analogue of :class:`~repro.storage.tree_index.ListIndex`:
    instead of hashing equality keys to positions, each atom predicate
    becomes a bitset over positions, and :meth:`candidate_starts` runs
    the list pattern's required-symbol profile over those columns in one
    shift-AND pass — a start survives only if every required atom has a
    satisfying element at one of its feasible offsets.
    """

    def __init__(self, aqua_list: AquaList, backend: str | None = None) -> None:
        self.aqua_list = aqua_list
        values = aqua_list.values()
        super().__init__(values, [True] * len(values), backend or resolve_backend())
        self.size = len(values)

    def candidate_starts(
        self,
        choices: Sequence[tuple[AlphabetPredicate, Sequence[int]]],
    ) -> list[int]:
        """Start positions surviving the shift-AND over required atoms.

        ``choices`` pairs each required atom predicate with its feasible
        offsets from the match start (see
        :func:`repro.optimizer.anchors.anchor_offsets`); the result is
        ascending and a superset of all real match starts.
        """
        count = self._count
        if self._np is not None:
            np = self._np
            mask = np.ones(count + 1, dtype=bool)
            for predicate, offsets in choices:
                column = self.predicate_column(predicate)
                shifted = np.zeros(count + 1, dtype=bool)
                for offset in offsets:
                    if offset <= count:
                        shifted[: count - offset] |= column[offset:]
                mask &= shifted
            return [int(i) for i in np.flatnonzero(mask)]
        mask = (1 << (count + 1)) - 1
        for predicate, offsets in choices:
            column = self.predicate_column(predicate)
            shifted = 0
            for offset in offsets:
                shifted |= column >> offset
            mask &= shifted
        return self.positions(mask)


# -- gated access ----------------------------------------------------------------


def columnar_source_for(db: Any, tree: AquaTree) -> ColumnarExtent | None:
    """The tree's columnar extent, when the kernel should engage.

    Centralizes the gating every consumer (the match-root filter, the
    bitmap source, the batch operators) must agree on: the
    ``AQUA_COLUMNAR`` switch, the size threshold, and a storage object
    that actually exposes extents (snapshots delegate to their base, so
    a pinned snapshot sees the same consistent columnar cut).
    """
    if not config.columnar_enabled():
        return None
    provider = getattr(db, "columnar_extent", None)
    if provider is None:
        return None
    return provider(tree, min_size=config.validated_columnar_threshold())


def columnar_list_for(db: Any, aqua_list: AquaList) -> ColumnarList | None:
    """The list analogue of :func:`columnar_source_for`."""
    if not config.columnar_enabled():
        return None
    provider = getattr(db, "columnar_list", None)
    if provider is None:
        return None
    return provider(aqua_list, min_size=config.validated_columnar_threshold())


def columnar_candidate_roots(
    db: Any,
    anchors: Sequence[AlphabetPredicate],
    tree: AquaTree,
) -> list[TreeNode] | None:
    """Candidate match roots via predicate columns, or ``None`` (no gain).

    The engine-level hook behind the match-root filter: given a
    pattern's (column-servable, non-trivial) root predicates, return the
    pre-order nodes any match could root at.  ``None`` leaves the caller
    on the full pre-order scan.
    """
    extent = columnar_source_for(db, tree)
    if extent is None:
        return None
    roots = extent.candidate_roots(anchors)
    stats_mod.emit_many(
        {
            "columnar_roots": len(roots),
            "columnar_pruned": extent.position_count - len(roots),
        }
    )
    return roots


def make_column_provider(db: Any, tree: AquaTree) -> Callable[[], ColumnarExtent | None]:
    """A zero-argument provider resolving the knobs at call time.

    Attached to a :class:`~repro.storage.tree_index.TreeIndex` so the
    bitmaps it hands out consult predicate columns exactly when the
    kernel is enabled *for that query* — a cached index never pins a
    stale knob decision.
    """

    def provider() -> ColumnarExtent | None:
        return columnar_source_for(db, tree)

    return provider
