"""The OODB storage substrate: object store, extents, roots, indexes.

The paper assumes an object-oriented database around the algebra —
objects with identity, per-class extents over which queries range, and
attribute indexes the optimizer can exploit.  This module supplies that
substrate in memory:

* :meth:`Database.insert` registers objects (OIDs come from the object
  model) under a class extent;
* named **roots** bind persistent entry points (the family tree, a song
  list, a parse tree) to names;
* :meth:`Database.create_index` builds hash or ordered attribute
  indexes over an extent, and :meth:`Database.candidates` serves a
  predicate from the best index available (reporting whether it could);
* per-tree/list node indexes are created with :meth:`tree_index` /
  :meth:`list_index` and cached.

Everything is instrumented through an :class:`Instrumentation` sink so
benchmarks can report scans vs probes.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterable, Iterator, Mapping, Sequence

from .. import guardrails, params
from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..errors import StorageError
from ..faults import fault_point
from ..predicates.alphabet import AlphabetPredicate
from .index import HashIndex, OrderedIndex
from .stats import Instrumentation
from .tree_index import ListIndex, TreeIndex

#: The dependency tag covering "the database as a whole" — bare
#: :meth:`Database.bump_epoch` calls (no named resources) touch it, so
#: plans that depend on nothing in particular still notice external
#: invalidation requests.
GLOBAL_RESOURCE = "db"


def extent_resource(name: str) -> str:
    """The version-map tag for extent ``name`` (data, indexes, stats)."""
    return f"extent:{name}"


def root_resource(name: str) -> str:
    """The version-map tag for the named root ``name``."""
    return f"root:{name}"


class VersionToken:
    """An immutable cut of the database's per-resource version counters.

    Captured under the write lock (see :meth:`Database.version_token`),
    so the epoch, the blanket-touch watermark and every per-resource
    counter are mutually consistent.  The plan cache stores one of these
    per prepared plan and compares :meth:`versions` over the plan's
    dependency tags — fine-grained invalidation instead of one global
    epoch comparison.
    """

    __slots__ = ("epoch", "_touch_all", "_versions")

    def __init__(self, epoch: int, touch_all: int, versions: Mapping[str, int]) -> None:
        self.epoch = epoch
        self._touch_all = touch_all
        self._versions = versions

    def versions(self, resources: Sequence[str]) -> tuple[int, ...]:
        """The version of each tag in ``resources`` (input order kept).

        A resource never touched reports the blanket watermark, and a
        touched one reports the later of its own counter and the
        watermark, so a bare ``bump_epoch()`` still invalidates every
        plan while targeted bumps stay targeted.
        """
        touch = self._touch_all
        return tuple(
            touch if tag == GLOBAL_RESOURCE else max(self._versions.get(tag, 0), touch)
            for tag in resources
        )


class Database:
    """An in-memory OODB: extents, named roots and indexes.

    Mutations (:meth:`insert`, root binds, index create/drop,
    :meth:`analyze`) serialize on an internal write lock and advance
    **per-resource version counters** alongside the global epoch;
    :meth:`snapshot` captures a consistent copy-on-write read view under
    the same lock, so readers pinned to a snapshot never observe a torn
    extent or a half-applied transaction.
    """

    def __init__(self, stats: Instrumentation | None = None) -> None:
        self._extents: dict[str, list[Any]] = {}
        self._roots: dict[str, Any] = {}
        self._indexes: dict[tuple[str, str], HashIndex | OrderedIndex] = {}
        self._tree_indexes: dict[int, TreeIndex] = {}
        self._list_indexes: dict[int, ListIndex] = {}
        self._columnar_extents: dict[int, Any] = {}
        self._columnar_lists: dict[int, Any] = {}
        self._histograms: dict[tuple[str, str], Any] = {}
        self._epoch = 0
        self._touch_all = 0
        self._versions: dict[str, int] = {}
        self._lock = threading.RLock()
        self._structure_lock = threading.Lock()
        self.stats = stats or Instrumentation()

    # -- epochs and versions ---------------------------------------------------

    @property
    def epoch(self) -> int:
        """A counter bumped by anything that can invalidate a cached plan.

        Inserts, root (re)binds, extent-index create/drop and statistics
        recalibration all bump it; the plan cache
        (:mod:`repro.query.plan_cache`) compares the finer-grained
        per-resource counters (:meth:`versions`) lazily on lookup and
        drops entries whose dependencies moved.  The lazily built
        per-structure node indexes (:meth:`tree_index`,
        :meth:`list_index`) do *not* bump — they are caches over
        unchanged data, and queries create them mid-execution.
        """
        with self._lock:
            return self._epoch

    @property
    def cache_identity(self) -> int:
        """The plan-cache keying identity — shared by this database's
        snapshots, so plans prepared against either serve both."""
        return id(self)

    def bump_epoch(self, *resources: str) -> int:
        """Advance the epoch, stamping ``resources`` with the new value.

        Thread-safe (two concurrent writers can never observe the same
        epoch).  With no resources named this is a **blanket** bump: the
        touch-all watermark moves, invalidating every cached plan — the
        conservative behavior external callers relied on before
        per-resource versioning existed.
        """
        with self._lock:
            self._epoch += 1
            if resources:
                for tag in resources:
                    self._versions[tag] = self._epoch
            else:
                self._touch_all = self._epoch
            return self._epoch

    def versions(self, resources: Sequence[str]) -> tuple[int, ...]:
        """Current version of each dependency tag (see :class:`VersionToken`)."""
        with self._lock:
            touch = self._touch_all
            return tuple(
                touch
                if tag == GLOBAL_RESOURCE
                else max(self._versions.get(tag, 0), touch)
                for tag in resources
            )

    def version_token(self) -> VersionToken:
        """A consistent cut of every version counter (for plan caching)."""
        with self._lock:
            return VersionToken(self._epoch, self._touch_all, dict(self._versions))

    # -- write locking and snapshots -------------------------------------------

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Hold the write lock for a multi-step mutation.

        Re-entrant: the individual mutators acquire the same lock, so a
        transaction can wrap any number of them into one atomic unit —
        :meth:`snapshot` (which also takes the lock) can never observe a
        partially applied batch.
        """
        with self._lock:
            yield

    def snapshot(self, stats: Instrumentation | None = None):
        """An immutable read view pinned to the current version.

        Roots and the index registry are copied (cheap — values are
        persistent structures shared, not cloned); extents are captured
        as append-only watermarks, so the snapshot is O(#extents +
        #roots) regardless of data size.  See
        :class:`repro.storage.snapshot.DatabaseSnapshot`.
        """
        from .snapshot import DatabaseSnapshot

        with self._lock:
            return DatabaseSnapshot(
                self,
                roots=dict(self._roots),
                extents={
                    name: (rows, len(rows)) for name, rows in self._extents.items()
                },
                indexes=dict(self._indexes),
                histograms=dict(self._histograms),
                token=VersionToken(self._epoch, self._touch_all, dict(self._versions)),
                stats=stats,
            )

    def commit_staged(
        self,
        root_rebinds: Mapping[str, Any],
        root_binds: Mapping[str, Any],
        inserts: Sequence[tuple[Any, str | None]],
    ) -> None:
        """Apply a transaction's staged writes atomically.

        Everything lands under one hold of the write lock with a single
        epoch bump stamping every touched resource, so a concurrent
        :meth:`snapshot` sees either none of the batch or all of it.
        Fresh binds are validated *before* anything is applied — a
        name collision rolls the whole batch back by never starting it.
        """
        with self._lock:
            for name in root_binds:
                if name in self._roots or name in root_rebinds:
                    raise StorageError(f"root {name!r} is already bound")
            touched: list[str] = []
            for name, value in {**root_binds, **root_rebinds}.items():
                self._roots[name] = value
                touched.append(root_resource(name))
            for obj, extent in inserts:
                name = extent or type(obj).__name__
                self._extents.setdefault(name, []).append(obj)
                for (extent_name, _attr), index in self._indexes.items():
                    if extent_name == name:
                        index.insert(obj)
                tag = extent_resource(name)
                if tag not in touched:
                    touched.append(tag)
            if touched:
                self.bump_epoch(*touched)

    # -- extents ---------------------------------------------------------------

    def insert(self, obj: Any, extent: str | None = None) -> Any:
        """Register ``obj`` under ``extent`` (default: its class name)."""
        name = extent or type(obj).__name__
        with self._lock:
            self._extents.setdefault(name, []).append(obj)
            for (extent_name, attribute), index in self._indexes.items():
                if extent_name == name:
                    index.insert(obj)
            self.bump_epoch(extent_resource(name))
        return obj

    def insert_many(self, objects: Iterable[Any], extent: str | None = None) -> list[Any]:
        # One lock hold for the whole batch: a concurrent snapshot sees
        # none of it or all of it, never a torn prefix.
        with self._lock:
            return [self.insert(obj, extent) for obj in objects]

    def extent(self, name: str) -> AquaSet:
        """The extent as an AQUA set (empty if never populated)."""
        fault_point("storage_lookup")
        rows = self._extents.get(name, ())
        guard = guardrails.current_guard()
        if guard is not None:
            guard.charge_nodes(len(rows), "extent scan")
        return AquaSet(rows)

    def iter_extent(self, name: str) -> Iterator[Any]:
        """Lazily iterate the extent's rows (the streaming scan path).

        Unlike :meth:`extent`, the active guard is charged one node per
        row *as rows are pulled*, so a ``max_nodes_scanned`` budget trips
        mid-scan instead of after the whole extent was materialized.
        """
        fault_point("storage_lookup")
        rows = self._extents.get(name, ())
        guard = guardrails.current_guard()
        for row in rows:
            if guard is not None:
                guard.charge_nodes(1, "extent scan")
            yield row

    def extent_size(self, name: str) -> int:
        return len(self._extents.get(name, ()))

    def extents(self) -> list[str]:
        return sorted(self._extents)

    # -- named roots -------------------------------------------------------------

    def bind_root(self, name: str, value: Any) -> None:
        with self._lock:
            if name in self._roots:
                raise StorageError(f"root {name!r} is already bound")
            self._roots[name] = value
            self.bump_epoch(root_resource(name))

    def rebind_root(self, name: str, value: Any) -> None:
        with self._lock:
            self._roots[name] = value
            self.bump_epoch(root_resource(name))

    def root(self, name: str) -> Any:
        fault_point("storage_lookup")
        try:
            return self._roots[name]
        except KeyError:
            raise StorageError(f"unknown root {name!r}") from None

    def roots(self) -> list[str]:
        return sorted(self._roots)

    # -- extent indexes ------------------------------------------------------------

    def create_index(
        self, extent: str, attribute: str, ordered: bool = False
    ) -> HashIndex | OrderedIndex:
        """Build (or return) an index on ``extent.attribute``."""
        key = (extent, attribute)
        with self._lock:
            if key in self._indexes:
                return self._indexes[key]
            index: HashIndex | OrderedIndex
            index = OrderedIndex(attribute) if ordered else HashIndex(attribute)
            index.bulk_load(self._extents.get(extent, ()))
            self._indexes[key] = index
            self.bump_epoch(extent_resource(extent))
        return index

    def drop_index(self, extent: str, attribute: str) -> bool:
        """Drop the index on ``extent.attribute``; True if one existed."""
        with self._lock:
            removed = self._indexes.pop((extent, attribute), None) is not None
            if removed:
                self.bump_epoch(extent_resource(extent))
        return removed

    def index_for(self, extent: str, attribute: str) -> HashIndex | OrderedIndex | None:
        return self._indexes.get((extent, attribute))

    def has_index(self, extent: str, attribute: str) -> bool:
        return (extent, attribute) in self._indexes

    def candidates(
        self, extent: str, predicate: AlphabetPredicate
    ) -> tuple[list[Any], bool]:
        """Objects of ``extent`` that might satisfy ``predicate``.

        Serves the most selective indexable term if one has an index
        (``used_index=True``); otherwise returns the whole extent for a
        scan.  Callers must re-apply the full predicate either way.
        """
        # Activate our sink so the access methods' own ``index_probes``
        # emissions (see :mod:`repro.storage.index`) are credited here —
        # and, during an instrumented run, to the operator that probed.
        fault_point("storage_lookup")
        guard = guardrails.current_guard()
        with self.stats.activated():
            if not predicate.opaque:
                best: tuple[int, list[Any]] | None = None
                for attribute, op, constant in predicate.indexable_terms():
                    index = self._indexes.get((extent, attribute))
                    if index is None:
                        continue
                    # A $param constant probes with its current binding;
                    # an unbound (or unhashable) one cannot be served.
                    constant, bound = params.try_resolve(constant)
                    if not bound or not params.is_bindable(constant):
                        continue
                    if isinstance(index, HashIndex):
                        if op != "=":
                            continue
                        rows = index.lookup(constant)
                    else:
                        rows = index.probe_term(op, constant)
                    if best is None or len(rows) < best[0]:
                        best = (len(rows), rows)
                if best is not None:
                    self.stats.bump("index_candidates", best[0])
                    if guard is not None:
                        guard.charge_nodes(best[0], "index candidates")
                    return best[1], True
            rows = list(self._extents.get(extent, ()))
            self.stats.bump("full_scans")
            self.stats.bump("objects_scanned", len(rows))
            if guard is not None:
                guard.charge_nodes(len(rows), "extent scan")
            return rows, False

    def select(self, extent: str, predicate: AlphabetPredicate) -> AquaSet:
        """Index-assisted extent select (re-checks the full predicate)."""
        rows, _ = self.candidates(extent, predicate)
        counted = self.stats.counting(predicate)
        return AquaSet(row for row in rows if counted(row))

    # -- statistics (histograms for the cost model) -----------------------------------

    def analyze(self, extent: str, attribute: str, buckets: int = 32):
        """Build (or refresh) a histogram on ``extent.attribute``."""
        from .statistics import AttributeHistogram

        with self._lock:
            histogram = AttributeHistogram.build(
                attribute, self._extents.get(extent, ()), buckets
            )
            self._histograms[(extent, attribute)] = histogram
            self.bump_epoch(extent_resource(extent))
        return histogram

    def histogram(self, extent: str, attribute: str):
        """The histogram built by :meth:`analyze`, or None."""
        return self._histograms.get((extent, attribute))

    # -- per-structure node indexes ---------------------------------------------------

    def tree_index(self, tree: AquaTree, attributes: Iterable[str] = ()) -> TreeIndex:
        """A (cached) node index for ``tree``; extends attributes as needed.

        Build-once under a dedicated lock: concurrent queries over the
        same tree share one index instead of racing to build duplicates
        (the build is pure, so the lock protects work, not correctness).
        """
        from .columnar import make_column_provider

        with self._structure_lock:
            cached = self._tree_indexes.get(id(tree))
            if cached is None or cached.tree is not tree:
                cached = TreeIndex(tree, attributes)
                cached.attach_column_source(make_column_provider(self, tree))
                self._tree_indexes[id(tree)] = cached
            else:
                for attribute in attributes:
                    cached.add_attribute(attribute)
            return cached

    def list_index(self, aqua_list: AquaList, attributes: Iterable[str] = ()) -> ListIndex:
        with self._structure_lock:
            cached = self._list_indexes.get(id(aqua_list))
            if cached is None or cached.aqua_list is not aqua_list:
                cached = ListIndex(aqua_list, attributes)
                self._list_indexes[id(aqua_list)] = cached
            return cached

    def columnar_extent(self, tree: AquaTree, *, min_size: int = 0):
        """The (cached) columnar encoding of ``tree``, or ``None``.

        Build-once under the same dedicated lock as :meth:`tree_index`;
        ``min_size`` is the caller's engagement threshold
        (``AQUA_COLUMNAR_THRESHOLD``) — undersized trees return ``None``
        without caching anything.  The cache is keyed by object identity
        and rechecked like the index caches: rebinding a root to a new
        tree object naturally invalidates (trees are immutable, and the
        per-resource version counters already gate any cached *plan*
        that depended on the old binding), while a pinned
        :class:`DatabaseSnapshot` keeps referencing the old tree object
        and therefore keeps its consistent columnar cut.
        """
        from .columnar import ColumnarExtent

        with self._structure_lock:
            cached = self._columnar_extents.get(id(tree))
            if cached is not None and cached.tree is tree:
                return cached if cached.size >= min_size else None
        # Size the tree outside the lock (it is an O(n) walk) and only
        # encode structures worth the column builds.
        if min_size and tree.size() < min_size:
            return None
        extent = ColumnarExtent(tree)
        with self._structure_lock:
            cached = self._columnar_extents.get(id(tree))
            if cached is not None and cached.tree is tree:
                return cached if cached.size >= min_size else None
            self._columnar_extents[id(tree)] = extent
        return extent if extent.size >= min_size else None

    def columnar_list(self, aqua_list: AquaList, *, min_size: int = 0):
        """The list analogue of :meth:`columnar_extent`."""
        from .columnar import ColumnarList

        with self._structure_lock:
            cached = self._columnar_lists.get(id(aqua_list))
            if cached is None or cached.aqua_list is not aqua_list:
                if min_size and len(aqua_list) < min_size:
                    return None
                cached = ColumnarList(aqua_list)
                self._columnar_lists[id(aqua_list)] = cached
            return cached if cached.size >= min_size else None

    def reset_predicate_bitmaps(self) -> None:
        """Clear every cached tree index's predicate-outcome bitmap.

        The bitmaps live on the indexes so one fill serves all of a
        query's operators, but their contents are per-query state: the
        evaluation driver resets them when it arms a fresh query so two
        identical runs report identical work.
        """
        for index in self._tree_indexes.values():
            index.reset_bitmap()

    def __repr__(self) -> str:
        extents = ", ".join(f"{k}×{len(v)}" for k, v in sorted(self._extents.items()))
        return f"Database({extents}; roots={self.roots()})"
