"""The OODB storage substrate: object store, extents, roots, indexes.

The paper assumes an object-oriented database around the algebra —
objects with identity, per-class extents over which queries range, and
attribute indexes the optimizer can exploit.  This module supplies that
substrate in memory:

* :meth:`Database.insert` registers objects (OIDs come from the object
  model) under a class extent;
* named **roots** bind persistent entry points (the family tree, a song
  list, a parse tree) to names;
* :meth:`Database.create_index` builds hash or ordered attribute
  indexes over an extent, and :meth:`Database.candidates` serves a
  predicate from the best index available (reporting whether it could);
* per-tree/list node indexes are created with :meth:`tree_index` /
  :meth:`list_index` and cached.

Everything is instrumented through an :class:`Instrumentation` sink so
benchmarks can report scans vs probes.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator

from .. import guardrails, params
from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..errors import StorageError
from ..faults import fault_point
from ..predicates.alphabet import AlphabetPredicate
from .index import HashIndex, OrderedIndex
from .stats import Instrumentation
from .tree_index import ListIndex, TreeIndex


class Database:
    """An in-memory OODB: extents, named roots and indexes."""

    def __init__(self, stats: Instrumentation | None = None) -> None:
        self._extents: dict[str, list[Any]] = {}
        self._roots: dict[str, Any] = {}
        self._indexes: dict[tuple[str, str], HashIndex | OrderedIndex] = {}
        self._tree_indexes: dict[int, TreeIndex] = {}
        self._list_indexes: dict[int, ListIndex] = {}
        self._histograms: dict[tuple[str, str], Any] = {}
        self._epoch = 0
        self.stats = stats or Instrumentation()

    # -- epochs ----------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """A counter bumped by anything that can invalidate a cached plan.

        Inserts, root (re)binds, extent-index create/drop and statistics
        recalibration all bump it; the plan cache
        (:mod:`repro.query.plan_cache`) compares it lazily on lookup and
        drops entries prepared under an older epoch.  The lazily built
        per-structure node indexes (:meth:`tree_index`,
        :meth:`list_index`) do *not* bump — they are caches over
        unchanged data, and queries create them mid-execution.
        """
        return self._epoch

    def bump_epoch(self) -> int:
        self._epoch += 1
        return self._epoch

    # -- extents ---------------------------------------------------------------

    def insert(self, obj: Any, extent: str | None = None) -> Any:
        """Register ``obj`` under ``extent`` (default: its class name)."""
        name = extent or type(obj).__name__
        self._extents.setdefault(name, []).append(obj)
        for (extent_name, attribute), index in self._indexes.items():
            if extent_name == name:
                index.insert(obj)
        self.bump_epoch()
        return obj

    def insert_many(self, objects: Iterable[Any], extent: str | None = None) -> list[Any]:
        return [self.insert(obj, extent) for obj in objects]

    def extent(self, name: str) -> AquaSet:
        """The extent as an AQUA set (empty if never populated)."""
        fault_point("storage_lookup")
        rows = self._extents.get(name, ())
        guard = guardrails.current_guard()
        if guard is not None:
            guard.charge_nodes(len(rows), "extent scan")
        return AquaSet(rows)

    def iter_extent(self, name: str) -> Iterator[Any]:
        """Lazily iterate the extent's rows (the streaming scan path).

        Unlike :meth:`extent`, the active guard is charged one node per
        row *as rows are pulled*, so a ``max_nodes_scanned`` budget trips
        mid-scan instead of after the whole extent was materialized.
        """
        fault_point("storage_lookup")
        rows = self._extents.get(name, ())
        guard = guardrails.current_guard()
        for row in rows:
            if guard is not None:
                guard.charge_nodes(1, "extent scan")
            yield row

    def extent_size(self, name: str) -> int:
        return len(self._extents.get(name, ()))

    def extents(self) -> list[str]:
        return sorted(self._extents)

    # -- named roots -------------------------------------------------------------

    def bind_root(self, name: str, value: Any) -> None:
        if name in self._roots:
            raise StorageError(f"root {name!r} is already bound")
        self._roots[name] = value
        self.bump_epoch()

    def rebind_root(self, name: str, value: Any) -> None:
        self._roots[name] = value
        self.bump_epoch()

    def root(self, name: str) -> Any:
        fault_point("storage_lookup")
        try:
            return self._roots[name]
        except KeyError:
            raise StorageError(f"unknown root {name!r}") from None

    def roots(self) -> list[str]:
        return sorted(self._roots)

    # -- extent indexes ------------------------------------------------------------

    def create_index(
        self, extent: str, attribute: str, ordered: bool = False
    ) -> HashIndex | OrderedIndex:
        """Build (or return) an index on ``extent.attribute``."""
        key = (extent, attribute)
        if key in self._indexes:
            return self._indexes[key]
        index: HashIndex | OrderedIndex
        index = OrderedIndex(attribute) if ordered else HashIndex(attribute)
        index.bulk_load(self._extents.get(extent, ()))
        self._indexes[key] = index
        self.bump_epoch()
        return index

    def drop_index(self, extent: str, attribute: str) -> bool:
        """Drop the index on ``extent.attribute``; True if one existed."""
        removed = self._indexes.pop((extent, attribute), None) is not None
        if removed:
            self.bump_epoch()
        return removed

    def index_for(self, extent: str, attribute: str) -> HashIndex | OrderedIndex | None:
        return self._indexes.get((extent, attribute))

    def has_index(self, extent: str, attribute: str) -> bool:
        return (extent, attribute) in self._indexes

    def candidates(
        self, extent: str, predicate: AlphabetPredicate
    ) -> tuple[list[Any], bool]:
        """Objects of ``extent`` that might satisfy ``predicate``.

        Serves the most selective indexable term if one has an index
        (``used_index=True``); otherwise returns the whole extent for a
        scan.  Callers must re-apply the full predicate either way.
        """
        # Activate our sink so the access methods' own ``index_probes``
        # emissions (see :mod:`repro.storage.index`) are credited here —
        # and, during an instrumented run, to the operator that probed.
        fault_point("storage_lookup")
        guard = guardrails.current_guard()
        with self.stats.activated():
            if not predicate.opaque:
                best: tuple[int, list[Any]] | None = None
                for attribute, op, constant in predicate.indexable_terms():
                    index = self._indexes.get((extent, attribute))
                    if index is None:
                        continue
                    # A $param constant probes with its current binding;
                    # an unbound (or unhashable) one cannot be served.
                    constant, bound = params.try_resolve(constant)
                    if not bound or not params.is_bindable(constant):
                        continue
                    if isinstance(index, HashIndex):
                        if op != "=":
                            continue
                        rows = index.lookup(constant)
                    else:
                        rows = index.probe_term(op, constant)
                    if best is None or len(rows) < best[0]:
                        best = (len(rows), rows)
                if best is not None:
                    self.stats.bump("index_candidates", best[0])
                    if guard is not None:
                        guard.charge_nodes(best[0], "index candidates")
                    return best[1], True
            rows = list(self._extents.get(extent, ()))
            self.stats.bump("full_scans")
            self.stats.bump("objects_scanned", len(rows))
            if guard is not None:
                guard.charge_nodes(len(rows), "extent scan")
            return rows, False

    def select(self, extent: str, predicate: AlphabetPredicate) -> AquaSet:
        """Index-assisted extent select (re-checks the full predicate)."""
        rows, _ = self.candidates(extent, predicate)
        counted = self.stats.counting(predicate)
        return AquaSet(row for row in rows if counted(row))

    # -- statistics (histograms for the cost model) -----------------------------------

    def analyze(self, extent: str, attribute: str, buckets: int = 32):
        """Build (or refresh) a histogram on ``extent.attribute``."""
        from .statistics import AttributeHistogram

        histogram = AttributeHistogram.build(
            attribute, self._extents.get(extent, ()), buckets
        )
        self._histograms[(extent, attribute)] = histogram
        self.bump_epoch()
        return histogram

    def histogram(self, extent: str, attribute: str):
        """The histogram built by :meth:`analyze`, or None."""
        return self._histograms.get((extent, attribute))

    # -- per-structure node indexes ---------------------------------------------------

    def tree_index(self, tree: AquaTree, attributes: Iterable[str] = ()) -> TreeIndex:
        """A (cached) node index for ``tree``; extends attributes as needed."""
        cached = self._tree_indexes.get(id(tree))
        if cached is None or cached.tree is not tree:
            cached = TreeIndex(tree, attributes)
            self._tree_indexes[id(tree)] = cached
        else:
            for attribute in attributes:
                cached.add_attribute(attribute)
        return cached

    def list_index(self, aqua_list: AquaList, attributes: Iterable[str] = ()) -> ListIndex:
        cached = self._list_indexes.get(id(aqua_list))
        if cached is None or cached.aqua_list is not aqua_list:
            cached = ListIndex(aqua_list, attributes)
            self._list_indexes[id(aqua_list)] = cached
        return cached

    def reset_predicate_bitmaps(self) -> None:
        """Clear every cached tree index's predicate-outcome bitmap.

        The bitmaps live on the indexes so one fill serves all of a
        query's operators, but their contents are per-query state: the
        evaluation driver resets them when it arms a fresh query so two
        identical runs report identical work.
        """
        for index in self._tree_indexes.values():
            index.reset_bitmap()

    def __repr__(self) -> str:
        extents = ", ".join(f"{k}×{len(v)}" for k, v in sorted(self._extents.items()))
        return f"Database({extents}; roots={self.roots()})"
