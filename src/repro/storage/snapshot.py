"""Copy-on-write read views: snapshot isolation for concurrent sessions.

The algebra is purely functional — every update operator returns a new
structure sharing payloads with the old one, and
:func:`repro.algebra.update.apply_update` swings a root pointer under
the database write lock.  That makes lock-free consistent reads cheap:
a :class:`DatabaseSnapshot` pins

* the **roots** table (a dict copy — values are persistent structures,
  shared not cloned);
* every **extent** as an append-only *watermark* ``(list, length)`` —
  writers only ever append, so the first ``length`` cells are immutable
  and the snapshot reads them without copying;
* the **extent-index registry** (a dict copy).  Index objects are
  shared with the live database and keep absorbing newer inserts, so
  probe results are filtered against the watermark before they are
  served — a row inserted after the pin can never leak into a snapshot
  result;
* a :class:`~repro.storage.database.VersionToken`, so the plan cache
  validates cached plans against the *pinned* versions (a snapshot keeps
  hitting plans prepared at its own version even while writers move the
  live database forward).

The snapshot duck-types the read surface of
:class:`~repro.storage.database.Database` — ``extent`` / ``iter_extent``
/ ``root`` / ``candidates`` / ``tree_index`` / … — so sessions, the
interpreter, both executors and the optimizer run against it unchanged.
Mutators raise :class:`~repro.errors.StorageError`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from .. import guardrails, params
from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..errors import StorageError
from ..faults import fault_point
from ..predicates.alphabet import AlphabetPredicate
from .index import HashIndex, OrderedIndex
from .stats import Instrumentation
from .tree_index import ListIndex, TreeIndex

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database, VersionToken


class DatabaseSnapshot:
    """An immutable view of a :class:`Database` pinned to one version.

    Constructed by :meth:`Database.snapshot` under the write lock — do
    not build directly.  Safe to share across threads: all state is
    written once at construction except the lazily built per-extent
    visibility sets, whose construction is idempotent.
    """

    #: Marks this view as rejecting mutation (introspection aid).
    readonly = True

    def __init__(
        self,
        base: "Database",
        *,
        roots: dict[str, Any],
        extents: dict[str, tuple[list[Any], int]],
        indexes: dict[tuple[str, str], HashIndex | OrderedIndex],
        histograms: dict[tuple[str, str], Any],
        token: "VersionToken",
        stats: Instrumentation | None = None,
    ) -> None:
        self._base = base
        self._roots = roots
        self._extents = extents
        self._indexes = indexes
        self._histograms = histograms
        self._token = token
        #: Shared with the base by default so counter attribution keeps
        #: working through existing sinks; pass a private sink to
        #: isolate one session's counters.
        self.stats = stats if stats is not None else base.stats
        self._visible: dict[str, set[int]] = {}

    # -- versions --------------------------------------------------------------

    @property
    def base(self) -> "Database":
        """The live database this snapshot was pinned from."""
        return self._base

    @property
    def epoch(self) -> int:
        """The global epoch at pin time (never moves)."""
        return self._token.epoch

    @property
    def cache_identity(self) -> int:
        """Plans are cached under the *base* database's identity, so a
        snapshot at matching versions serves (and is served by) the same
        entries."""
        return self._base.cache_identity

    def versions(self, resources: Sequence[str]) -> tuple[int, ...]:
        return self._token.versions(resources)

    def version_token(self) -> "VersionToken":
        return self._token

    def snapshot(self, stats: Instrumentation | None = None) -> "DatabaseSnapshot":
        """Snapshotting a snapshot is the snapshot itself (same pin)."""
        if stats is not None and stats is not self.stats:
            return DatabaseSnapshot(
                self._base,
                roots=self._roots,
                extents=self._extents,
                indexes=self._indexes,
                histograms=self._histograms,
                token=self._token,
                stats=stats,
            )
        return self

    # -- rejected mutations ----------------------------------------------------

    def _read_only(self, operation: str):
        raise StorageError(
            f"cannot {operation} on a snapshot: the view is read-only,"
            " pinned at epoch"
            f" {self._token.epoch}; mutate the live Database instead"
        )

    def insert(self, obj: Any, extent: str | None = None) -> Any:
        self._read_only("insert")

    def insert_many(self, objects: Iterable[Any], extent: str | None = None):
        self._read_only("insert")

    def bind_root(self, name: str, value: Any) -> None:
        self._read_only("bind a root")

    def rebind_root(self, name: str, value: Any) -> None:
        self._read_only("rebind a root")

    def create_index(self, extent: str, attribute: str, ordered: bool = False):
        self._read_only("create an index")

    def drop_index(self, extent: str, attribute: str) -> bool:
        self._read_only("drop an index")

    def analyze(self, extent: str, attribute: str, buckets: int = 32):
        self._read_only("analyze")

    def bump_epoch(self, *resources: str) -> int:
        self._read_only("bump the epoch")

    def commit_staged(self, root_rebinds, root_binds, inserts) -> None:
        self._read_only("commit a transaction")

    # -- extents ---------------------------------------------------------------

    def _rows(self, name: str) -> tuple[list[Any], int]:
        entry = self._extents.get(name)
        if entry is None:
            return [], 0
        return entry

    def extent(self, name: str) -> AquaSet:
        """The pinned extent as an AQUA set (empty if never populated)."""
        fault_point("storage_lookup")
        rows, watermark = self._rows(name)
        guard = guardrails.current_guard()
        if guard is not None:
            guard.charge_nodes(watermark, "extent scan")
        return AquaSet(rows[:watermark])

    def iter_extent(self, name: str) -> Iterator[Any]:
        """Lazily iterate the pinned extent prefix (streaming scan path)."""
        fault_point("storage_lookup")
        rows, watermark = self._rows(name)
        guard = guardrails.current_guard()
        # Index up to the watermark: concurrent appends past it never
        # disturb the first ``watermark`` cells of an append-only list.
        for position in range(watermark):
            if guard is not None:
                guard.charge_nodes(1, "extent scan")
            yield rows[position]

    def extent_size(self, name: str) -> int:
        return self._rows(name)[1]

    def extents(self) -> list[str]:
        return sorted(self._extents)

    def _visible_ids(self, name: str) -> set[int]:
        """Identity set of the rows this snapshot can see in ``name``.

        Built lazily on the first index-assisted probe (a scan never
        needs it); construction is idempotent so a benign double-build
        under a race costs work, not correctness.
        """
        visible = self._visible.get(name)
        if visible is None:
            rows, watermark = self._rows(name)
            visible = {id(row) for row in rows[:watermark]}
            self._visible[name] = visible
        return visible

    # -- named roots -----------------------------------------------------------

    def root(self, name: str) -> Any:
        fault_point("storage_lookup")
        try:
            return self._roots[name]
        except KeyError:
            raise StorageError(f"unknown root {name!r}") from None

    def roots(self) -> list[str]:
        return sorted(self._roots)

    # -- extent indexes --------------------------------------------------------

    def index_for(self, extent: str, attribute: str) -> HashIndex | OrderedIndex | None:
        return self._indexes.get((extent, attribute))

    def has_index(self, extent: str, attribute: str) -> bool:
        return (extent, attribute) in self._indexes

    def candidates(
        self, extent: str, predicate: AlphabetPredicate
    ) -> tuple[list[Any], bool]:
        """Pinned-extent candidates for ``predicate`` (see
        :meth:`Database.candidates`).

        Index objects are shared with the live database and keep
        absorbing post-pin inserts, so probe results are filtered
        against the snapshot's visibility set before being served.
        """
        fault_point("storage_lookup")
        guard = guardrails.current_guard()
        with self.stats.activated():
            if not predicate.opaque:
                best: tuple[int, list[Any]] | None = None
                for attribute, op, constant in predicate.indexable_terms():
                    index = self._indexes.get((extent, attribute))
                    if index is None:
                        continue
                    constant, bound = params.try_resolve(constant)
                    if not bound or not params.is_bindable(constant):
                        continue
                    if isinstance(index, HashIndex):
                        if op != "=":
                            continue
                        rows = index.lookup(constant)
                    else:
                        rows = index.probe_term(op, constant)
                    visible = self._visible_ids(extent)
                    rows = [row for row in rows if id(row) in visible]
                    if best is None or len(rows) < best[0]:
                        best = (len(rows), rows)
                if best is not None:
                    self.stats.bump("index_candidates", best[0])
                    if guard is not None:
                        guard.charge_nodes(best[0], "index candidates")
                    return best[1], True
            rows, watermark = self._rows(extent)
            rows = rows[:watermark]
            self.stats.bump("full_scans")
            self.stats.bump("objects_scanned", len(rows))
            if guard is not None:
                guard.charge_nodes(len(rows), "extent scan")
            return rows, False

    def select(self, extent: str, predicate: AlphabetPredicate) -> AquaSet:
        """Index-assisted pinned-extent select (re-checks the predicate)."""
        rows, _ = self.candidates(extent, predicate)
        counted = self.stats.counting(predicate)
        return AquaSet(row for row in rows if counted(row))

    # -- statistics ------------------------------------------------------------

    def histogram(self, extent: str, attribute: str):
        return self._histograms.get((extent, attribute))

    # -- per-structure node indexes --------------------------------------------

    def tree_index(self, tree: AquaTree, attributes: Iterable[str] = ()) -> TreeIndex:
        """Delegates to the base: node indexes key on immutable structures,
        so sharing them across views is sound (and the base builds them
        once under its structure lock)."""
        return self._base.tree_index(tree, attributes)

    def list_index(self, aqua_list: AquaList, attributes: Iterable[str] = ()) -> ListIndex:
        return self._base.list_index(aqua_list, attributes)

    def columnar_extent(self, tree: AquaTree, *, min_size: int = 0):
        """Delegates to the base: columnar extents key on immutable tree
        objects, and a pinned snapshot keeps referencing the tree object
        it captured — post-pin rebinds create *new* tree objects with
        their own extents, so the snapshot's columnar cut stays
        consistent by construction."""
        return self._base.columnar_extent(tree, min_size=min_size)

    def columnar_list(self, aqua_list: AquaList, *, min_size: int = 0):
        return self._base.columnar_list(aqua_list, min_size=min_size)

    def reset_predicate_bitmaps(self) -> None:
        self._base.reset_predicate_bitmaps()

    def __repr__(self) -> str:
        extents = ", ".join(
            f"{name}×{watermark}"
            for name, (_rows, watermark) in sorted(self._extents.items())
        )
        return (
            f"DatabaseSnapshot(epoch={self._token.epoch}; {extents};"
            f" roots={self.roots()})"
        )
