"""Storage substrate: object store, extents, indexes, instrumentation."""

from .database import Database
from .index import VALUE_ATTRIBUTE, HashIndex, OrderedIndex
from .serialize import (
    dump_database,
    dump_value,
    dumps_database,
    dumps_value,
    load_database,
    load_value,
    loads_database,
    loads_value,
)
from .statistics import AttributeHistogram
from .stats import GLOBAL_STATS, Instrumentation
from .tree_index import ListIndex, NodeLabel, TreeIndex

__all__ = [
    "AttributeHistogram",
    "Database",
    "GLOBAL_STATS",
    "HashIndex",
    "Instrumentation",
    "ListIndex",
    "NodeLabel",
    "OrderedIndex",
    "TreeIndex",
    "VALUE_ATTRIBUTE",
    "dump_database",
    "dump_value",
    "dumps_database",
    "dumps_value",
    "load_database",
    "load_value",
    "loads_database",
    "loads_value",
]
