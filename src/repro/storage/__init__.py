"""Storage substrate: object store, extents, indexes, instrumentation."""

from .database import (
    GLOBAL_RESOURCE,
    Database,
    VersionToken,
    extent_resource,
    root_resource,
)
from .index import VALUE_ATTRIBUTE, HashIndex, OrderedIndex
from .snapshot import DatabaseSnapshot
from .serialize import (
    dump_database,
    dump_value,
    dumps_database,
    dumps_value,
    load_database,
    load_value,
    loads_database,
    loads_value,
)
from .statistics import AttributeHistogram
from .stats import GLOBAL_STATS, Instrumentation
from .tree_index import ListIndex, NodeLabel, TreeIndex

__all__ = [
    "AttributeHistogram",
    "Database",
    "DatabaseSnapshot",
    "GLOBAL_RESOURCE",
    "GLOBAL_STATS",
    "HashIndex",
    "VersionToken",
    "extent_resource",
    "root_resource",
    "Instrumentation",
    "ListIndex",
    "NodeLabel",
    "OrderedIndex",
    "TreeIndex",
    "VALUE_ATTRIBUTE",
    "dump_database",
    "dump_value",
    "dumps_database",
    "dumps_value",
    "load_database",
    "load_value",
    "loads_database",
    "loads_value",
]
