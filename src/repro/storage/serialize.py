"""JSON (de)serialization for AQUA values and databases.

An OODB substrate needs a way to get data in and out; this module
round-trips the bulk types and :class:`~repro.core.identity.Record`
payloads through plain JSON-able dictionaries:

* trees, lists, sets, multisets, tuples and records nest freely;
* object identity is preserved *within one dump*: if the same record
  object appears at several nodes (the cell-sharing §2 allows), it is
  emitted once and referenced thereafter, and loading recreates the
  sharing;
* labeled NULLs (concatenation points) serialize with their labels, so
  pieces produced by ``split`` can be stored and reassembled later —
  the "break up a tree and put it back together later" workflow.

``dump_database``/``load_database`` cover extents, named roots and the
list of indexes to rebuild (index *contents* are derived data and are
reconstructed on load).
"""

from __future__ import annotations

import json
from typing import Any

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaMultiset, AquaSet
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.aqua_tuple import AquaTuple
from ..core.concat import ConcatPoint
from ..core.identity import Cell, Record
from ..errors import StorageError
from .database import Database


class _Dumper:
    def __init__(self) -> None:
        self._record_ids: dict[int, int] = {}
        self.records: list[dict[str, Any]] = []

    def value(self, value: Any) -> Any:
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, Record):
            return {"$record": self._record(value)}
        if isinstance(value, ConcatPoint):
            return {"$point": value.label}
        if isinstance(value, AquaTree):
            return {"$tree": self._tree(value.root)}
        if isinstance(value, AquaList):
            return {"$list": [self.value(_entry_value(e)) for e in value.entries]}
        if isinstance(value, AquaSet):
            return {"$set": [self.value(v) for v in value]}
        if isinstance(value, AquaMultiset):
            return {"$multiset": [self.value(v) for v in value]}
        if isinstance(value, AquaTuple):
            return {"$tuple": [self.value(v) for v in value]}
        if isinstance(value, (list, tuple)):
            return {"$pylist": [self.value(v) for v in value]}
        if isinstance(value, dict):
            return {"$pydict": {str(k): self.value(v) for k, v in value.items()}}
        raise StorageError(f"cannot serialize {type(value).__name__}")

    def _record(self, record: Record) -> int:
        existing = self._record_ids.get(id(record))
        if existing is not None:
            return existing
        index = len(self.records)
        self._record_ids[id(record)] = index
        self.records.append({})  # reserve the slot (cycles appear as refs)
        self.records[index] = {
            name: self.value(value)
            for name, value in sorted(record.stored_attributes().items())
        }
        return index

    def _tree(self, node: TreeNode | None) -> Any:
        if node is None:
            return None
        if node.is_concat_point:
            return {"point": node.item.label}  # type: ignore[union-attr]
        return {
            "value": self.value(node.value),
            "children": [self._tree(c) for c in node.children],
        }


def _entry_value(entry: "Cell | ConcatPoint") -> Any:
    if isinstance(entry, ConcatPoint):
        return entry
    return entry.contents


class _Loader:
    def __init__(self, records: list[dict[str, Any]]) -> None:
        self._raw_records = records
        self._loaded: dict[int, Record] = {}

    def record(self, index: int) -> Record:
        cached = self._loaded.get(index)
        if cached is not None:
            return cached
        record = Record()
        self._loaded[index] = record  # register before recursing (cycles)
        for name, raw in self._raw_records[index].items():
            setattr(record, name, self.value(raw))
        return record

    def value(self, raw: Any) -> Any:
        if raw is None or isinstance(raw, (bool, int, float, str)):
            return raw
        if isinstance(raw, dict):
            if "$record" in raw:
                return self.record(raw["$record"])
            if "$point" in raw:
                return ConcatPoint(raw["$point"])
            if "$tree" in raw:
                return AquaTree(self._tree(raw["$tree"]))
            if "$list" in raw:
                return AquaList.from_values([self.value(v) for v in raw["$list"]])
            if "$set" in raw:
                return AquaSet(self.value(v) for v in raw["$set"])
            if "$multiset" in raw:
                return AquaMultiset(self.value(v) for v in raw["$multiset"])
            if "$tuple" in raw:
                return AquaTuple(*(self.value(v) for v in raw["$tuple"]))
            if "$pylist" in raw:
                return [self.value(v) for v in raw["$pylist"]]
            if "$pydict" in raw:
                return {k: self.value(v) for k, v in raw["$pydict"].items()}
        raise StorageError(f"cannot deserialize {raw!r}")

    def _tree(self, raw: Any) -> TreeNode | None:
        if raw is None:
            return None
        if "point" in raw:
            return TreeNode(ConcatPoint(raw["point"]))
        return TreeNode(
            Cell(self.value(raw["value"])),
            [self._tree(c) for c in raw["children"]],
        )


def dump_value(value: Any) -> dict[str, Any]:
    """Serialize one AQUA value into a JSON-able document."""
    dumper = _Dumper()
    body = dumper.value(value)
    return {"records": dumper.records, "body": body}


def load_value(document: dict[str, Any]) -> Any:
    """Inverse of :func:`dump_value`."""
    loader = _Loader(document.get("records", []))
    return loader.value(document["body"])


def dumps_value(value: Any) -> str:
    return json.dumps(dump_value(value))


def loads_value(text: str) -> Any:
    return load_value(json.loads(text))


def dump_database(db: Database) -> dict[str, Any]:
    """Serialize extents, roots and index definitions."""
    dumper = _Dumper()
    extents = {
        name: [dumper.value(obj) for obj in db.extent(name)]
        for name in db.extents()
    }
    roots = {name: dumper.value(db.root(name)) for name in db.roots()}
    indexes = [
        {
            "extent": extent,
            "attribute": attribute,
            "ordered": type(index).__name__ == "OrderedIndex",
        }
        for (extent, attribute), index in db._indexes.items()
    ]
    return {
        "records": dumper.records,
        "extents": extents,
        "roots": roots,
        "indexes": indexes,
    }


def load_database(document: dict[str, Any]) -> Database:
    """Rebuild a database: data first, then derived indexes."""
    loader = _Loader(document.get("records", []))
    db = Database()
    for name, rows in document.get("extents", {}).items():
        for raw in rows:
            db.insert(loader.value(raw), name)
    for name, raw in document.get("roots", {}).items():
        db.bind_root(name, loader.value(raw))
    for spec in document.get("indexes", []):
        db.create_index(spec["extent"], spec["attribute"], ordered=spec["ordered"])
    return db


def dumps_database(db: Database) -> str:
    return json.dumps(dump_database(db))


def loads_database(text: str) -> Database:
    return load_database(json.loads(text))
