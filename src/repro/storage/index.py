"""Attribute indexes over object extents.

The paper's optimizations "frequently make good use of indexes" (§1) and
§4 explicitly assumes "we can use an index to efficiently locate all
nodes in T that match d".  Two classic access methods are provided:

* :class:`HashIndex` — equality probes in O(1);
* :class:`OrderedIndex` — a sorted-key index (binary search) answering
  equality and range probes, standing in for the B⁺-tree a disk-based
  OODB would use.

Both index *stored attribute values* of objects (or, via the reserved
pseudo-attribute ``__value__``, the payloads themselves — what the
single-letter figure trees need).
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Hashable, Iterable, Iterator

from ..errors import IndexError_
from ..faults import fault_point
from . import stats as stats_mod

#: Pseudo-attribute meaning "the object itself" (see SymbolEquals).
VALUE_ATTRIBUTE = "__value__"

_MISSING = object()


def read_key(obj: Any, attribute: str) -> Any:
    """Extract the index key for ``obj``; ``_MISSING`` when absent."""
    if attribute == VALUE_ATTRIBUTE:
        return obj
    if isinstance(obj, dict):
        return obj.get(attribute, _MISSING)
    return getattr(obj, attribute, _MISSING)


class HashIndex:
    """Equality index: attribute value → entries (insertion-ordered)."""

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._buckets: dict[Hashable, list[Any]] = {}
        self.probes = 0

    def insert(self, entry: Any, key: Any = _MISSING) -> None:
        """Index ``entry``; the key defaults to its attribute value."""
        if key is _MISSING:
            key = read_key(entry, self.attribute)
        if key is _MISSING:
            return  # objects without the attribute are simply not indexed
        try:
            bucket = self._buckets.setdefault(key, [])
        except TypeError as exc:
            raise IndexError_(f"unhashable index key {key!r}") from exc
        bucket.append(entry)

    def bulk_load(self, entries: Iterable[Any]) -> None:
        for entry in entries:
            self.insert(entry)

    def lookup(self, key: Any) -> list[Any]:
        fault_point("index_probe")
        self.probes += 1
        stats_mod.emit("index_probes")
        return list(self._buckets.get(key, ()))

    def keys(self) -> Iterator[Any]:
        return iter(self._buckets)

    def count(self, key: Any) -> int:
        return len(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return sum(len(b) for b in self._buckets.values())

    def selectivity(self, key: Any, total: int) -> float:
        """Fraction of the extent a probe on ``key`` returns."""
        if total <= 0:
            return 1.0
        return self.count(key) / total

    def __repr__(self) -> str:
        return f"HashIndex({self.attribute!r}, keys={len(self._buckets)})"


class OrderedIndex:
    """Sorted-key index supporting equality and range probes.

    Keys must be mutually comparable.  Internally a sorted list of
    ``(key, entry)`` pairs — the in-memory stand-in for a B⁺-tree.

    Probes and inserts serialize on a small internal lock: an insert
    updates ``_keys`` and ``_entries`` in two steps, and a concurrent
    reader landing between them would otherwise see the two lists
    shifted against each other and return entries under the wrong keys.
    (:class:`HashIndex` needs no lock — its bucket append is a single
    atomic list operation.)
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute
        self._keys: list[Any] = []
        self._entries: list[Any] = []
        self._lock = threading.Lock()
        self.probes = 0

    def insert(self, entry: Any, key: Any = _MISSING) -> None:
        if key is _MISSING:
            key = read_key(entry, self.attribute)
        if key is _MISSING:
            return
        with self._lock:
            position = bisect.bisect_right(self._keys, key)
            self._keys.insert(position, key)
            self._entries.insert(position, entry)

    def bulk_load(self, entries: Iterable[Any]) -> None:
        pairs = []
        for entry in entries:
            key = read_key(entry, self.attribute)
            if key is not _MISSING:
                pairs.append((key, entry))
        pairs.sort(key=lambda pair: pair[0])
        with self._lock:
            self._keys = [k for k, _ in pairs]
            self._entries = [e for _, e in pairs]

    def lookup(self, key: Any) -> list[Any]:
        fault_point("index_probe")
        self.probes += 1
        stats_mod.emit("index_probes")
        with self._lock:
            left = bisect.bisect_left(self._keys, key)
            right = bisect.bisect_right(self._keys, key)
            return self._entries[left:right]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> list[Any]:
        """Entries with ``low (≤|<) key (≤|<) high`` (None = unbounded)."""
        fault_point("index_probe")
        self.probes += 1
        stats_mod.emit("index_probes")
        with self._lock:
            if low is None:
                left = 0
            elif include_low:
                left = bisect.bisect_left(self._keys, low)
            else:
                left = bisect.bisect_right(self._keys, low)
            if high is None:
                right = len(self._keys)
            elif include_high:
                right = bisect.bisect_right(self._keys, high)
            else:
                right = bisect.bisect_left(self._keys, high)
            return self._entries[left:right]

    def probe_term(self, op: str, constant: Any) -> list[Any]:
        """Serve one ``(attribute, op, constant)`` indexable term."""
        if op == "=":
            return self.lookup(constant)
        if op == "<":
            return self.range(high=constant, include_high=False)
        if op == "<=":
            return self.range(high=constant)
        if op == ">":
            return self.range(low=constant, include_low=False)
        if op == ">=":
            return self.range(low=constant)
        raise IndexError_(f"ordered index cannot serve operator {op!r}")

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"OrderedIndex({self.attribute!r}, entries={len(self._entries)})"
