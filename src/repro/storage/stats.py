"""Instrumentation counters for the storage, pattern and query layers.

The paper's optimization argument (§4 "Why Split?") is about *work
avoided*: an index on a cheap anchor predicate "drastically narrows the
search space".  1995 wall-clocks are gone, but the narrowing itself is
directly observable: we count predicate evaluations, nodes scanned and
index probes, and the benchmark harness reports both counters and time.

Three mechanisms cooperate here:

* :class:`Instrumentation` — a thread-safe bag of named counters, the
  sink a :class:`~repro.storage.database.Database` owns.  ``scope()``
  isolates a measurement (counters start at zero inside, the previous
  values are restored on exit), replacing the fragile
  ``reset()``-and-hope pattern benchmarks used to rely on.
* **Attribution frames** — while the interpreter evaluates a plan node
  it registers that operator's :class:`~repro.query.metrics`
  sink via :meth:`Instrumentation.attribute_to`; every ``bump`` is then
  *also* credited to the innermost active operator, which is how
  ``EXPLAIN ANALYZE`` knows which operator caused which probe.
* :func:`emit` / :func:`emit_many` — module-level hooks for layers that
  have no database handle (the pattern engines).  A sink receives those
  events only while :meth:`Instrumentation.activated` is in effect,
  which the interpreter guarantees during plan evaluation.

Counter vocabulary (see EXPERIMENTS.md for the full glossary):
``predicate_evals``, ``nodes_scanned``, ``positions_scanned``,
``objects_scanned``, ``index_probes``, ``index_candidates``,
``full_scans``, ``backtrack_steps``, ``dfa_cache_hits``,
``dfa_cache_misses``, ``dfa_cache_evictions``.
"""

from __future__ import annotations

import threading
from collections import Counter
from contextlib import contextmanager
from typing import Any, Callable, Iterator, Mapping, Protocol


class CounterSink(Protocol):
    """Anything counter events can be credited to (duck-typed)."""

    counters: Counter


_local = threading.local()


def _active_sinks() -> list["Instrumentation"]:
    sinks = getattr(_local, "sinks", None)
    if sinks is None:
        sinks = _local.sinks = []
    return sinks


def emit(name: str, amount: int = 1) -> None:
    """Credit ``amount`` to every activated instrumentation sink.

    Used by layers with no database handle (pattern engines); a no-op
    unless some :class:`Instrumentation` is :meth:`~Instrumentation.activated`
    on this thread.
    """
    for sink in _active_sinks():
        sink.bump(name, amount)


def emit_many(counts: Mapping[str, int]) -> None:
    """Credit a batch of counters to every activated sink.

    Engines accumulate plain-int counters in their hot loops and flush
    them here once per entry point, keeping per-element overhead at a
    single integer increment.
    """
    sinks = _active_sinks()
    if not sinks:
        return
    for name, amount in counts.items():
        if amount:
            for sink in sinks:
                sink.bump(name, amount)


class Instrumentation:
    """A thread-safe bag of named counters with attribution hooks.

    Thread model: the counter bag itself is lock-protected and may be
    bumped from any number of threads concurrently, while attribution
    frames, collectors and activation are **thread-local** — each worker
    thread attributes to its own operator stack, so sharing one sink
    across a thread pool is safe but mixes all workers' totals into one
    bag.  Workloads that want per-query isolation give each snapshot its
    own sink (``db.snapshot(stats=Instrumentation())``) and fold the
    results together afterwards with :meth:`merge`.
    """

    def __init__(self) -> None:
        self.counters: Counter = Counter()
        self._lock = threading.RLock()
        self._frames = threading.local()

    # -- core counting -----------------------------------------------------

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self.counters[name] += amount
        frames = getattr(self._frames, "stack", None)
        if frames:
            frames[-1].counters[name] += amount

    def reset(self) -> None:
        with self._lock:
            self.counters.clear()

    def __getitem__(self, name: str) -> int:
        with self._lock:
            return self.counters[name]

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self.counters)

    def merge(self, other: "Instrumentation | Mapping[str, int]") -> None:
        """Fold another sink's counters into this one.

        The concurrent serving path gives each pinned snapshot its own
        private sink (so parallel queries never interleave attribution
        frames); after the futures resolve, a harness merges the
        per-worker sinks back into the database's own for one combined
        report.  Thread-safe on both sides — ``other`` is snapshotted
        first, then folded in under this sink's lock.
        """
        counts = other.snapshot() if isinstance(other, Instrumentation) else other
        with self._lock:
            for name, amount in counts.items():
                self.counters[name] += amount

    # -- scoping -----------------------------------------------------------

    @contextmanager
    def scope(self) -> Iterator["Instrumentation"]:
        """Run a measurement in isolation.

        Counters read zero on entry; whatever the block accumulates is
        visible inside it; the pre-existing values are restored on exit,
        so nothing leaks across benchmarks that share a sink (the old
        failure mode of forgetting ``reset()`` on ``GLOBAL_STATS``).
        """
        with self._lock:
            saved = dict(self.counters)
            self.counters.clear()
        try:
            yield self
        finally:
            with self._lock:
                self.counters.clear()
                self.counters.update(saved)

    @contextmanager
    def attribute_to(self, sink: CounterSink) -> Iterator[None]:
        """Credit bumps on this thread to ``sink`` while the block runs.

        Frames nest; only the innermost frame is credited, so operator
        counters are *exclusive* (a parent does not re-count its
        children's work).
        """
        stack = getattr(self._frames, "stack", None)
        if stack is None:
            stack = self._frames.stack = []
        stack.append(sink)
        try:
            yield
        finally:
            stack.pop()

    @contextmanager
    def collecting(self, collector: Any) -> Iterator[None]:
        """Install a per-operator collector (a
        :class:`~repro.query.metrics.PlanMetrics`) for this thread.

        The interpreter consults :attr:`collector` on every node it
        evaluates, so installing one turns a plain ``evaluate`` into an
        instrumented run without changing any call signatures.
        """
        previous = getattr(self._frames, "collector", None)
        self._frames.collector = collector
        try:
            yield
        finally:
            self._frames.collector = previous

    @property
    def collector(self) -> Any:
        return getattr(self._frames, "collector", None)

    @contextmanager
    def activated(self) -> Iterator["Instrumentation"]:
        """Receive :func:`emit` events from engine layers on this thread.

        Idempotent: re-entering with the same sink already active is a
        no-op, so recursive plan evaluation costs one list lookup.
        """
        sinks = _active_sinks()
        if self in sinks:
            yield self
            return
        sinks.append(self)
        try:
            yield self
        finally:
            sinks.remove(self)

    @property
    def is_activated(self) -> bool:
        """Is this sink receiving :func:`emit` events on this thread?

        The exchange operator checks this at fan-out so worker threads
        mirror the query thread's activation state: an instrumented run
        captures engine counters from every worker, while an
        uninstrumented run stays uninstrumented — parallel execution
        must not record events the sequential run would have dropped.
        """
        return self in _active_sinks()

    # -- predicate wrapping -------------------------------------------------

    def counting(
        self, predicate: Callable[[Any], bool], name: str = "predicate_evals"
    ) -> Callable[[Any], bool]:
        """Wrap ``predicate`` so each evaluation bumps ``name``."""

        def counted(obj: Any) -> bool:
            self.bump(name)
            return predicate(obj)

        # Preserve opacity/decomposition attributes when wrapping an
        # alphabet-predicate for counting-only purposes.
        for attribute in ("describe", "conjuncts", "indexable_terms", "attributes"):
            if hasattr(predicate, attribute):
                setattr(counted, attribute, getattr(predicate, attribute))
        return counted

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.snapshot().items()))
        return f"Instrumentation({inner})"


#: A process-wide default instrumentation sink; benchmarks typically make
#: their own instance (or use ``scope()``), but casual measurements can
#: use this one.
GLOBAL_STATS = Instrumentation()
