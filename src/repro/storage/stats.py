"""Instrumentation counters for the storage and query layers.

The paper's optimization argument (§4 "Why Split?") is about *work
avoided*: an index on a cheap anchor predicate "drastically narrows the
search space".  1995 wall-clocks are gone, but the narrowing itself is
directly observable: we count predicate evaluations, nodes scanned and
index probes, and the benchmark harness reports both counters and time.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable


class Instrumentation:
    """A bag of named counters with helpers for wrapping predicates."""

    def __init__(self) -> None:
        self.counters: Counter = Counter()

    def bump(self, name: str, amount: int = 1) -> None:
        self.counters[name] += amount

    def reset(self) -> None:
        self.counters.clear()

    def __getitem__(self, name: str) -> int:
        return self.counters[name]

    def snapshot(self) -> dict[str, int]:
        return dict(self.counters)

    def counting(
        self, predicate: Callable[[Any], bool], name: str = "predicate_evals"
    ) -> Callable[[Any], bool]:
        """Wrap ``predicate`` so each evaluation bumps ``name``."""

        def counted(obj: Any) -> bool:
            self.bump(name)
            return predicate(obj)

        # Preserve opacity/decomposition attributes when wrapping an
        # alphabet-predicate for counting-only purposes.
        for attribute in ("describe", "conjuncts", "indexable_terms", "attributes"):
            if hasattr(predicate, attribute):
                setattr(counted, attribute, getattr(predicate, attribute))
        return counted

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self.counters.items()))
        return f"Instrumentation({inner})"


#: A process-wide default instrumentation sink; benchmarks typically make
#: their own instance, but casual measurements can use this one.
GLOBAL_STATS = Instrumentation()
