"""Shard views: partitioning an extent's members for parallel execution.

The exchange operator (:mod:`repro.physical.exchange`) splits a
set-shaped stream into shards, runs each shard on a worker, and merges
the shard streams back in source order.  The partitioning itself is a
storage concern — it must respect the properties the engine layers rely
on — and lives here so it can be unit-tested against the storage model
directly:

* **whole members** — a member (typically a stored tree) is never split
  across shards, so a tree's cached
  :class:`~repro.storage.columnar.ColumnarExtent` cut is built once and
  reused by whichever worker owns it (the cache is keyed by tree
  identity on the shared database view);
* **position-tagged** — every member carries its source position, the
  key the ordered merge re-interleaves by, so the parallel stream is
  bit-identical to the sequential one;
* **deterministic** — hash partitioning keys on the member's *OID*
  (every AQUA entity has identity, §2), not ``hash()`` of the payload,
  so the same extent shards the same way run to run and process to
  process (OIDs are assigned at construction, not per interpreter).

Two strategies, per ROADMAP item 3:

* ``range`` — contiguous blocks of pre-order (extent) positions; best
  cache locality and a trivially streaming merge;
* ``hash`` — stable hash on the member's root OID; robust to skew when
  member sizes vary wildly (one giant tree does not serialize a whole
  range block behind it).
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..core.identity import DatabaseObject

#: One shard: the (source position, member) pairs a worker owns.
Shard = list[tuple[int, Any]]

STRATEGIES = ("hash", "range")


def member_shard_key(member: Any) -> int:
    """A stable partitioning key for one extent member.

    Stored objects key on their root OID (``AquaTree`` exposes the root
    node's cell; plain :class:`~repro.core.identity.DatabaseObject`
    payloads their own OID).  Values without identity fall back to
    ``id()`` — still deterministic within one execution, which is all
    the planner needs (the merge restores order; the key only balances).
    """
    root = getattr(member, "root", None)
    if root is not None and not callable(root):
        candidate = root
    else:
        candidate = member
    oid = getattr(candidate, "oid", None)
    if oid is None and isinstance(member, DatabaseObject):
        oid = member.oid
    if oid is None:
        return id(member)
    return int(oid)


_MASK64 = (1 << 64) - 1


def _mix(key: int) -> int:
    """Finalize ``key`` into a well-distributed 64-bit hash (splitmix64).

    Raw OIDs must not be bucketed by plain modulo: the allocator hands
    out monotonically increasing OIDs, so the root OIDs of N-node trees
    inserted back to back stride by a constant — and whenever that
    stride shares a factor with the shard count, every root lands in
    the same congruence class and one bucket gets the whole extent.
    The splitmix64 finalizer folds the high bits back down, breaking
    the congruence while staying deterministic across runs and
    processes (no interpreter hash randomization).
    """
    z = (key + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def range_shards(members: Sequence[Any], count: int) -> list[Shard]:
    """Split ``members`` into ``count`` contiguous position blocks.

    Block sizes differ by at most one; empty shards are dropped, so the
    result has ``min(count, len(members))`` entries.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    total = len(members)
    shards: list[Shard] = []
    base, extra = divmod(total, count)
    start = 0
    for index in range(count):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        shards.append(
            [(pos, members[pos]) for pos in range(start, start + size)]
        )
        start += size
    return shards


def hash_shards(members: Sequence[Any], count: int) -> list[Shard]:
    """Partition ``members`` by stable OID hash into up to ``count`` shards.

    Positions within a shard stay ascending (workers emit in position
    order, which keeps the ordered merge's buffer small).  Empty shards
    are dropped.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    buckets: list[Shard] = [[] for _ in range(count)]
    for pos, member in enumerate(members):
        buckets[_mix(member_shard_key(member)) % count].append((pos, member))
    return [bucket for bucket in buckets if bucket]


def plan_shards(
    members: Sequence[Any], count: int, strategy: str = "hash"
) -> list[Shard]:
    """Partition ``members`` under ``strategy`` (``hash`` | ``range``)."""
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown shard strategy {strategy!r} (accepted: {', '.join(STRATEGIES)})"
        )
    if strategy == "range":
        return range_shards(members, count)
    return hash_shards(members, count)


def covered_positions(shards: Iterable[Shard]) -> list[int]:
    """Every position the shards cover, sorted (test/verification helper)."""
    return sorted(pos for shard in shards for pos, _ in shard)
