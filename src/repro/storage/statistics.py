"""Attribute statistics for the cost model: equi-width histograms.

The companion paper [31] promises "a cost model ... and access methods";
a cost model is only as good as its selectivity estimates.  This module
provides the classical building block: per-attribute equi-width
histograms over an extent, built on demand by
:meth:`~repro.storage.database.Database.analyze`, consulted by the
optimizer's :class:`~repro.optimizer.cost.CostModel` for range
predicates (equality predicates are served more precisely by the index
itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..errors import StorageError
from .index import _MISSING, read_key


@dataclass
class AttributeHistogram:
    """An equi-width histogram plus the standard scalar statistics."""

    attribute: str
    buckets: list[int] = field(default_factory=list)
    low: float = 0.0
    high: float = 0.0
    total: int = 0
    distinct: int = 0
    null_count: int = 0  # objects missing the attribute

    @classmethod
    def build(
        cls, attribute: str, objects: Iterable[Any], bucket_count: int = 32
    ) -> "AttributeHistogram":
        values: list[float] = []
        null_count = 0
        distinct: set[float] = set()
        for obj in objects:
            raw = read_key(obj, attribute)
            if raw is _MISSING or raw is None:
                null_count += 1
                continue
            if not isinstance(raw, (int, float)) or isinstance(raw, bool):
                raise StorageError(
                    f"histograms require numeric attributes; {attribute!r} has"
                    f" {type(raw).__name__} values"
                )
            values.append(float(raw))
            distinct.add(float(raw))

        histogram = cls(attribute=attribute)
        histogram.total = len(values)
        histogram.null_count = null_count
        histogram.distinct = len(distinct)
        if not values:
            return histogram
        histogram.low = min(values)
        histogram.high = max(values)
        bucket_count = max(1, bucket_count)
        histogram.buckets = [0] * bucket_count
        width = (histogram.high - histogram.low) or 1.0
        for value in values:
            slot = int((value - histogram.low) / width * bucket_count)
            slot = min(slot, bucket_count - 1)
            histogram.buckets[slot] += 1
        return histogram

    # -- selectivity estimation --------------------------------------------

    def _fraction_below(self, constant: float, inclusive: bool) -> float:
        """Estimated fraction of values ``< constant`` (``<=`` when
        inclusive), with linear interpolation inside the bucket."""
        if self.total == 0:
            return 0.0
        if constant < self.low:
            return 0.0
        if constant > self.high:
            return 1.0
        bucket_count = len(self.buckets)
        width = (self.high - self.low) / bucket_count or 1.0
        slot = min(int((constant - self.low) / width), bucket_count - 1)
        below = sum(self.buckets[:slot])
        inside = self.buckets[slot]
        bucket_start = self.low + slot * width
        within = (constant - bucket_start) / width
        if inclusive:
            within = min(1.0, within + 1.0 / max(1, inside) if inside else within)
        estimate = (below + inside * within) / self.total
        return max(0.0, min(1.0, estimate))

    def selectivity(self, op: str, constant: Any) -> float:
        """Estimated fraction of the extent satisfying ``attr OP constant``."""
        if not isinstance(constant, (int, float)) or isinstance(constant, bool):
            return 0.1
        value = float(constant)
        if op == "=":
            if self.distinct == 0:
                return 0.0
            if value < self.low or value > self.high:
                return 0.0
            return 1.0 / self.distinct
        if op == "!=":
            return 1.0 - self.selectivity("=", value)
        if op == "<":
            return self._fraction_below(value, inclusive=False)
        if op == "<=":
            return self._fraction_below(value, inclusive=True)
        if op == ">":
            return 1.0 - self._fraction_below(value, inclusive=True)
        if op == ">=":
            return 1.0 - self._fraction_below(value, inclusive=False)
        return 0.1

    def estimated_rows(self, op: str, constant: Any) -> float:
        return self.selectivity(op, constant) * self.total

    def __repr__(self) -> str:
        return (
            f"AttributeHistogram({self.attribute!r}, n={self.total},"
            f" range=[{self.low}, {self.high}], distinct={self.distinct})"
        )
