"""Node-level indexes over one tree (or list) instance.

§4's split rewrite assumes the system can "use an index to efficiently
locate all nodes in T that match d".  A :class:`TreeIndex` provides that:
it walks a tree once, assigns every node its preorder/postorder interval
label (the classic ancestor-test encoding), and builds hash indexes from
stored attribute values — plus the payload itself — to nodes.

Given an alphabet-predicate it answers :meth:`candidate_nodes`: the
nodes that *might* match, served from an index when the predicate has an
indexable equality term, falling back to a full scan otherwise (and
saying which happened, so benchmarks can report the narrowing).

:class:`ListIndex` is the positional analogue for lists: predicate value
→ element positions, which the optimizer feeds to the pattern engines'
``starts`` hook.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from .. import guardrails, params
from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree, TreeNode
from ..faults import fault_point
from ..predicates.alphabet import AlphabetPredicate
from .index import VALUE_ATTRIBUTE, HashIndex, read_key
from .stats import Instrumentation

#: Bitmap plane states: 0 = unknown, 1 = known false, 2 = known true.
_UNKNOWN, _FALSE, _TRUE = 0, 1, 2


# -- per-query bitmap scoping ---------------------------------------------------

_bitmap_scope = threading.local()


@contextmanager
def scoped_bitmaps() -> Iterator[None]:
    """Arm per-query predicate-bitmap isolation for this thread.

    While armed, :attr:`TreeIndex.bitmap` hands out a bitmap private to
    this scope (one per index, created on demand) instead of the
    index-resident one.  That keeps per-query outcome state from
    bleeding between queries scheduled on a shared pool thread — and
    from racing between *concurrent* queries over the same tree, whose
    shared index previously also shared one mutable bitmap.  The
    previous scope (usually none) is restored on exit, exceptions
    included.
    """
    previous = getattr(_bitmap_scope, "bitmaps", None)
    _bitmap_scope.bitmaps = {}
    try:
        yield
    finally:
        _bitmap_scope.bitmaps = previous


def _scope_bitmaps() -> "dict[int, PredicateBitmap] | None":
    return getattr(_bitmap_scope, "bitmaps", None)


class PredicateBitmap:
    """Per-query predicate-outcome planes: each alphabet predicate is
    evaluated **at most once per data node**.

    One plane (a ``bytearray`` indexed by the node's pre-order label) per
    distinct predicate object; a cell is unknown, known-false or
    known-true.  The bitmap is owned by the structure's
    :class:`TreeIndex` so one fill serves every consumer of the node —
    anchor-probe re-checks, matcher atom tests, optimizer analysis —
    across all candidates and operators of a query.  ``reset()`` clears
    the planes between queries (the bitmap is per-query state stored at
    the index for sharing, not a persistent statistic).
    """

    def __init__(
        self,
        size: int,
        pre_of: Callable[[TreeNode], int | None],
        source: Any | None = None,
    ) -> None:
        self._size = max(1, size)
        self._pre_of = pre_of
        #: Optional shared-column source (a
        #: :class:`repro.storage.columnar.ColumnarExtent`): a plane miss
        #: consults ``source.outcome_for(predicate, node)`` before
        #: evaluating, so outcomes another consumer already batch-computed
        #: for the whole extent are never re-derived per node.
        self._source = source
        self._planes: dict[int, bytearray] = {}
        self._slots: dict[int, int] = {}
        self._keep: list[AlphabetPredicate] = []  # keeps id() keys stable
        self.fills = 0
        self.hits = 0

    def outcome(self, predicate: AlphabetPredicate, node: TreeNode) -> tuple[bool, bool]:
        """``(result, filled)`` — evaluate-once semantics per node.

        ``filled`` is True when this call actually ran the predicate (a
        bitmap fill); False means the outcome was served without an
        evaluation — from the plane, or from a shared predicate column.
        """
        pre = self._pre_of(node)
        if pre is None or pre >= self._size:
            # A node the owner never labeled (e.g. a tree mutated after
            # indexing): evaluate without caching rather than mislabel.
            return bool(predicate(node.value)), True
        slot = self._slots.get(id(predicate))
        if slot is None:
            slot = self._slots[id(predicate)] = len(self._keep)
            self._keep.append(predicate)
        plane = self._planes.get(slot)
        if plane is None:
            plane = self._planes[slot] = bytearray(self._size)
        state = plane[pre]
        if state != _UNKNOWN:
            self.hits += 1
            return state == _TRUE, False
        if self._source is not None:
            served = self._source.outcome_for(predicate, node)
            if served is not None:
                plane[pre] = _TRUE if served else _FALSE
                self.hits += 1
                return served, False
        result = bool(predicate(node.value))
        plane[pre] = _TRUE if result else _FALSE
        self.fills += 1
        return result, True

    @property
    def plane_count(self) -> int:
        return len(self._planes)

    @property
    def memory_cells(self) -> int:
        """Resident plane cells — the quantity budgets charge for."""
        return len(self._planes) * self._size

    def reset(self) -> None:
        self._planes.clear()
        self._slots.clear()
        self._keep.clear()
        self.fills = 0
        self.hits = 0


@dataclass(frozen=True)
class NodeLabel:
    """Preorder/postorder interval label: ``a`` is an ancestor of ``b``
    iff ``a.pre < b.pre`` and ``b.post < a.post``."""

    pre: int
    post: int
    depth: int


class TreeIndex:
    """Attribute → node indexes plus interval labels for one tree."""

    def __init__(self, tree: AquaTree, attributes: Iterable[str] = ()) -> None:
        self.tree = tree
        self.labels: dict[int, NodeLabel] = {}
        self._value_index = HashIndex(VALUE_ATTRIBUTE)
        self._attribute_indexes: dict[str, HashIndex] = {
            attribute: HashIndex(attribute) for attribute in attributes
        }
        self.node_count = 0
        self._pre: dict[int, int] = {}
        self._children_pre: dict[int, int] = {}
        self._bitmap: PredicateBitmap | None = None
        self._column_provider: Callable[[], Any] | None = None
        self._build()

    def _build(self) -> None:
        if self.tree.root is None:
            return
        counter = 0
        sequence = 0

        def walk(node: TreeNode, depth: int) -> None:
            nonlocal counter, sequence
            pre = counter
            counter += 1
            # The dense preorder sequence (matching enumerate(tree.nodes()))
            # doubles as the match-memo position interning, so contexts
            # primed from this index skip their own O(n) walk.
            self._pre[id(node)] = sequence
            self._children_pre[id(node.children)] = sequence
            sequence += 1
            for child in node.children:
                walk(child, depth + 1)
            self.labels[id(node)] = NodeLabel(pre=pre, post=counter, depth=depth)
            counter += 1
            if node.is_concat_point:
                return
            value = node.value
            self._value_index.insert(node, key=_hashable_key(value))
            for attribute, index in self._attribute_indexes.items():
                key = read_key(value, attribute)
                index.insert(node, key=_hashable_key(key))

        walk(self.tree.root, 0)
        self.node_count = sequence

    def position_maps(self) -> tuple[dict[int, int], dict[int, int]]:
        """``(node-id → preorder, children-id → preorder)`` built once.

        The same shape :meth:`repro.storage.columnar.ColumnarExtent.position_maps`
        shares with the match context — handing these to
        ``prime_match_context`` saves the context's own full-tree
        interning walk on every query that probes this index.
        """
        return self._pre, self._children_pre

    def preorder_sorted(self, nodes: "list[TreeNode]") -> "list[TreeNode]":
        """Sort probed nodes into document preorder via the labels."""
        return sorted(
            nodes,
            key=lambda node: (
                label.pre
                if (label := self.labels.get(id(node))) is not None
                else self.node_count
            ),
        )

    # -- structural predicates ------------------------------------------------

    def is_ancestor(self, ancestor: TreeNode, descendant: TreeNode) -> bool:
        a = self.labels[id(ancestor)]
        b = self.labels[id(descendant)]
        return a.pre < b.pre and b.post < a.post

    def depth(self, node: TreeNode) -> int:
        return self.labels[id(node)].depth

    # -- shared predicate columns ----------------------------------------------

    def attach_column_source(self, provider: Callable[[], Any]) -> None:
        """Wire a columnar-extent provider (set by ``Database.tree_index``).

        ``provider`` re-resolves the ``AQUA_COLUMNAR*`` knobs on every
        call, so a cached index never pins a stale on/off or threshold
        decision; it returns the tree's
        :class:`~repro.storage.columnar.ColumnarExtent` or ``None``.
        """
        self._column_provider = provider

    def _column_source(self) -> Any | None:
        provider = self._column_provider
        return provider() if provider is not None else None

    # -- predicate-outcome bitmap ---------------------------------------------

    def _make_bitmap(self) -> PredicateBitmap:
        labels = self.labels
        return PredicateBitmap(
            2 * self.node_count + 2,
            lambda node: (
                label.pre if (label := labels.get(id(node))) is not None else None
            ),
            source=self._column_source(),
        )

    @property
    def bitmap(self) -> PredicateBitmap:
        """The per-query predicate-outcome bitmap, keyed by ``pre`` labels.

        Lazily allocated; plane size spans the label counter's range
        (pre labels run to ``2 · node_count`` because the counter also
        advances at each postorder visit).  Inside a
        :func:`scoped_bitmaps` scope (armed per query by
        :func:`repro.patterns.tree_memo.match_scope`) the bitmap is
        private to the scope, so concurrent queries sharing this index
        never share — or reset — each other's outcome planes.
        """
        scoped = _scope_bitmaps()
        if scoped is not None:
            bitmap = scoped.get(id(self))
            if bitmap is None:
                bitmap = scoped[id(self)] = self._make_bitmap()
            return bitmap
        if self._bitmap is None:
            self._bitmap = self._make_bitmap()
        return self._bitmap

    def reset_bitmap(self) -> None:
        """Clear per-query outcome state (called at query start)."""
        if self._bitmap is not None:
            self._bitmap.reset()

    def predicate_outcome(
        self,
        predicate: AlphabetPredicate,
        node: TreeNode,
        stats: Instrumentation | None = None,
    ) -> bool:
        """Evaluate ``predicate`` on ``node`` through the outcome bitmap.

        This is the fix for the duplicated work in :meth:`candidate_nodes`
        consumers: every anchor re-check and fallback scan of the same
        (predicate, node) pair after the first is a plane lookup.  Saved
        evaluations are flushed to stats as ``bitmap_hits``.
        """
        result, filled = self.bitmap.outcome(predicate, node)
        if stats is not None:
            if filled:
                stats.bump("bitmap_fills")
                stats.bump("predicate_evals")
            else:
                stats.bump("bitmap_hits")
        return result

    # -- candidate retrieval ----------------------------------------------------

    def add_attribute(self, attribute: str) -> None:
        if attribute in self._attribute_indexes:
            return
        index = HashIndex(attribute)
        for node in self.tree.element_nodes():
            index.insert(node, key=_hashable_key(read_key(node.value, attribute)))
        self._attribute_indexes[attribute] = index

    def indexed_attributes(self) -> set[str]:
        return set(self._attribute_indexes)

    def probe(self, attribute: str, key: Any) -> list[TreeNode]:
        if attribute == VALUE_ATTRIBUTE:
            return self._value_index.lookup(_hashable_key(key))
        return self._attribute_indexes[attribute].lookup(_hashable_key(key))

    def count(self, attribute: str, key: Any) -> int:
        if attribute == VALUE_ATTRIBUTE:
            return self._value_index.count(_hashable_key(key))
        return self._attribute_indexes[attribute].count(_hashable_key(key))

    def servable_terms(
        self, predicate: AlphabetPredicate
    ) -> list[tuple[str, str, Any]]:
        """The predicate's equality terms this index can serve.

        ``$param`` constants are resolved to their current binding (the
        probe needs a concrete key); a term whose param is unbound is
        not servable.
        """
        if predicate.opaque:
            return []
        terms: list[tuple[str, str, Any]] = []
        for attribute, op, constant in predicate.indexable_terms():
            if op != "=":
                continue
            if attribute != VALUE_ATTRIBUTE and attribute not in self._attribute_indexes:
                continue
            constant, bound = params.try_resolve(constant)
            if not bound:
                continue
            terms.append((attribute, op, constant))
        return terms

    def candidate_nodes(
        self,
        predicate: AlphabetPredicate,
        stats: Instrumentation | None = None,
    ) -> tuple[list[TreeNode], bool]:
        """Nodes that might satisfy ``predicate``; ``(nodes, used_index)``.

        With a servable equality term the candidates come from one index
        probe (then get re-checked by the caller's full predicate); with
        none, every element node is returned and the caller scans.
        """
        guard = guardrails.current_guard()
        terms = self.servable_terms(predicate)
        if terms:
            # Pick the most selective servable term.
            attribute, _, constant = min(
                terms, key=lambda term: self.count(term[0], term[2])
            )
            if stats is not None:
                stats.bump("index_probes")
            nodes = self.probe(attribute, constant)
            if stats is not None:
                stats.bump("index_candidates", len(nodes))
            if guard is not None:
                guard.charge_nodes(len(nodes), "tree-index candidates")
            return nodes, True
        source = self._column_source()
        if source is not None and source.servable(predicate):
            # Fallback-scan fix: instead of handing back every element
            # node for a per-probe re-check, serve the shared predicate
            # column — one batch evaluation per extent, after which the
            # caller's re-checks are all bitmap/column hits.
            nodes = source.matching_nodes(predicate)
            if stats is not None:
                stats.bump("column_scans")
                stats.bump("index_candidates", len(nodes))
            if guard is not None:
                guard.charge_nodes(len(nodes), "columnar candidates")
            return nodes, True
        nodes = list(self.tree.element_nodes())
        if stats is not None:
            stats.bump("full_scans")
            stats.bump("nodes_scanned", len(nodes))
        if guard is not None:
            guard.charge_nodes(len(nodes), "tree scan")
        return nodes, False


class ListIndex:
    """Value/attribute → element positions for one list."""

    def __init__(self, aqua_list: AquaList, attributes: Iterable[str] = ()) -> None:
        self.aqua_list = aqua_list
        self.values = aqua_list.values()
        self._value_positions: dict[Any, list[int]] = {}
        self._attribute_positions: dict[str, dict[Any, list[int]]] = {
            attribute: {} for attribute in attributes
        }
        for position, value in enumerate(self.values):
            self._value_positions.setdefault(_hashable_key(value), []).append(position)
            for attribute, mapping in self._attribute_positions.items():
                key = _hashable_key(read_key(value, attribute))
                mapping.setdefault(key, []).append(position)

    def positions_for(
        self,
        predicate: AlphabetPredicate,
        stats: Instrumentation | None = None,
    ) -> tuple[list[int], bool]:
        """Positions that might satisfy ``predicate``; ``(positions, used_index)``."""
        guard = guardrails.current_guard()
        if not predicate.opaque:
            for attribute, op, constant in predicate.indexable_terms():
                if op != "=":
                    continue
                constant, bound = params.try_resolve(constant)
                if not bound:
                    continue
                if attribute == VALUE_ATTRIBUTE:
                    fault_point("index_probe")
                    if stats is not None:
                        stats.bump("index_probes")
                    positions = list(
                        self._value_positions.get(_hashable_key(constant), ())
                    )
                    if guard is not None:
                        guard.charge_nodes(len(positions), "list-index candidates")
                    return positions, True
                if attribute in self._attribute_positions:
                    fault_point("index_probe")
                    if stats is not None:
                        stats.bump("index_probes")
                    mapping = self._attribute_positions[attribute]
                    positions = list(mapping.get(_hashable_key(constant), ()))
                    if guard is not None:
                        guard.charge_nodes(len(positions), "list-index candidates")
                    return positions, True
        if stats is not None:
            stats.bump("full_scans")
        if guard is not None:
            guard.charge_nodes(len(self.values), "list scan")
        return list(range(len(self.values))), False


def _hashable_key(value: Any) -> Any:
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value
