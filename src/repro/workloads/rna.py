"""RNA secondary-structure workload (paper §1, reference [28]).

Shapiro & Zhang compare RNA secondary structures as trees whose nodes
are structural elements: stems (S), hairpin loops (H), bulges (B),
internal loops (I) and multi-branch loops (M).  The paper cites this as
a motivating domain for tree queries; the reproduction generates such
trees and queries motifs (e.g. "a stem whose loop contains a bulge
followed by a hairpin") with ``sub_select``.
"""

from __future__ import annotations

import random

from ..core.aqua_tree import AquaTree
from ..core.identity import Record
from ..predicates.alphabet import AlphabetPredicate, Comparison
from .generators import rng_from

ELEMENTS = ("S", "H", "B", "I", "M")


def element(kind: str, length: int = 0) -> Record:
    """One secondary-structure element with its base-pair/nt length."""
    return Record(kind=kind, length=length)


def by_element(symbol: str) -> AlphabetPredicate:
    """Resolver: bare symbols mean ``kind = symbol`` (S, H, B, I, M)."""
    return Comparison("kind", "=", symbol)


def random_rna_structure(
    size: int,
    seed: "int | random.Random" = 0,
) -> AquaTree:
    """A random RNA secondary-structure tree with ~``size`` elements.

    Grammar-shaped growth: stems extend into one inner element; loops
    terminate; multi-branch loops fan out into several stems — matching
    the branching statistics of real structures closely enough for
    motif-query benchmarks.
    """
    rng = rng_from(seed)
    best: AquaTree | None = None
    for _ in range(32):
        candidate = _grow_structure(rng, size)
        if best is None or candidate.size() > best.size():
            best = candidate
        if best.size() >= max(1, size) // 2:
            break
    assert best is not None
    return best


#: Vertical growth cap: real structures are broad, not thousand-deep,
#: and Python recursion must stay well under the interpreter limit.
_MAX_DEPTH = 100


def _grow_structure(rng: random.Random, size: int) -> AquaTree:
    budget = max(1, size)

    def grow_stem(depth: int = 0) -> AquaTree:
        nonlocal budget
        budget -= 1
        inner = grow_inner(depth + 1)
        return AquaTree.build(element("S", rng.randint(2, 12)), [inner])

    def grow_inner(depth: int = 0) -> AquaTree:
        nonlocal budget
        budget -= 1
        if budget <= 2 or depth >= _MAX_DEPTH:
            return AquaTree.leaf(element("H", rng.randint(3, 8)))
        # Slightly supercritical branching; the budget guard terminates
        # growth, so the result lands near the requested size.
        roll = rng.random()
        if roll < 0.12:
            return AquaTree.leaf(element("H", rng.randint(3, 8)))
        if roll < 0.44:
            return AquaTree.build(element("B", rng.randint(1, 5)), [grow_stem(depth + 1)])
        if roll < 0.76:
            return AquaTree.build(element("I", rng.randint(2, 6)), [grow_stem(depth + 1)])
        fan = rng.randint(2, 3)
        return AquaTree.build(
            element("M", rng.randint(4, 10)),
            [grow_stem(depth + 1) for _ in range(fan)],
        )

    return grow_stem()


def count_elements(structure: AquaTree, kind: str) -> int:
    return sum(1 for v in structure.values() if v.kind == kind)
