"""The family-tree workload (paper §4, Figures 3 and 4).

"Consider a family tree containing the descendants of a famous person.
Each node represents a person object ... we only list the name,
citizenship, eye color, and education attributes."  Each edge is
"a child of"; a path is "a descendant of".

:func:`figure3_family_tree` reconstructs a tree consistent with every
behavior the paper states for it:

* ``split(Brazil(!?* USA !?*), λ(x,y,z)⟨x,y,z⟩)(T)`` has **exactly one
  match**, whose pieces carry ``α`` (ancestors), ``α1`` (a sibling
  subtree pruned by the first ``!?*``) and ``α2`` (a descendant of the
  matched USA person) — the three pieces of Figure 4;
* the pattern ``Mat(? "Ed")`` of the Figure 4 caption has a match.

(The original figure is an image; the reconstruction fixes concrete
names where the text allows freedom and DESIGN.md records this.)

:func:`random_family_tree` scales the same schema to arbitrary sizes
with a controllable number of planted Brazilian-parent/American-child
sites, the knob the FIG4/CLAIM-SPLIT benchmarks sweep.
"""

from __future__ import annotations

import random

from ..core.aqua_tree import AquaTree, TreeNode
from ..core.identity import Cell, Record
from ..predicates.alphabet import AlphabetPredicate, Comparison, attr
from .generators import rng_from

EYE_COLORS = ("brown", "blue", "green", "hazel")
EDUCATIONS = ("None", "HighSchool", "College", "PhD")
CITIZENSHIPS = ("Brazil", "USA", "Chile", "Peru", "France")


def person(
    name: str,
    citizen: str,
    eyes: str = "brown",
    education: str = "College",
) -> Record:
    """A person object with the four attributes the paper lists."""
    return Record(name=name, citizen=citizen, eyes=eyes, education=education)


def by_name(symbol: str) -> AlphabetPredicate:
    """Pattern-symbol resolver: a bare symbol means ``name = symbol``."""
    return Comparison("name", "=", symbol)


#: The paper's shorthand predicates: "Brazil" / "USA" stand for
#: ``λ(p) p.citizen = "Brazil"`` etc.
BRAZIL = attr("citizen") == "Brazil"
USA = attr("citizen") == "USA"


def by_citizen_or_name(symbol: str) -> AlphabetPredicate:
    """Resolver for §4's patterns: citizenships resolve to citizen
    predicates, anything else to a name predicate."""
    if symbol in CITIZENSHIPS:
        return Comparison("citizen", "=", symbol)
    return Comparison("name", "=", symbol)


def figure3_family_tree() -> AquaTree:
    """The reconstructed Figure 3 family tree (8 people, 3 generations)."""
    return AquaTree.build(
        person("Maria", "Brazil", "brown", "PhD"),
        [
            AquaTree.build(
                person("Mat", "Brazil", "brown", "College"),
                [
                    AquaTree.leaf(person("Ana", "Brazil", "green", "HighSchool")),
                    AquaTree.build(
                        person("Ed", "USA", "blue", "College"),
                        [AquaTree.leaf(person("Bill", "USA", "blue", "None"))],
                    ),
                ],
            ),
            AquaTree.build(
                person("Tom", "Brazil", "hazel", "PhD"),
                [
                    AquaTree.leaf(person("Rita", "Brazil", "brown", "College")),
                    AquaTree.leaf(person("Carl", "Chile", "green", "HighSchool")),
                ],
            ),
        ],
    )


def random_family_tree(
    size: int,
    seed: "int | random.Random" = 0,
    planted_matches: int = 1,
    max_children: int = 4,
) -> AquaTree:
    """A random family tree with exactly ``planted_matches`` sites where
    a Brazilian parent has at least one American child.

    The bulk of the tree draws citizenships from the non-Brazil,
    non-USA pool so that no accidental match sites appear; the knob
    therefore controls the result cardinality of the Figure 4 split
    exactly, and anchor selectivity ≈ ``planted_matches / size``.
    """
    if size < 2 + 2 * planted_matches:
        raise ValueError("tree too small for the requested planted matches")
    rng = rng_from(seed)
    neutral = [c for c in CITIZENSHIPS if c not in ("Brazil", "USA")]

    def fresh_person(index: int, citizen: str) -> Record:
        return person(
            f"P{index}",
            citizen,
            rng.choice(EYE_COLORS),
            rng.choice(EDUCATIONS),
        )

    root = TreeNode(Cell(fresh_person(0, rng.choice(neutral))))
    open_nodes = [root]
    nodes = [root]
    for index in range(1, size - 2 * planted_matches):
        parent = rng.choice(open_nodes)
        child = TreeNode(Cell(fresh_person(index, rng.choice(neutral))))
        parent.children.append(child)
        if len(parent.children) >= max_children:
            open_nodes.remove(parent)
        open_nodes.append(child)
        nodes.append(child)

    # Plant the Brazilian-parent/American-child sites under distinct,
    # randomly chosen parents.
    hosts = rng.sample(nodes, planted_matches)
    for plant_index, host in enumerate(hosts):
        brazilian = TreeNode(
            Cell(person(f"B{plant_index}", "Brazil", rng.choice(EYE_COLORS)))
        )
        american = TreeNode(
            Cell(person(f"U{plant_index}", "USA", rng.choice(EYE_COLORS)))
        )
        brazilian.children.append(american)
        host.children.append(brazilian)
    return AquaTree(root)


def citizens(tree: AquaTree, citizen: str) -> list[Record]:
    """All persons in ``tree`` with the given citizenship (helper)."""
    return [v for v in tree.values() if getattr(v, "citizen", None) == citizen]
