"""Parse-tree workloads (paper §5).

Two kinds of parse trees back the §5 examples:

* **algebra parse trees** — each node is an operator
  (``Parse-tree-node`` supporting ``OpName``); the optimization
  ``select(R, and(p1,p2)) ≡ select(select(R,p1),p2)`` is performed
  *with the AQUA tree algebra itself* via ``split`` plus a rebuild
  function (:func:`repro.examples`-level code lives in
  ``examples/parse_tree_optimizer.py``; the data and the rebuild
  function live here so tests and benchmarks share them);
* **C program parse trees** — variable-arity ``printf`` calls that may
  reference a ``LargeData`` structure, for the query
  ``sub_select(printf(?* LargeData ?* LargeData ?*))(T)``.
"""

from __future__ import annotations

import random

from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.identity import Cell, Record
from ..predicates.alphabet import AlphabetPredicate, Comparison
from .generators import rng_from


def op(name: str) -> Record:
    """A ``Parse-tree-node``: supports ``OpName`` (stored attribute)."""
    return Record(OpName=name)


def by_op_name(symbol: str) -> AlphabetPredicate:
    """Resolver for §5's shorthand: "select" ≡ λ(pn) pn.OpName="select"."""
    return Comparison("OpName", "=", symbol)


def figure5_parse_tree() -> AquaTree:
    """A parse tree containing the §5 redex ``select(R, and(p1, p2))``.

    Figure 5's exact drawing is an image; this reconstruction embeds the
    redex under a join, which is all the worked rewrite requires.
    """
    redex = AquaTree.build(
        op("select"),
        [
            AquaTree.leaf(op("R")),
            AquaTree.build(op("and"), [AquaTree.leaf(op("p1")), AquaTree.leaf(op("p2"))]),
        ],
    )
    return AquaTree.build(
        op("join"),
        [redex, AquaTree.build(op("scan"), [AquaTree.leaf(op("S"))])],
    )


def random_algebra_tree(
    size: int,
    seed: "int | random.Random" = 0,
    planted_redexes: int = 1,
) -> AquaTree:
    """A random operator tree with ``planted_redexes`` §5 redex sites.

    Interior nodes are joins/unions (binary) and projects (unary);
    leaves are relation scans.  Each planted redex replaces a random
    leaf with ``select(R, and(p, p))``, so the rewrite's result
    cardinality is exactly the plant count.
    """
    rng = rng_from(seed)

    def grow(budget: int) -> AquaTree:
        if budget <= 1:
            return AquaTree.leaf(op(f"R{rng.randrange(100)}"))
        shape = rng.random()
        if shape < 0.55 and budget >= 3:
            left_budget = rng.randint(1, budget - 2)
            return AquaTree.build(
                op(rng.choice(["join", "union"])),
                [grow(left_budget), grow(budget - 1 - left_budget)],
            )
        return AquaTree.build(op("project"), [grow(budget - 1)])

    tree = grow(max(1, size - 5 * planted_redexes))

    def leaves(t: AquaTree) -> list[TreeNode]:
        return [n for n in t.element_nodes() if not n.children]

    for index in range(planted_redexes):
        target = rng.choice(leaves(tree))
        # Rebuild the leaf in place as the redex root.
        target.item = Cell(op("select"))
        target.children = [
            TreeNode(Cell(op(f"Rx{index}"))),
            TreeNode(
                Cell(op("and")),
                [TreeNode(Cell(op("p1"))), TreeNode(Cell(op("p2")))],
            ),
        ]
    return tree


def section5_rebuild(x: AquaTree, y: AquaTree, z: AquaList) -> AquaTree:
    """The §5 update function ``f(x, y, z)``.

    With the pattern ``select(!? and)``, the match piece is
    ``y ≗ A(B C(D E))`` where ``A`` = the select node, ``C`` = the and
    node, ``B`` = the point ``α1`` left by the pruned relation ``R``,
    and ``D``/``E`` = the points ``α2``/``α3`` left where ``and``'s
    predicate subtrees were pruned as descendants of the match;
    ``z = [R, p1, p2]``.  The rebuilt redex is ``A(A(B D) E)`` =
    ``select(select(α1 α2) α3)``; plugging ``z`` back into the points
    and the redex into the ancestors at ``α`` yields the rewritten
    parse tree for ``select(select(R, p1), p2)``.

    Expected usage: ``split("select(!? and)", section5_rebuild)(T)``
    with the :func:`by_op_name` resolver.
    """
    assert y.root is not None
    select_node = y.root
    point_b, point_d, point_e = y.concat_points()  # α1, α2, α3 in preorder

    rebuilt = AquaTree.build(
        select_node.value,
        [
            AquaTree.build(
                select_node.value,
                [AquaTree.concat_leaf(point_b), AquaTree.concat_leaf(point_d)],
            ),
            AquaTree.concat_leaf(point_e),
        ],
    )
    for point, subtree in zip((point_b, point_d, point_e), z.values()):
        rebuilt = rebuilt.concat(point, subtree)
    from ..core.concat import ALPHA

    return x.concat(ALPHA, rebuilt)


# ---------------------------------------------------------------------------
# C program parse trees (variable arity printf)
# ---------------------------------------------------------------------------


def c_token(kind: str) -> Record:
    return Record(OpName=kind)


def random_c_program(
    size: int,
    seed: "int | random.Random" = 0,
    printf_count: int = 10,
    double_ref_count: int = 2,
    max_arity: int = 8,
) -> AquaTree:
    """A synthetic C parse tree with variable-arity ``printf`` calls.

    ``printf_count`` calls are planted; ``double_ref_count`` of them
    reference ``LargeData`` at least twice (the §5 query's targets),
    the rest at most once.
    """
    rng = rng_from(seed)

    def grow(budget: int) -> AquaTree:
        if budget <= 1:
            return AquaTree.leaf(c_token(rng.choice(["var", "const", "call"])))
        arity = rng.randint(1, 3)
        children = []
        remaining = budget - 1
        for slot in range(arity):
            share = max(1, remaining // (arity - slot))
            children.append(grow(share))
            remaining -= share
            if remaining <= 0:
                break
        return AquaTree.build(c_token(rng.choice(["block", "if", "while", "expr"])), children)

    tree = grow(max(1, size))
    nodes = list(tree.element_nodes())

    def make_printf(double_ref: bool) -> TreeNode:
        arity = rng.randint(2, max_arity)
        args = [TreeNode(Cell(c_token("arg"))) for _ in range(arity)]
        ref_count = 2 if double_ref else rng.randint(0, 1)
        slots = rng.sample(range(arity), min(ref_count, arity))
        for slot in slots:
            args[slot] = TreeNode(Cell(c_token("LargeData")))
        return TreeNode(Cell(c_token("printf")), args)

    for index in range(printf_count):
        host = rng.choice(nodes)
        host.children.append(make_printf(index < double_ref_count))
    return tree
