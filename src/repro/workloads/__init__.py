"""Synthetic workload generators for every example domain in the paper."""

from .documents import by_kind, component, random_document
from .family import (
    BRAZIL,
    USA,
    by_citizen_or_name,
    by_name,
    citizens,
    figure3_family_tree,
    person,
    random_family_tree,
)
from .generators import (
    plant_chain,
    plant_run,
    random_labeled_tree,
    random_list,
    random_tree,
    rng_from,
)
from .music import by_pitch, note, pitches_of, random_song, song_with_melody
from .parsetrees import (
    by_op_name,
    figure5_parse_tree,
    op,
    random_algebra_tree,
    random_c_program,
    section5_rebuild,
)
from .rna import by_element, count_elements, element, random_rna_structure

__all__ = [
    "BRAZIL",
    "USA",
    "by_citizen_or_name",
    "by_element",
    "by_kind",
    "by_name",
    "by_op_name",
    "by_pitch",
    "citizens",
    "component",
    "count_elements",
    "element",
    "figure3_family_tree",
    "figure5_parse_tree",
    "note",
    "op",
    "person",
    "pitches_of",
    "plant_chain",
    "plant_run",
    "random_algebra_tree",
    "random_c_program",
    "random_document",
    "random_family_tree",
    "random_labeled_tree",
    "random_list",
    "random_rna_structure",
    "random_song",
    "random_tree",
    "rng_from",
    "section5_rebuild",
    "song_with_melody",
]
