"""The music-database workload (paper §6).

"The database consists of a large number of songs, where each song is
represented as a list ... each note has a few properties like pitch
(e.g., A, B, C, etc.) and duration."  The paper's queries:

* ``sub_select([A??F])(L)`` — find the melody;
* ``all_anc([A??F], λ(x,y)⟨x,y⟩)(L)`` — the melody plus the notes
  preceding it.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.aqua_list import AquaList
from ..core.identity import Record
from ..predicates.alphabet import AlphabetPredicate, Comparison
from .generators import rng_from

PITCHES = ("A", "B", "C", "D", "E", "F", "G")
DURATIONS = (1, 2, 4, 8)


def note(pitch: str, duration: int = 4) -> Record:
    return Record(pitch=pitch, duration=duration)


def by_pitch(symbol: str) -> AlphabetPredicate:
    """Pattern-symbol resolver: a bare symbol means ``pitch = symbol``."""
    return Comparison("pitch", "=", symbol.upper())


def random_song(
    length: int,
    seed: "int | random.Random" = 0,
    pitch_weights: Sequence[float] | None = None,
) -> AquaList:
    """A random song of ``length`` notes."""
    rng = rng_from(seed)
    weights = list(pitch_weights) if pitch_weights is not None else None
    notes = []
    for _ in range(length):
        if weights is None:
            pitch = rng.choice(PITCHES)
        else:
            pitch = rng.choices(PITCHES, weights=weights, k=1)[0]
        notes.append(note(pitch, rng.choice(DURATIONS)))
    return AquaList.from_values(notes)


def song_with_melody(
    length: int,
    melody: Sequence[str],
    occurrences: int = 1,
    seed: "int | random.Random" = 0,
    background: Sequence[str] = ("B", "C", "D", "E", "G"),
) -> AquaList:
    """A song whose background avoids the melody's pitches, with the
    melody planted exactly ``occurrences`` times at random positions.

    Because the background pool excludes the melody's first and last
    pitches, the planted occurrences are the only matches — benchmarks
    can sweep selectivity precisely.
    """
    rng = rng_from(seed)
    pool = [p for p in background if p not in (melody[0], melody[-1])]
    values = [note(rng.choice(pool), rng.choice(DURATIONS)) for _ in range(length)]
    slots = sorted(rng.sample(range(max(1, length)), min(occurrences, length)))
    for offset, slot in enumerate(slots):
        insert_at = slot + offset * len(melody)
        values[insert_at:insert_at] = [note(p, rng.choice(DURATIONS)) for p in melody]
    return AquaList.from_values(values)


def pitches_of(song: AquaList) -> str:
    """The song's pitch string — a compact display/debug helper."""
    return "".join(value.pitch for value in song.values())
