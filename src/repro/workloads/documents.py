"""Structured-document workload (paper §1).

"A document can be viewed as a tree of document components" — the
multimedia motivation for tree queries.  Documents here follow a
conventional schema: ``document → section* → (paragraph | figure |
table | section)*``, every component carrying ``kind``, ``title``/
``topic`` and ``words`` attributes.  The document-search example and
benchmarks query shapes like "a section about X that contains a figure"
with ``sub_select`` and ``split``.
"""

from __future__ import annotations

import random
from typing import Sequence

from ..core.aqua_tree import AquaTree
from ..core.identity import Record
from ..predicates.alphabet import AlphabetPredicate, Comparison
from .generators import rng_from

TOPICS = (
    "databases",
    "algebra",
    "patterns",
    "multimedia",
    "optimization",
    "storage",
    "indexing",
    "history",
)


def component(kind: str, topic: str, words: int = 0, title: str = "") -> Record:
    return Record(kind=kind, topic=topic, words=words, title=title or topic)


def by_kind(symbol: str) -> AlphabetPredicate:
    """Resolver: bare symbols in document patterns mean ``kind = symbol``."""
    return Comparison("kind", "=", symbol)


def random_document(
    sections: int = 8,
    seed: "int | random.Random" = 0,
    depth: int = 2,
    children_per_section: tuple[int, int] = (2, 6),
    topics: Sequence[str] = TOPICS,
) -> AquaTree:
    """A random document tree.

    ``depth`` controls section nesting; leaves are paragraphs, figures
    and tables with word counts and topics.
    """
    rng = rng_from(seed)

    def make_section(level: int, index: int) -> AquaTree:
        topic = rng.choice(list(topics))
        low, high = children_per_section
        count = rng.randint(low, high)
        children = []
        for child_index in range(count):
            roll = rng.random()
            if roll < 0.25 and level < depth:
                children.append(make_section(level + 1, child_index))
            elif roll < 0.45:
                children.append(
                    AquaTree.leaf(component("figure", rng.choice(list(topics))))
                )
            elif roll < 0.55:
                children.append(
                    AquaTree.leaf(component("table", rng.choice(list(topics))))
                )
            else:
                children.append(
                    AquaTree.leaf(
                        component(
                            "paragraph",
                            rng.choice(list(topics)),
                            words=rng.randint(30, 300),
                        )
                    )
                )
        return AquaTree.build(
            component("section", topic, title=f"Section {level}.{index}"), children
        )

    return AquaTree.build(
        component("document", "root", title="A Document"),
        [make_section(1, i) for i in range(sections)],
    )
