"""Seeded random structure generators shared by the workloads.

Every generator takes an explicit ``seed`` (or an already-constructed
:class:`random.Random`), so tests and benchmarks are reproducible.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Sequence

from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.identity import as_cell


def rng_from(seed: "int | random.Random") -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_tree(
    size: int,
    seed: "int | random.Random" = 0,
    max_arity: int = 4,
    payload: Callable[[random.Random, int], Any] | None = None,
) -> AquaTree:
    """A uniformly grown ordered tree with exactly ``size`` nodes.

    Nodes are attached one at a time under a parent drawn uniformly from
    the nodes that still have arity budget — this yields bushy,
    realistic shapes rather than degenerate chains.  ``payload`` maps
    ``(rng, node_index)`` to the node's payload (default: ``n<i>``).
    """
    if size <= 0:
        return AquaTree.empty()
    rng = rng_from(seed)
    payload = payload or (lambda r, i: f"n{i}")

    root = TreeNode(as_cell(payload(rng, 0)))
    open_nodes = [root]
    for index in range(1, size):
        parent = rng.choice(open_nodes)
        child = TreeNode(as_cell(payload(rng, index)))
        parent.children.append(child)
        if len(parent.children) >= max_arity:
            open_nodes.remove(parent)
        open_nodes.append(child)
    return AquaTree(root)


def random_labeled_tree(
    size: int,
    labels: Sequence[str],
    seed: "int | random.Random" = 0,
    max_arity: int = 4,
    weights: Sequence[float] | None = None,
) -> AquaTree:
    """A random tree whose payloads are drawn from ``labels``.

    ``weights`` skews the draw — the knob benchmarks use to control
    anchor selectivity.
    """
    rng = rng_from(seed)

    def payload(r: random.Random, index: int) -> str:
        del index
        if weights is None:
            return r.choice(list(labels))
        return r.choices(list(labels), weights=list(weights), k=1)[0]

    return random_tree(size, rng, max_arity=max_arity, payload=payload)


def random_list(
    size: int,
    alphabet: Sequence[Any],
    seed: "int | random.Random" = 0,
    weights: Sequence[float] | None = None,
) -> AquaList:
    """A random list over ``alphabet`` (optionally weighted)."""
    rng = rng_from(seed)
    if weights is None:
        values = [rng.choice(list(alphabet)) for _ in range(size)]
    else:
        values = rng.choices(list(alphabet), weights=list(weights), k=size)
    return AquaList.from_values(values)


def plant_chain(
    tree: AquaTree,
    chain: Sequence[Any],
    seed: "int | random.Random" = 0,
) -> AquaTree:
    """Attach a downward chain of payloads under a random node (in place).

    Used to plant a known vertical pattern occurrence in a random tree.
    Returns the same tree for chaining.
    """
    if tree.root is None or not chain:
        return tree
    rng = rng_from(seed)
    nodes = list(tree.element_nodes())
    parent = rng.choice(nodes)
    for payload in chain:
        child = TreeNode(as_cell(payload))
        parent.children.append(child)
        parent = child
    return tree


def plant_run(
    aqua_list: AquaList,
    run: Sequence[Any],
    position: int,
) -> AquaList:
    """Return a new list with ``run`` spliced in at element ``position``."""
    values = aqua_list.values()
    position = max(0, min(position, len(values)))
    return AquaList.from_values(values[:position] + list(run) + values[position:])
