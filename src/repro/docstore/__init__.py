"""The document-store workload: JSON/XML/HTML as ordinary AQUA trees.

The paper positions AQUA's tree algebra as sufficient for "structured
documents"; this package takes it at its word.  Ingestion
(:mod:`~repro.docstore.ingest`) turns document text into plain
:class:`~repro.core.aqua_tree.AquaTree` values, the path frontend
(:mod:`~repro.docstore.path`) compiles an XPath-flavoured syntax into
the existing ``split`` / ``apply`` / ``flatten`` algebra, and
:class:`~repro.docstore.store.Document` wires both into the standard
Session pipeline (plan cache, optimizer, cost-gated index lowering,
both executors).  Nothing downstream of parsing is document-specific.
"""

from .ingest import from_html, from_json, from_xml, to_html, to_json, to_xml
from .model import INDEXED_ATTRIBUTES, DocNode
from .path import compile_path, naive_path, parse_path
from .store import Document, load_document

__all__ = [
    "DocNode",
    "Document",
    "INDEXED_ATTRIBUTES",
    "compile_path",
    "from_html",
    "from_json",
    "from_xml",
    "load_document",
    "naive_path",
    "parse_path",
    "to_html",
    "to_json",
    "to_xml",
]
