"""Ingestion adapters: JSON / XML / HTML text ⇄ document AquaTrees.

Each ``from_*`` parser (stdlib only: :mod:`json`, :mod:`xml.etree`,
:mod:`html.parser`) produces a plain :class:`~repro.core.aqua_tree.AquaTree`
of :class:`~repro.docstore.model.DocNode` payloads under a synthetic
``document`` wrapper root; each ``to_*`` serializer walks such a tree
back to text.

Round-trip fidelity is defined over the **canonical form**: the
serializers are normalizing (attribute quoting, entity escaping, JSON
separators), so ``to_x(from_x(text))`` may differ from hand-written
input — but re-ingesting canonical output reproduces it *bit for bit*::

    canonical = to_xml(from_xml(text))
    assert to_xml(from_xml(canonical)) == canonical

(the property the hypothesis suite drives across executors × engines ×
columnar backends).  Information outside the canonical form — comments,
doctypes, insignificant attribute quoting — is dropped at ingestion;
element order, text (whitespace included), attributes, and JSON member
order are preserved exactly.
"""

from __future__ import annotations

import json
from html import escape as _html_escape
from html.parser import HTMLParser
from typing import Any
from xml.etree import ElementTree
from xml.sax.saxutils import escape as _xml_escape
from xml.sax.saxutils import quoteattr as _xml_quoteattr

from ..core.aqua_tree import AquaTree, TreeNode
from ..errors import QueryError
from .model import DocNode, document_node

__all__ = [
    "from_json",
    "to_json",
    "from_xml",
    "to_xml",
    "from_html",
    "to_html",
    "VOID_ELEMENTS",
]


def _doc_value(node: TreeNode) -> DocNode:
    value = node.value
    if not isinstance(value, DocNode):
        raise QueryError(
            f"expected a document tree of DocNode payloads, found {value!r}"
        )
    return value


def _element_children(node: TreeNode) -> list[TreeNode]:
    return [child for child in node.children if not child.is_concat_point]


def _content_root(tree: AquaTree) -> TreeNode:
    """The single content child under the ``document`` wrapper."""
    if tree.root is None:
        raise QueryError("cannot serialize an empty document tree")
    root_value = _doc_value(tree.root)
    if root_value.kind == "document":
        children = _element_children(tree.root)
        if len(children) != 1:
            raise QueryError(
                f"document wrapper must hold exactly one content root,"
                f" found {len(children)}"
            )
        return children[0]
    return tree.root  # already a content subtree (e.g. a path-query result)


# ---------------------------------------------------------------------------
# JSON
# ---------------------------------------------------------------------------


def from_json(text: str) -> AquaTree:
    """Parse JSON text into a document tree.

    Objects become ``object`` nodes whose children carry the member key
    in ``tag`` (member order preserved); arrays become ``array`` nodes;
    scalars become ``value`` nodes.  Path queries address members by
    key: ``//price`` finds every member named ``price`` at any depth.
    """
    return AquaTree.build(document_node(), [_json_subtree(json.loads(text), None)])


def _json_subtree(value: Any, key: str | None) -> AquaTree:
    if isinstance(value, dict):
        return AquaTree.build(
            DocNode("object", tag=key),
            [_json_subtree(member, name) for name, member in value.items()],
        )
    if isinstance(value, list):
        return AquaTree.build(
            DocNode("array", tag=key),
            [_json_subtree(item, None) for item in value],
        )
    return AquaTree.leaf(DocNode("value", tag=key, value=value))


def to_json(tree: AquaTree) -> str:
    """Serialize a document tree (or subtree) back to canonical JSON."""
    return json.dumps(
        _json_value(_content_root(tree)), ensure_ascii=False, separators=(",", ":")
    )


def _json_value(node: TreeNode) -> Any:
    payload = _doc_value(node)
    if payload.kind == "object":
        return {
            _doc_value(child).tag: _json_value(child)
            for child in _element_children(node)
        }
    if payload.kind == "array":
        return [_json_value(child) for child in _element_children(node)]
    if payload.kind == "value":
        return payload.value
    raise QueryError(f"cannot serialize {payload.kind!r} node as JSON")


# ---------------------------------------------------------------------------
# XML
# ---------------------------------------------------------------------------


def from_xml(text: str) -> AquaTree:
    """Parse XML text into a document tree.

    Elements keep tag, attributes (document order), and *all* character
    data — whitespace-only text included, so layout survives the round
    trip.  Comments, processing instructions, and the XML declaration
    are outside the canonical form and dropped.
    """
    return AquaTree.build(
        document_node(), [_xml_subtree(ElementTree.fromstring(text))]
    )


def _xml_subtree(element: ElementTree.Element) -> AquaTree:
    children: list[AquaTree] = []
    if element.text:
        children.append(AquaTree.leaf(DocNode("text", text=element.text)))
    for child in element:
        children.append(_xml_subtree(child))
        if child.tail:
            children.append(AquaTree.leaf(DocNode("text", text=child.tail)))
    return AquaTree.build(
        DocNode("element", tag=element.tag, attrs=dict(element.attrib)), children
    )


def to_xml(tree: AquaTree) -> str:
    """Serialize a document tree (or subtree) back to canonical XML."""
    parts: list[str] = []
    _write_xml(_content_root(tree), parts)
    return "".join(parts)


def _write_xml(node: TreeNode, parts: list[str]) -> None:
    payload = _doc_value(node)
    if payload.kind == "text":
        parts.append(_xml_escape(payload.text or ""))
        return
    if payload.kind != "element":
        raise QueryError(f"cannot serialize {payload.kind!r} node as XML")
    attrs = "".join(
        f" {name}={_xml_quoteattr(value)}" for name, value in payload.attrs.items()
    )
    inner: list[str] = []
    for child in _element_children(node):
        _write_xml(child, inner)
    content = "".join(inner)
    # The empty-tag form keys off serialized *content*, not child count:
    # children that render to nothing (an empty text node) would
    # otherwise break serialize→parse→serialize idempotence.
    if not content:
        parts.append(f"<{payload.tag}{attrs} />")
        return
    parts.append(f"<{payload.tag}{attrs}>")
    parts.append(content)
    parts.append(f"</{payload.tag}>")


# ---------------------------------------------------------------------------
# HTML
# ---------------------------------------------------------------------------

#: Elements the HTML standard closes implicitly (never get end tags).
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "source", "track", "wbr",
    }
)

#: Raw-text elements: the parser reads their content verbatim (no
#: character references), so the serializer must not escape it either.
_RAWTEXT_ELEMENTS = frozenset({"script", "style"})


class _HtmlBuilder(HTMLParser):
    """Builds (payload, children) frames; lenient about stray end tags."""

    def __init__(self) -> None:
        super().__init__(convert_charrefs=True)
        self._stack: list[tuple[DocNode, list[AquaTree]]] = [
            (document_node(), [])
        ]

    def handle_starttag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        node = DocNode(
            "element",
            tag=tag,
            attrs={name: value for name, value in attrs},
        )
        if tag in VOID_ELEMENTS:
            self._stack[-1][1].append(AquaTree.leaf(node))
        else:
            self._stack.append((node, []))

    def handle_startendtag(self, tag: str, attrs: list[tuple[str, str | None]]) -> None:
        # ``<tag/>`` XML-style self-closing — canonicalized as void-like.
        self._stack[-1][1].append(
            AquaTree.leaf(
                DocNode("element", tag=tag, attrs={n: v for n, v in attrs})
            )
        )

    def handle_endtag(self, tag: str) -> None:
        if tag in VOID_ELEMENTS:
            return  # e.g. a spurious ``</br>``
        open_tags = [payload.tag for payload, _ in self._stack[1:]]
        if tag not in open_tags:
            return  # stray end tag: ignore (browser-style leniency)
        while True:
            payload, children = self._stack.pop()
            self._stack[-1][1].append(AquaTree.build(payload, children))
            if payload.tag == tag:
                break

    def handle_data(self, data: str) -> None:
        if data:
            self._stack[-1][1].append(AquaTree.leaf(DocNode("text", text=data)))

    def finish(self) -> AquaTree:
        while len(self._stack) > 1:  # unclosed elements at EOF
            payload, children = self._stack.pop()
            self._stack[-1][1].append(AquaTree.build(payload, children))
        wrapper, children = self._stack[0]
        return AquaTree.build(wrapper, children)


def from_html(text: str) -> AquaTree:
    """Parse HTML text into a document tree.

    Browser-lenient: void elements (``<br>``, ``<img>``, ...) never
    nest, stray end tags are ignored, unclosed elements close at EOF,
    and character references decode to text.  Comments and the doctype
    are outside the canonical form and dropped.  Unlike XML, the wrapper
    may hold several top-level nodes (text around ``<html>`` etc.).
    """
    builder = _HtmlBuilder()
    builder.feed(text)
    builder.close()
    return builder.finish()


def to_html(tree: AquaTree) -> str:
    """Serialize a document tree (or subtree) back to canonical HTML."""
    parts: list[str] = []
    if tree.root is None:
        return ""
    root_value = _doc_value(tree.root)
    roots = (
        _element_children(tree.root)
        if root_value.kind == "document"
        else [tree.root]
    )
    for node in roots:
        _write_html(node, parts)
    return "".join(parts)


def _write_html(node: TreeNode, parts: list[str], raw: bool = False) -> None:
    payload = _doc_value(node)
    if payload.kind == "text":
        text = payload.text or ""
        parts.append(text if raw else _html_escape(text, quote=False))
        return
    if payload.kind != "element":
        raise QueryError(f"cannot serialize {payload.kind!r} node as HTML")
    attrs = "".join(
        f" {name}" if value is None else f' {name}="{_html_escape(value, quote=True)}"'
        for name, value in payload.attrs.items()
    )
    parts.append(f"<{payload.tag}{attrs}>")
    if payload.tag in VOID_ELEMENTS:
        return
    for child in _element_children(node):
        _write_html(child, parts, raw=payload.tag in _RAWTEXT_ELEMENTS)
    parts.append(f"</{payload.tag}>")
