"""The document data model: DocNode payloads inside ordinary AquaTrees.

AQUA's pitch (§1, §7) is that *one* bulk-type algebra serves every
ordered workload — the paper's examples are parse trees and music, but
"structured documents" are called out as the same shape.  The docstore
takes that literally: a JSON / XML / HTML document ingests into a plain
:class:`~repro.core.aqua_tree.AquaTree` whose payloads are
:class:`DocNode` objects, and every existing operator — ``sub_select``,
``split``, ``select``, the optimizer, the node indexes, the columnar
kernel, the parallel exchange — applies unchanged.

A :class:`DocNode` is a :class:`~repro.core.identity.DatabaseObject`
(identity equality, like every AQUA payload), with a small fixed schema:

``kind``
    ``"document"`` (the synthetic wrapper root every ingested document
    gets), ``"element"`` (XML/HTML element), ``"text"`` (character
    data), ``"object"`` / ``"array"`` / ``"value"`` (the JSON shapes).
``tag``
    The element tag name — or, for JSON, the member key this node was
    reached by (``None`` for array items and the top-level value).
``text``
    Character data for ``text`` nodes (``None`` elsewhere).
``value``
    The Python scalar for JSON ``value`` nodes (``None`` elsewhere).
``attrs``
    The attribute mapping for elements (empty elsewhere).

Document *attributes* are reachable two ways: ``node.attrs["lang"]``
explicitly, and ``node.lang`` via :meth:`DocNode.__getattr__` — the
fallback makes ``Comparison("lang", "=", "en")`` (and therefore path
predicates like ``[@lang='en']``) work against the same predicate
machinery every other workload uses.  The fixed schema fields shadow
same-named attributes in that fallback; use ``attrs[...]`` for the rare
document that marks up a ``tag`` or ``kind`` attribute.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

from ..core.aqua_tree import AquaTree, TreeNode, subtree_at
from ..core.identity import DatabaseObject

#: The attribute names the tree index is built over by default —
#: ``tag`` anchors path steps, ``kind`` serves wildcard / text() tests.
INDEXED_ATTRIBUTES = ("tag", "kind")


class DocNode(DatabaseObject):
    """One document node: a fixed structural schema plus open attrs."""

    __slots__ = ("kind", "tag", "text", "value", "attrs")

    def __init__(
        self,
        kind: str,
        *,
        tag: str | None = None,
        text: str | None = None,
        value: Any = None,
        attrs: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__()
        self.kind = kind
        self.tag = tag
        self.text = text
        self.value = value
        self.attrs = dict(attrs) if attrs else {}

    def __getattr__(self, name: str) -> Any:
        # Only consulted when normal lookup fails (i.e. not a slot), so
        # document attributes surface as plain Python attributes for the
        # alphabet-predicate machinery.
        try:
            attrs = object.__getattribute__(self, "attrs")
        except AttributeError:  # during construction
            raise AttributeError(name) from None
        if name in attrs:
            return attrs[name]
        raise AttributeError(name)

    def stored_attributes(self) -> dict[str, Any]:
        stored: dict[str, Any] = dict(self.attrs)
        stored.update(
            kind=self.kind, tag=self.tag, text=self.text, value=self.value
        )
        return stored

    def __repr__(self) -> str:
        parts = [self.kind]
        if self.tag is not None:
            parts.append(f"tag={self.tag!r}")
        if self.text is not None:
            parts.append(f"text={self.text!r}")
        if self.value is not None:
            parts.append(f"value={self.value!r}")
        if self.attrs:
            parts.append(f"attrs={self.attrs!r}")
        return f"DocNode({', '.join(parts)})"


def document_node() -> DocNode:
    """The synthetic wrapper root every ingested document gets.

    Wrapping matters for the path compiler: with a dedicated
    ``document`` root above the content, the first ``//tag`` step of a
    path is a *plain pattern match over the whole tree* (no special
    root case), and a leading child-axis step (``/html``) is "the
    wrapper's children" — both expressible with the stock operators.
    """
    return DocNode("document")


def element_subtrees(tree: AquaTree) -> Iterator[tuple[TreeNode, AquaTree]]:
    """Every (node, subtree-view) pair, document wrapper included."""
    for node in tree.nodes():
        if node.is_concat_point:
            continue
        yield node, subtree_at(node)


def doc_label(payload: Any) -> str:
    """A short human label for shell/EXPLAIN rendering."""
    if isinstance(payload, DocNode):
        if payload.kind == "element":
            return f"<{payload.tag}>"
        if payload.kind == "text":
            text = payload.text or ""
            return f"{text[:12]!r}" if len(text) <= 12 else f"{text[:12]!r}…"
        if payload.kind == "value":
            return repr(payload.value)
        return payload.tag or payload.kind
    return str(payload)
