"""Path queries over documents, compiled to the stock AQUA algebra.

The frontend accepts a deliberately small XPath-flavoured grammar::

    path  := step+
    step  := ('//' | '/') test pred*
    test  := NAME | '*' | 'text()'
    pred  := '[@' NAME ('=' QUOTED)? ']'

``//`` is the descendant axis, ``/`` the child axis; ``*`` matches any
element, ``text()`` matches character data, and ``[@a='v']`` /
``[@a]`` test document attributes.  ``//article[@lang='en']//p`` reads
exactly as it would in XPath.

There is **no new executor** behind this syntax.  ``compile_path``
translates a path into the existing logical algebra:

* the leading ``//tag[preds]`` step becomes ``split(tp, reattach)`` with
  ``tp`` an ordinary one-atom :class:`~repro.patterns.tree_ast.TreePattern`
  whose predicate is a plain :class:`~repro.predicates.alphabet.Comparison`
  conjunction — so the optimizer sees an inspectable pattern and the
  lowering's cost gate may serve it from the document's node index
  (``index_anchor_split``), exactly as it does for any other ``split``;
* ``reattach`` is the paper's §4 reassembly ``y ∘α1..αn z`` — the match
  with its pruned descendants put back, i.e. the full subtree rooted at
  each match;
* every later step is ``flatten(apply(step_fn))`` over those subtrees —
  set algebra the executors (eager *and* streaming), the budget guard,
  and the parallel exchange already understand.

A leading child-axis step anchors at the synthetic ``document`` wrapper
root with a root-anchored (``⊤``) pattern instead, then proceeds with
step functions — again nothing but ``split``/``apply``/``flatten``.

Step functions are :class:`PathStepFn` instances that declare a
``plan_fingerprint``, so two compilations of the same path text produce
byte-identical plan fingerprints and warm path queries hit the plan
cache like any prepared statement.

``naive_path`` is the baseline the CLAIM-DOCSTORE benchmark measures
against: a straightforward recursive DOM walk with none of the algebra,
no indexes, and no pruning.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree, TreeNode, subtree_at
from ..errors import QueryError
from ..patterns.tree_ast import TreeAtom, TreePattern
from ..predicates.alphabet import AlphabetPredicate, And, Comparison
from ..query import expr as E

__all__ = [
    "PathStep",
    "PathStepFn",
    "HasAttribute",
    "parse_path",
    "compile_path",
    "reattach_subtree",
    "naive_path",
]


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

_STEP_RE = re.compile(
    r"""
    (?P<axis>//|/)
    (?P<test>text\(\) | [A-Za-z_][\w.\-:]* | \*)
    (?P<preds>(?:\[[^\]]*\])*)
    """,
    re.VERBOSE,
)

_PRED_RE = re.compile(
    r"""
    \[\s*@(?P<name>[A-Za-z_][\w.\-:]*)\s*
    (?: = \s* (?P<quote>['"]) (?P<value>[^'"]*) (?P=quote) \s* )?
    \]
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class PathStep:
    """One parsed step: axis, node test, and attribute predicates."""

    axis: str  # "child" | "descendant"
    test: str  # "tag" | "any" | "text"
    name: str | None  # the tag name for test == "tag"
    preds: tuple[tuple[str, str | None], ...]  # (attribute, value-or-None)

    def text(self) -> str:
        """Re-render the step in path syntax."""
        head = "//" if self.axis == "descendant" else "/"
        if self.test == "any":
            head += "*"
        elif self.test == "text":
            head += "text()"
        else:
            head += self.name or ""
        for attribute, value in self.preds:
            if value is None:
                head += f"[@{attribute}]"
            else:
                head += f"[@{attribute}='{value}']"
        return head

    def key(self) -> tuple:
        """A stable, hashable identity for plan fingerprinting."""
        return (self.axis, self.test, self.name, self.preds)


def parse_path(text: str) -> list[PathStep]:
    """Parse path text into steps; raise :class:`QueryError` on junk."""
    steps: list[PathStep] = []
    index = 0
    stripped = text.strip()
    while index < len(stripped):
        match = _STEP_RE.match(stripped, index)
        if match is None:
            raise QueryError(
                f"cannot parse path step at {stripped[index:]!r} in {text!r}"
            )
        axis = "descendant" if match.group("axis") == "//" else "child"
        raw_test = match.group("test")
        if raw_test == "*":
            test, name = "any", None
        elif raw_test == "text()":
            test, name = "text", None
        else:
            test, name = "tag", raw_test
        preds: list[tuple[str, str | None]] = []
        preds_text = match.group("preds")
        consumed = 0
        for pred_match in _PRED_RE.finditer(preds_text):
            if pred_match.start() != consumed:
                break
            preds.append((pred_match.group("name"), pred_match.group("value")))
            consumed = pred_match.end()
        if consumed != len(preds_text):
            raise QueryError(
                f"cannot parse path predicate at {preds_text[consumed:]!r}"
                f" in {text!r}"
            )
        steps.append(PathStep(axis, test, name, tuple(preds)))
        index = match.end()
    if not steps:
        raise QueryError(f"empty path query {text!r}")
    if steps[0].test == "text" and len(steps) > 1:
        raise QueryError("text() must be the last step of a path")
    return steps


# ---------------------------------------------------------------------------
# Predicates
# ---------------------------------------------------------------------------


class HasAttribute(AlphabetPredicate):
    """``[@a]`` — the document attribute is present, any value.

    Attribute-based (not opaque), so an enclosing AND still exposes its
    indexable siblings; existence itself offers no ``(attr, op, const)``
    term, so it is never index-served.
    """

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def __call__(self, obj: Any) -> bool:
        attrs = getattr(obj, "attrs", None)
        if isinstance(attrs, dict):
            return self.attribute in attrs
        return False

    def attributes(self) -> set[str]:
        return {self.attribute}

    def describe(self) -> str:
        return f"has x.{self.attribute}"


def step_predicate(step: PathStep) -> AlphabetPredicate:
    """The alphabet-predicate a step's node test + predicates denote."""
    terms: list[AlphabetPredicate] = []
    if step.test == "tag":
        terms.append(Comparison("tag", "=", step.name))
    elif step.test == "any":
        terms.append(Comparison("kind", "=", "element"))
    else:  # text()
        terms.append(Comparison("kind", "=", "text"))
    for attribute, value in step.preds:
        if value is None:
            terms.append(HasAttribute(attribute))
        else:
            terms.append(Comparison(attribute, "=", value))
    if len(terms) == 1:
        return terms[0]
    return And(*terms)


# ---------------------------------------------------------------------------
# Compilation to the algebra
# ---------------------------------------------------------------------------


def reattach_subtree(
    context: AquaTree | None, match: AquaTree, pruned: AquaList
) -> AquaTree:
    """§4 reassembly ``y ∘α1..αn z``: the full subtree at the match root.

    ``split`` hands back the match with its descendants pruned into
    ``z``; concatenating them back at their points recovers the complete
    subtree — the "return the matching element" shape every path step
    needs.
    """
    return match.concat_many(list(zip(match.concat_points(), pruned.values())))


# The context x is never read, so both executors skip its per-match
# full-tree rebuild; and because the reassembly is the §4 *identity*
# (the full subtree at the match root, which the source already holds),
# both executors serve it by structure sharing without the prune/rebuild
# machinery at all (see algebra.tree_ops.invoke_split_function).
reattach_subtree.needs_context = False  # type: ignore[attr-defined]
reattach_subtree.returns_match_subtree = True  # type: ignore[attr-defined]


class PathStepFn:
    """A non-leading path step as a set-apply function.

    Maps one subtree to the :class:`AquaSet` of subtrees its step
    selects (children for ``/``, strict descendants for ``//``).
    Declares ``plan_fingerprint`` so plans built from the same path text
    fingerprint identically and hit the plan cache warm.
    """

    def __init__(self, step: PathStep) -> None:
        self.step = step
        self.predicate = step_predicate(step)
        self.plan_fingerprint = ("docstore-step", step.key())
        self.__name__ = f"path:{step.text()}"

    def __call__(self, subtree: Any) -> AquaSet:
        if not isinstance(subtree, AquaTree):
            raise QueryError(
                f"path step {self.step.text()!r} expects document subtrees,"
                f" found {type(subtree).__name__}"
            )
        results = []
        if subtree.root is not None:
            for node in _step_candidates(subtree.root, self.step.axis):
                if self.predicate(node.value):
                    results.append(subtree_at(node))
        return AquaSet(results)

    def __repr__(self) -> str:
        return f"PathStepFn<{self.step.text()}>"


def _step_candidates(root: TreeNode, axis: str) -> Iterator[TreeNode]:
    """Child or strict-descendant element nodes of ``root``, in preorder."""
    stack = [child for child in reversed(root.children)]
    while stack:
        node = stack.pop()
        if not node.is_concat_point:
            yield node
        if axis == "descendant":
            stack.extend(reversed(node.children))


#: Root-anchored pattern matching the synthetic ``document`` wrapper —
#: the whole-document singleton a leading child-axis step starts from.
_DOCUMENT_PATTERN = TreePattern(
    TreeAtom(Comparison("kind", "=", "document")), root_anchor=True
)


def compile_path(input_expr: E.Expr, text: str) -> E.Expr:
    """Compile path text over ``input_expr`` (a tree) to a logical plan.

    The result is ordinary algebra: a ``split`` head (pattern-driven,
    optimizer-visible, index-servable) followed by
    ``flatten(apply(...))`` stages — no operator the executors don't
    already know.
    """
    steps = parse_path(text)
    first = steps[0]
    if first.axis == "descendant":
        pattern = TreePattern(TreeAtom(step_predicate(first)))
        expr: E.Expr = E.Split(input_expr, pattern=pattern, function=reattach_subtree)
        rest = steps[1:]
    else:
        # A leading child step navigates from the document wrapper: match
        # it with a ⊤-anchored pattern (a singleton set holding the whole
        # document), then run the step as an ordinary step function.
        expr = E.Split(
            input_expr, pattern=_DOCUMENT_PATTERN, function=reattach_subtree
        )
        rest = steps
    for step in rest:
        expr = E.SetFlatten(E.SetApply(expr, function=PathStepFn(step)))
    return expr


# ---------------------------------------------------------------------------
# The benchmark baseline
# ---------------------------------------------------------------------------


def naive_path(tree: AquaTree, text: str) -> list[AquaTree]:
    """A plain recursive DOM walk: no algebra, no indexes, no pruning.

    The CLAIM-DOCSTORE baseline.  Semantics match ``compile_path`` —
    results are the subtrees at the selected nodes, deduplicated.
    """
    steps = parse_path(text)
    if tree.root is None:
        return []
    frontier = [tree.root]
    for step in steps:
        predicate = step_predicate(step)
        selected: list[TreeNode] = []
        seen: set[int] = set()
        for node in frontier:
            for candidate in _step_candidates(node, step.axis):
                if id(candidate) not in seen and predicate(candidate.value):
                    seen.add(id(candidate))
                    selected.append(candidate)
        frontier = selected
    return [subtree_at(node) for node in frontier]
