"""A synthetic scraped-document corpus for the CLAIM-DOCSTORE benchmark.

Models a scraped news site the way a crawler would hand it over: one
big HTML page per crawl — boilerplate navigation, a deep content well
of articles (a few carrying ``lang="en"``), comment threads, and a
footer.  The shape matters more than the prose:

* ~10k nodes at the default size, so walks are measurable;
* ``article`` elements are *rare* relative to total nodes and
  ``lang='en'`` articles rarer still — the selectivity regime where an
  index-anchored first step beats a full DOM walk;
* matches sit deep under noise siblings, so pruning pays.

``corpus_tree`` builds the document tree directly (deterministic for a
given seed); ``corpus_html`` serializes it, which is also how the demo
``\\doc`` corpus file is produced.
"""

from __future__ import annotations

import random

from ..core.aqua_tree import AquaTree
from .ingest import to_html
from .model import DocNode, document_node

__all__ = ["corpus_tree", "corpus_html", "corpus_document"]

_WORDS = (
    "stream", "query", "index", "tree", "node", "merge", "scan", "plan",
    "cache", "shard", "split", "match", "probe", "cost", "budget", "page",
)

_LANGS = ("de", "fr", "es", "pt", "it", "nl", "pl", "sv")


def _text(rng: random.Random, words: int) -> AquaTree:
    return AquaTree.leaf(
        DocNode("text", text=" ".join(rng.choice(_WORDS) for _ in range(words)))
    )


def _element(tag: str, children: list[AquaTree], **attrs: str) -> AquaTree:
    return AquaTree.build(DocNode("element", tag=tag, attrs=attrs), children)


def _nav(rng: random.Random, links: int) -> AquaTree:
    items = [
        _element(
            "li",
            [_element("a", [_text(rng, 2)], href=f"/section/{i}")],
        )
        for i in range(links)
    ]
    return _element("nav", [_element("ul", items)])


def _comment_thread(rng: random.Random, depth: int) -> AquaTree:
    children: list[AquaTree] = [_element("p", [_text(rng, rng.randint(4, 10))])]
    if depth > 0 and rng.random() < 0.6:
        children.append(_comment_thread(rng, depth - 1))
    return _element("div", children, **{"class": "comment"})


def _article(rng: random.Random, index: int, paragraphs: int, english: bool) -> AquaTree:
    attrs = {"id": f"a{index}"}
    if english:
        attrs["lang"] = "en"
    elif rng.random() < 0.5:
        attrs["lang"] = rng.choice(_LANGS)
    body: list[AquaTree] = [_element("h1", [_text(rng, 4)])]
    for _ in range(paragraphs):
        inner: list[AquaTree] = [_text(rng, rng.randint(6, 14))]
        if rng.random() < 0.3:
            inner.append(_element("em", [_text(rng, 2)]))
            inner.append(_text(rng, 3))
        body.append(_element("p", inner))
    body.append(_element("section", [_comment_thread(rng, 2) for _ in range(3)]))
    return _element("article", body, **attrs)


def corpus_tree(
    articles: int = 150,
    paragraphs: int = 14,
    english_every: int = 20,
    seed: int = 7,
) -> AquaTree:
    """The scraped-site document tree (≈10k nodes at the defaults).

    ``english_every`` sets the benchmark's selectivity regime: 1 in 20
    articles carries ``lang='en'`` (≈5%), the "find the English articles
    on a mixed-language site" shape where the index-anchored first step
    pays off.
    """
    rng = random.Random(seed)
    sections: list[AquaTree] = []
    for index in range(articles):
        sections.append(
            _article(rng, index, paragraphs, english=index % english_every == 0)
        )
        if rng.random() < 0.25:
            sections.append(_element("aside", [_text(rng, 8)]))
    page = _element(
        "html",
        [
            _element(
                "head",
                [_element("title", [_text(rng, 3)]), _element("meta", [], charset="utf-8")],
            ),
            _element(
                "body",
                [
                    _nav(rng, 24),
                    _element("main", sections, **{"class": "content"}),
                    _element("footer", [_element("p", [_text(rng, 6)])]),
                ],
            ),
        ],
        lang="mul",
    )
    return AquaTree.build(document_node(), [page])


def corpus_html(**kwargs: object) -> str:
    """The corpus serialized as HTML (what a crawler would have saved)."""
    return to_html(corpus_tree(**kwargs))  # type: ignore[arg-type]


def corpus_document(**kwargs: object):
    """The corpus wrapped as a ready-to-query :class:`Document`."""
    from .store import Document

    return Document(corpus_tree(**kwargs), "html", name="site")  # type: ignore[arg-type]
