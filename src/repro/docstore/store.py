"""The Document convenience surface: one object, whole pipeline.

:class:`Document` binds an ingested tree into a
:class:`~repro.storage.database.Database` root, builds the node index
over ``(tag, kind)`` that anchors path queries, and owns a
:class:`~repro.api.Session` so ``doc.path("//a//b")`` goes through the
*same* pipeline as every other query in the system: AQL text → alias
table → plan cache → optimizer → cost-gated lowering → executor.  The
path text is embedded in an AQL query string, so repeated paths are
served from the plan cache's alias table without re-parsing — path
queries inherit exactly the treatment AQL got.

``load_document`` dispatches on file extension for the shell's ``\\doc``
command.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.aqua_tree import AquaTree
from ..errors import QueryError
from .ingest import from_html, from_json, from_xml, to_html, to_json, to_xml
from .model import INDEXED_ATTRIBUTES

__all__ = ["Document", "load_document"]

_PARSERS = {"json": from_json, "xml": from_xml, "html": from_html}
_SERIALIZERS = {"json": to_json, "xml": to_xml, "html": to_html}
_EXTENSIONS = {
    ".json": "json",
    ".xml": "xml",
    ".html": "html",
    ".htm": "html",
}


class Document:
    """An ingested document bound into a queryable database root.

    >>> doc = Document.from_text("<a><b/><b x='1'/></a>", "xml")
    >>> len(doc.path("//b[@x='1']"))
    1
    """

    def __init__(
        self,
        tree: AquaTree,
        format: str,
        *,
        name: str = "doc",
        db: Any = None,
        session: Any = None,
    ) -> None:
        from ..api import Session
        from ..query import PlanCache
        from ..storage import Database

        if format not in _SERIALIZERS:
            raise QueryError(
                f"unknown document format {format!r};"
                f" expected one of {sorted(_SERIALIZERS)}"
            )
        self.tree = tree
        self.format = format
        self.name = name
        self.db = db if db is not None else Database()
        self.db.bind_root(name, tree)
        # The node index over (tag, kind): what lets the lowering serve a
        # path's first step with index_anchor_split instead of a scan.
        self.db.tree_index(tree, list(INDEXED_ATTRIBUTES))
        self.session = (
            session if session is not None else Session(self.db, plan_cache=PlanCache())
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_text(cls, text: str, format: str, **kwargs: Any) -> "Document":
        """Ingest document text (``format`` in json | xml | html)."""
        try:
            parser = _PARSERS[format]
        except KeyError:
            raise QueryError(
                f"unknown document format {format!r};"
                f" expected one of {sorted(_PARSERS)}"
            ) from None
        return cls(parser(text), format, **kwargs)

    # -- querying --------------------------------------------------------------

    def _aql(self, path_text: str) -> str:
        if '"' in path_text:
            raise QueryError("path text cannot contain double quotes")
        return f'root {self.name} | path "{path_text}"'

    def path(
        self,
        path_text: str,
        params: "Mapping[str, Any] | None" = None,
        **knobs: Any,
    ) -> Any:
        """Run a path query; returns the set of matching subtrees.

        Accepts every :meth:`repro.api.Session.query` knob keyword
        (``executor=``, ``engine=``, ``budget=``, ``parallel=``, ...).
        """
        return self.session.query(self._aql(path_text), params, **knobs)

    def explain(self, path_text: str, **knobs: Any) -> str:
        """EXPLAIN (ANALYZE) the plan a path compiles to.

        Renders the session's EXPLAIN plus the lowered physical
        pipeline, so the access path — ``index_anchor_split`` when the
        cost gate serves the first step from the ``(tag, kind)`` node
        index — is visible in one call.
        """
        from ..query.explain import explain_physical

        story = self.session.explain(self._aql(path_text), **knobs)
        prepared = self.session.prepare(self._aql(path_text))
        pipeline = explain_physical(prepared.plan, self.db, indent=1)
        return f"{story}\n\nLowered pipeline:\n{pipeline}"

    # -- serialization ---------------------------------------------------------

    def serialize(self, subtree: AquaTree | None = None) -> str:
        """Render the document — or one query-result subtree — as text."""
        return _SERIALIZERS[self.format](subtree if subtree is not None else self.tree)

    def __repr__(self) -> str:
        return (
            f"Document({self.format}, root={self.name!r},"
            f" nodes={self.tree.size()})"
        )


def load_document(path: str, *, name: str = "doc", db: Any = None) -> Document:
    """Ingest a file by extension (.json / .xml / .html / .htm)."""
    lowered = path.lower()
    for extension, format in _EXTENSIONS.items():
        if lowered.endswith(extension):
            with open(path, "r", encoding="utf-8") as handle:
                return Document.from_text(handle.read(), format, name=name, db=db)
    raise QueryError(
        f"cannot infer document format from {path!r};"
        f" expected one of {sorted(_EXTENSIONS)}"
    )
