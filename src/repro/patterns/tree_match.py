"""Tree-pattern matching (paper §3.3–§3.5, §4).

The matcher enumerates every *instance* of a tree pattern in a data
tree: a connected subgraph whose shape is in the pattern's language once
its concatenation points are closed with NULL (the condition
``y ∘α1 nil ... ∘αn nil ∈ L(tp)`` in the formal definition of ``split``).

Matching works node-by-node with an **environment** that maps
concatenation-point labels to continuation patterns:

* ``tp1 ∘α tp2``     — match ``tp1`` with ``α ↦ tp2``;
* ``tp*α``           — match NULL (consume nothing) or ``tp`` with
  ``α ↦ tp*α``;
* ``tp+α``           — match ``tp`` with ``α ↦ tp*α``;
* an unbound ``α``   — match a literal labeled NULL in the data (§3.5).

A match is recorded as a :class:`Shape`: the kept data nodes plus, in
order, the places where subtrees were pruned — either explicitly by a
``!`` marker or implicitly because a bare pattern leaf matched an
interior node (its children become *descendants of the match*, §4).

Complexity note: enumeration is worst-case exponential, exactly as the
paper's footnote 3 admits for closure-heavy queries; the optimizer's
job (§4, "Why Split?") is to narrow the candidate roots so the
exponential machinery runs on small fragments.

Two engines implement the same enumeration, selected by the
``AQUA_TREE_ENGINE`` environment knob (or per call via ``engine=``):

* ``memo`` (the default) — the packrat engine of
  :mod:`repro.patterns.tree_memo`: sub-derivations are cached per
  ``(node, subpattern, environment)`` and alphabet predicates are
  evaluated at most once per node through a predicate-outcome bitmap;
* ``backtrack`` — the plain backtracker below, kept as the reference
  semantics the memo engine is property-tested against.

Both produce bit-identical ``Shape`` streams in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Iterator, Sequence

from .. import config, guardrails
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.concat import ConcatPoint
from ..errors import PatternError, ResourceExhaustedError
from ..faults import fault_point
from ..storage import stats as stats_mod
from .tree_ast import (
    ChildAlt,
    ChildEpsilon,
    ChildPatternNode,
    ChildPlus,
    ChildSeq,
    ChildStar,
    PointAtom,
    TreeAtom,
    TreeConcat,
    TreePattern,
    TreePatternNode,
    TreePlus,
    TreePrune,
    TreeStar,
    TreeUnion,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tree_memo import TreeMatchContext

#: Environment knob selecting the default tree-matching engine.
TREE_ENGINE_ENV = config.TREE_ENGINE_ENV
_TREE_ENGINES = config.TREE_ENGINES


def tree_engine(engine: str | None = None) -> str:
    """Resolve the engine choice: argument > session scope > env > default.

    Validation lives in :mod:`repro.config`; a bad value raises a
    one-line :class:`~repro.errors.QueryError` naming the knob.
    """
    return config.validated_tree_engine(engine)


class _StarCont:
    """Continuation binding for a closure's own point.

    ``tp*α`` unfolds as ``tp`` with ``α ↦ tp*α`` — but the *zero-
    iterations* case of that inner star must see whatever ``α`` meant
    *outside* the closure (e.g. the right operand of an enclosing
    ``∘α``).  Binding the plain star node would shadow that outer
    meaning, so the environment binds this closure object instead: the
    star plus the environment captured where the closure was entered.
    """

    __slots__ = ("star", "env")

    def __init__(self, star: "TreeStar", env: "_Env") -> None:
        self.star = star
        self.env = env


_Env = dict[str, "TreePatternNode | _StarCont"]


def _guard_key(node: TreeNode, binding: "TreePatternNode | _StarCont") -> tuple:
    """Cycle-guard key for expanding a point binding at a node.

    Non-consuming expansions can only loop through the *same* binding
    (or the same closure — fresh ``_StarCont`` wrappers around one star
    are semantically identical), so the key pairs the node with the
    binding's identity, collapsing continuations to their star.
    """
    if isinstance(binding, _StarCont):
        return (id(node), "star", id(binding.star))
    return (id(node), "pat", id(binding))


@dataclass(frozen=True)
class Pruned:
    """A pruned attachment: the data subtree rooted here goes to ``z``."""

    node: TreeNode


@dataclass(frozen=True)
class Shape:
    """A kept data node of the match plus its (kept/pruned) children."""

    node: TreeNode
    children: tuple["Shape | Pruned", ...]


def _shape_key(part: "Shape | Pruned") -> tuple:
    if isinstance(part, Pruned):
        return ("p", id(part.node))
    return ("k", id(part.node), tuple(_shape_key(c) for c in part.children))


class TreeMatch:
    """One instance of a tree pattern in a data tree."""

    def __init__(self, shape: Shape) -> None:
        self.shape = shape

    @property
    def root(self) -> TreeNode:
        return self.shape.node

    def key(self) -> tuple:
        return _shape_key(self.shape)

    def kept_nodes(self) -> list[TreeNode]:
        """Kept data nodes in preorder."""
        result: list[TreeNode] = []

        def walk(part: Shape | Pruned) -> None:
            if isinstance(part, Shape):
                result.append(part.node)
                for child in part.children:
                    walk(child)

        walk(self.shape)
        return result

    def pruned_nodes(self) -> list[TreeNode]:
        """Roots of pruned subtrees, in attachment (preorder) order."""
        result: list[TreeNode] = []

        def walk(part: Shape | Pruned) -> None:
            if isinstance(part, Pruned):
                result.append(part.node)
            else:
                for child in part.children:
                    walk(child)

        walk(self.shape)
        return result

    def match_tree(self) -> tuple[AquaTree, list[ConcatPoint]]:
        """The piece ``y``: kept nodes with fresh points ``α1..αn``.

        Returns the tree and the points, ordered to line up with
        :meth:`pruned_subtrees` — the invariant
        ``y ∘α1 z1 ∘α2 z2 ... = full match subgraph`` holds.
        """
        counter = 0
        points: list[ConcatPoint] = []

        def build(part: Shape | Pruned) -> TreeNode:
            nonlocal counter
            if isinstance(part, Pruned):
                counter += 1
                point = ConcatPoint(str(counter))
                points.append(point)
                return TreeNode(point)
            return TreeNode(part.node.item, [build(c) for c in part.children])

        root = build(self.shape)
        return AquaTree(root), points

    def pruned_subtrees(self) -> list[AquaTree]:
        """The pruned subtrees ``z = [t1..tn]``, cloned (cells shared)."""
        return [AquaTree(node).clone() for node in self.pruned_nodes()]

    def __repr__(self) -> str:
        tree, _ = self.match_tree()
        return f"TreeMatch({tree.to_notation()})"


class _TreeMatcher:
    """One matcher instance per (pattern, input tree) pair."""

    def __init__(self, leaf_anchor: bool) -> None:
        self.leaf_anchor = leaf_anchor
        #: Enumeration work (match_node entries — the exponential §4
        #: wants narrowed) and alphabet-predicate evaluations; plain
        #: ints in the hot loop, flushed in bulk by the entry points.
        self.backtrack_steps = 0
        self.predicate_evals = 0
        #: The budget armed on this thread, if any; fetched once so the
        #: per-step cost with no budget is a single ``is None`` test.
        self.guard = guardrails.current_guard()
        self.nullable_limit = guardrails.nullable_depth_limit()

    def counter_snapshot(self) -> dict[str, int]:
        return {
            "backtrack_steps": self.backtrack_steps,
            "predicate_evals": self.predicate_evals,
        }

    def emit_stats(self) -> None:
        stats_mod.emit_many(self.counter_snapshot())

    def flush_stats(self) -> None:
        """Emit the accumulated counters and reset them to zero.

        The streaming executor flushes after every candidate so the
        counts land inside the *currently attributed* operator scope;
        the eager entry points flush once at the end instead.
        """
        self.emit_stats()
        for name in self.counter_snapshot():
            setattr(self, name, 0)

    def absorb_counters(self, other: "_TreeMatcher", since: dict[str, int]) -> None:
        """Fold in the work ``other`` did since ``since`` was snapshot."""
        for name, value in other.counter_snapshot().items():
            setattr(self, name, getattr(self, name) + value - since.get(name, 0))

    # -- engine seams (the memo engine overrides these) ----------------------

    def eval_predicate(self, predicate, node: TreeNode) -> bool:
        """One alphabet-predicate test on one data node."""
        self.predicate_evals += 1
        return predicate(node.value)

    def plus_star(self, tp: TreePlus) -> TreeStar:
        """The star a ``tp+α`` unfolds through.

        A fresh node per expansion, exactly like the inline construction
        it replaces — cycle-guard keys compare star identity, so sharing
        one star across expansions would merge guard chains the
        backtracker keeps distinct.  The memo engine also creates fresh
        stars but registers each under one stable memo number.
        """
        return TreeStar(tp.inner, tp.point)

    def prune_matcher(self) -> "_TreeMatcher":
        """The matcher for a prune's inner pattern (⊥ never reaches it)."""
        return self if not self.leaf_anchor else _TreeMatcher(False)

    # -- nullability (can the pattern denote NULL?) --------------------------

    def nullable(
        self,
        tp: "TreePatternNode | ChildPatternNode | _StarCont",
        env: _Env,
        depth: int = 0,
    ) -> bool:
        if depth > self.nullable_limit:
            rendered = tp.star.describe() if isinstance(tp, _StarCont) else tp.describe()
            raise ResourceExhaustedError(
                "nullability analysis exceeded the backtrack-depth budget "
                f"(max_backtrack_depth={self.nullable_limit}) — the "
                f"concatenation-point bindings of {rendered!r} recurse too "
                "deeply (usually a binding cycle)",
                limit_name="max_backtrack_depth",
                limit=self.nullable_limit,
                spent=depth,
                seam="nullability analysis",
                usage=self.guard.usage() if self.guard is not None else None,
            )
        if isinstance(tp, _StarCont):
            return self.nullable(tp.star, tp.env, depth + 1)
        if isinstance(tp, (TreeAtom,)):
            return False
        if isinstance(tp, PointAtom):
            binding = env.get(tp.point.label)
            if binding is None:
                # An unbound point is a deletable labeled NULL — the
                # paper closes leftover points with nil before the
                # membership check (``y ∘αi nil ∈ L(tp)``).
                return True
            return self.nullable(binding, env, depth + 1)
        if isinstance(tp, TreeUnion):
            return any(self.nullable(a, env, depth + 1) for a in tp.alternatives)
        if isinstance(tp, TreeStar):
            # Zero iterations: the star *is* its point — deletable when
            # unbound, otherwise as nullable as the outer continuation.
            binding = env.get(tp.point.label)
            if binding is None:
                return True
            return self.nullable(binding, env, depth + 1)
        if isinstance(tp, TreePlus):
            inner_env = dict(env)
            inner_env[tp.point.label] = _StarCont(self.plus_star(tp), dict(env))
            return self.nullable(tp.inner, inner_env, depth + 1)
        if isinstance(tp, TreeConcat):
            inner_env = dict(env)
            inner_env[tp.point.label] = tp.right
            return self.nullable(tp.left, inner_env, depth + 1)
        if isinstance(tp, TreePrune):
            return tp.optional or self.nullable(tp.inner, env, depth + 1)
        if isinstance(tp, ChildEpsilon):
            return True
        if isinstance(tp, ChildSeq):
            return all(self.nullable(p, env, depth + 1) for p in tp.parts)
        if isinstance(tp, ChildAlt):
            return any(self.nullable(a, env, depth + 1) for a in tp.alternatives)
        if isinstance(tp, ChildStar):
            return True
        if isinstance(tp, ChildPlus):
            return self.nullable(tp.inner, env, depth + 1)
        raise PatternError(f"unknown pattern node {tp!r}")

    # -- node-level matching (consumes exactly one data node) ----------------

    def match_node(
        self,
        tp: TreePatternNode,
        node: TreeNode,
        env: _Env,
        guard: frozenset = frozenset(),
        depth: int = 0,
    ) -> "Iterator[Shape | Pruned]":
        self.backtrack_steps += 1
        if self.guard is not None:
            self.guard.tick(1, "tree matcher")
            self.guard.check_depth(depth, "tree matcher")
        if isinstance(tp, TreeAtom):
            if node.is_concat_point:
                return
            if not self.eval_predicate(tp.predicate, node):
                return
            if tp.children is None:
                if self.leaf_anchor:
                    if not node.children:
                        yield Shape(node, ())
                else:
                    yield Shape(node, tuple(Pruned(c) for c in node.children))
                return
            for end, fragments in self.match_children(
                tp.children, node.children, 0, env, depth + 1
            ):
                if end == len(node.children):
                    yield Shape(node, fragments)
            return
        if isinstance(tp, PointAtom):
            binding = env.get(tp.point.label)
            if binding is None:
                if node.is_concat_point and node.item == tp.point:
                    yield Shape(node, ())
                return
            key = _guard_key(node, binding)
            if key in guard:
                return
            if isinstance(binding, _StarCont):
                yield from self.match_node(
                    binding.star, node, binding.env, guard | {key}, depth + 1
                )
            else:
                yield from self.match_node(binding, node, env, guard | {key}, depth + 1)
            return
        if isinstance(tp, TreeUnion):
            for alternative in tp.alternatives:
                yield from self.match_node(alternative, node, env, guard, depth + 1)
            return
        if isinstance(tp, TreeStar):
            # Zero iterations: the star degenerates to its point, which
            # matches whatever α means outside the closure (or a literal
            # labeled NULL in the data).
            binding = env.get(tp.point.label)
            if binding is None:
                if node.is_concat_point and node.item == tp.point:
                    yield Shape(node, ())
            else:
                key = _guard_key(node, binding)
                if key not in guard:
                    if isinstance(binding, _StarCont):
                        yield from self.match_node(
                            binding.star, node, binding.env, guard | {key}, depth + 1
                        )
                    else:
                        yield from self.match_node(
                            binding, node, env, guard | {key}, depth + 1
                        )
            # One or more iterations: unfold, rebinding the point to this
            # closure *with the current outer environment captured*.
            inner_env = dict(env)
            inner_env[tp.point.label] = _StarCont(tp, dict(env))
            yield from self.match_node(tp.inner, node, inner_env, guard, depth + 1)
            return
        if isinstance(tp, TreePlus):
            inner_env = dict(env)
            inner_env[tp.point.label] = _StarCont(self.plus_star(tp), dict(env))
            yield from self.match_node(tp.inner, node, inner_env, guard, depth + 1)
            return
        if isinstance(tp, TreeConcat):
            inner_env = dict(env)
            inner_env[tp.point.label] = tp.right
            yield from self.match_node(tp.left, node, inner_env, guard, depth + 1)
            return
        if isinstance(tp, TreePrune):
            # A prune consumes the node and hides its whole subtree; the
            # inner pattern only gates whether the prune applies.  The ⊥
            # leaf anchor does not reach inside prunes — pruned subtrees
            # are excluded from the match, so their leaves need not align.
            inner_matcher = self.prune_matcher()
            since = None if inner_matcher is self else inner_matcher.counter_snapshot()
            matched = any(
                True
                for _ in inner_matcher.match_node(tp.inner, node, env, guard, depth + 1)
            )
            if since is not None:
                self.absorb_counters(inner_matcher, since)
            if matched:
                yield Pruned(node)
            return
        raise PatternError(f"unknown tree pattern node {tp!r}")

    # -- child-sequence matching ----------------------------------------------

    def match_children(
        self,
        cp: ChildPatternNode | TreePatternNode,
        children: Sequence[TreeNode],
        index: int,
        env: _Env,
        depth: int = 0,
    ) -> Iterator[tuple[int, tuple[Shape | Pruned, ...]]]:
        """Yield ``(next_index, fragments)`` for matches starting at ``index``."""
        if self.guard is not None:
            self.guard.tick(1, "tree matcher")
            self.guard.check_depth(depth, "tree matcher")
        if isinstance(cp, ChildEpsilon):
            yield index, ()
            return
        if isinstance(cp, ChildSeq):
            yield from self._match_seq(cp.parts, 0, children, index, env, depth + 1)
            return
        if isinstance(cp, ChildAlt):
            for alternative in cp.alternatives:
                yield from self.match_children(alternative, children, index, env, depth + 1)
            return
        if isinstance(cp, ChildStar):
            yield from self._match_child_star(cp.inner, children, index, env, depth + 1)
            return
        if isinstance(cp, ChildPlus):
            for mid, head in self.match_children(cp.inner, children, index, env, depth + 1):
                for end, tail in self._match_child_star(
                    cp.inner, children, mid, env, depth + 1
                ):
                    yield end, head + tail
            return
        # A tree pattern as a child-list atom: consumes zero children when
        # it can denote NULL, otherwise exactly one child subtree (a
        # TreePrune consumes the child and yields a Pruned fragment).
        if isinstance(cp, TreePatternNode):
            if self.nullable(cp, env):
                yield index, ()
            if index < len(children):
                for shape in self.match_node(cp, children[index], env, depth=depth + 1):
                    yield index + 1, (shape,)
            return
        raise PatternError(f"unknown child pattern node {cp!r}")

    def _match_seq(
        self,
        parts: Sequence[ChildPatternNode | TreePatternNode],
        part_index: int,
        children: Sequence[TreeNode],
        index: int,
        env: _Env,
        depth: int = 0,
    ) -> Iterator[tuple[int, tuple[Shape | Pruned, ...]]]:
        if part_index == len(parts):
            yield index, ()
            return
        for mid, head in self.match_children(parts[part_index], children, index, env, depth):
            for end, tail in self._match_seq(
                parts, part_index + 1, children, mid, env, depth + 1
            ):
                yield end, head + tail

    def _match_child_star(
        self,
        inner: ChildPatternNode | TreePatternNode,
        children: Sequence[TreeNode],
        index: int,
        env: _Env,
        depth: int = 0,
    ) -> Iterator[tuple[int, tuple[Shape | Pruned, ...]]]:
        yield index, ()
        for mid, head in self.match_children(inner, children, index, env, depth):
            if mid == index:
                continue  # progress guard: nullable inner cannot loop
            for end, tail in self._match_child_star(inner, children, mid, env, depth + 1):
                yield end, head + tail


def _resolve_context(
    pattern: TreePattern,
    data: AquaTree,
    engine: str | None,
    context: "TreeMatchContext | None",
) -> "tuple[TreePattern, TreeMatchContext | None]":
    """Pick the engine and (for ``memo``) the shared match context.

    An explicit ``context`` wins and implies the memo engine.  Otherwise
    the resolved engine decides: ``memo`` fetches a context from the
    active per-query registry (sharing memo tables and bitmap across
    every operator matching this (pattern, tree) pair) or builds a
    standalone one; ``backtrack`` returns no context.  Matching always
    uses the *context's* compiled pattern — an equal pattern compiled
    elsewhere would defeat the identity-keyed sub-term interning.
    """
    from .tree_memo import TreeMatchContext, current_registry

    if context is None:
        if tree_engine(engine) == "backtrack":
            return pattern, None
        registry = current_registry()
        if registry is not None:
            context = registry.context_for(pattern, data)
        else:
            context = TreeMatchContext(pattern, data)
    elif context.tree is not data:
        raise PatternError(
            "tree match context was built for a different data tree"
        )
    return context.pattern, context


def _make_matcher(
    pattern: TreePattern, context: "TreeMatchContext | None"
) -> _TreeMatcher:
    if context is None:
        return _TreeMatcher(leaf_anchor=pattern.leaf_anchor)
    from .tree_memo import MemoTreeMatcher

    return MemoTreeMatcher(context, leaf_anchor=pattern.leaf_anchor)


def find_tree_matches(
    pattern: TreePattern,
    data: AquaTree,
    roots: Sequence[TreeNode] | None = None,
    limit: int | None = None,
    engine: str | None = None,
    context: "TreeMatchContext | None" = None,
) -> list[TreeMatch]:
    """Enumerate distinct matches of ``pattern`` in ``data``.

    ``roots`` optionally restricts candidate match roots — the hook used
    by the split/index rewrite (§4) to avoid scanning every node.
    Matches are deduplicated structurally and returned in preorder of
    their roots.
    """
    results: list[TreeMatch] = []
    for match in iter_tree_matches(
        pattern, data, roots=roots, engine=engine, context=context
    ):
        results.append(match)
        if limit is not None and len(results) >= limit:
            break
    return results


def _columnar_candidates(
    pattern: TreePattern, data: AquaTree
) -> "list[TreeNode] | None":
    """Engine-level candidate-root filter via shared predicate columns.

    When a db-armed match scope is active (the interpreter opens one per
    evaluation, for either executor), the pattern's root predicates are
    column-servable and non-trivial, and the tree clears the columnar
    gate (``AQUA_COLUMNAR`` + size threshold), the full pre-order
    candidate walk collapses to the nodes whose predicate-column bits
    are set — exactly the nodes any match could root at, in pre-order,
    so the match stream is bit-identical by construction.  ``None``
    means "no help here": fall back to walking every node.
    """
    from .tree_memo import current_registry

    registry = current_registry()
    if registry is None or registry.db is None:
        return None
    from ..optimizer.anchors import tree_columnar_anchors

    anchors = tree_columnar_anchors(pattern)
    if anchors is None:
        return None
    from ..storage.columnar import columnar_candidate_roots

    return columnar_candidate_roots(registry.db, anchors, data)


def iter_tree_matches(
    pattern: TreePattern,
    data: AquaTree,
    roots: Sequence[TreeNode] | None = None,
    on_candidate: "Callable[[TreeNode], None] | None" = None,
    flush_per_candidate: bool = False,
    engine: str | None = None,
    context: "TreeMatchContext | None" = None,
    roots_in_preorder: bool = False,
) -> Iterator[TreeMatch]:
    """Lazily enumerate distinct matches, in preorder of their roots.

    The streaming analogue of :func:`find_tree_matches`: matches are
    produced one at a time, so a consumer that stops early (a tripped
    budget, a ``limit``) never pays for the remaining candidates.  With
    no ``roots`` restriction the candidates are walked in preorder
    directly — the eager path's O(n) position map is only built when an
    index handed us roots out of order.

    ``on_candidate`` is invoked once per candidate node before it is
    matched (the executor's per-node scan-charging hook), and
    ``flush_per_candidate`` flushes matcher counters after every
    candidate so they are credited to whichever operator scope is
    attributed at pull time.

    ``engine`` selects the matching engine (default: the
    ``AQUA_TREE_ENGINE`` knob); ``context`` supplies a shared
    :class:`~repro.patterns.tree_memo.TreeMatchContext` so one memo
    table and predicate bitmap serve a whole candidate stream (and, via
    the per-query registry, every operator matching the same pattern
    against the same tree).
    """
    if isinstance(pattern.body, TreePrune):
        raise PatternError("a prune marker cannot be the whole pattern")
    if data.root is None:
        return
    pattern, context = _resolve_context(pattern, data, engine, context)
    with guardrails.guarded():
        matcher = _make_matcher(pattern, context)

        candidates: Iterable[TreeNode]
        if pattern.root_anchor:
            candidates = [data.root]
        elif roots is not None:
            if roots_in_preorder:
                candidates = list(roots)
            else:
                ordered = list(roots)
                order = {
                    id(node): position for position, node in enumerate(data.nodes())
                }
                ordered.sort(key=lambda n: order.get(id(n), len(order)))
                candidates = ordered
        else:
            filtered = _columnar_candidates(pattern, data)
            candidates = data.nodes() if filtered is None else filtered

        seen: set[tuple] = set()
        try:
            for node in candidates:
                fault_point("matcher_step")
                if on_candidate is not None:
                    on_candidate(node)
                for shape in matcher.match_node(pattern.body, node, {}):
                    if isinstance(shape, Pruned):
                        continue
                    match = TreeMatch(shape)
                    key = match.key()
                    if key in seen:
                        continue
                    seen.add(key)
                    yield match
                if flush_per_candidate:
                    matcher.flush_stats()
        finally:
            matcher.emit_stats()


def tree_in_language(
    pattern: TreePattern,
    data: AquaTree,
    engine: str | None = None,
    context: "TreeMatchContext | None" = None,
) -> bool:
    """Is the whole tree an element of the pattern's language?

    Language membership requires the match to cover the entire tree: it
    must start at the root and leave nothing pruned (no implicit
    descendants, no ``!`` leftovers), i.e. the paper's ``I ∈ L(P')``.
    """
    with guardrails.guarded():
        fault_point("matcher_step")
        if data.root is None:
            matcher = _TreeMatcher(leaf_anchor=False)
            return matcher.nullable(pattern.body, {})
        pattern, context = _resolve_context(pattern, data, engine, context)
        matcher = _make_matcher(pattern, context)
        try:
            for shape in matcher.match_node(pattern.body, data.root, {}):
                if isinstance(shape, Pruned):
                    continue
                match = TreeMatch(shape)
                if not match.pruned_nodes():
                    return True
            return False
        finally:
            matcher.emit_stats()
