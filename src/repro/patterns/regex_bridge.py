"""The ``P → P'`` alphabet translation (paper §3.4) and a Python ``re`` bridge.

§3.4 reconciles pattern alphabets (predicates) with instance alphabets
(objects): replace each alphabet-predicate ``ap`` by the disjunction
``(x1 | x2 | ... | xn)`` of the database objects satisfying it; then a
sublist matches iff it is in the language of the translated pattern.

Two services are built on that idea:

* :func:`expand_alphabet` — the literal translation, producing a pattern
  over :class:`~repro.predicates.alphabet.SymbolEquals` atoms for a given
  finite universe.  This is the paper's formal device and also what an
  index-driven evaluator conceptually does.
* :func:`to_python_regex` — encode a concrete input sequence as one
  character per position and each atom as the character class of the
  positions satisfying it.  The result is a standard Python regex whose
  matches over the encoded string correspond one-to-one to the pattern's
  matches over the sequence.  The test suite uses this as an independent
  oracle for all four matching engines.
"""

from __future__ import annotations

import re
from typing import Any, Sequence

from ..errors import PatternError
from ..predicates.alphabet import AlphabetPredicate, SymbolEquals
from .list_ast import (
    EPSILON,
    Atom,
    Concat,
    Epsilon,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
)


def expand_alphabet(
    pattern: ListPattern | ListPatternNode, universe: Sequence[Any]
) -> ListPatternNode:
    """Rewrite every predicate atom as a disjunction over ``universe``.

    Opaque predicates are rejected — the translation requires the finite
    satisfying set to be enumerable, which the §3.1 restrictions
    guarantee for well-formed alphabet-predicates.
    """
    node = pattern.body if isinstance(pattern, ListPattern) else pattern
    return _expand(node, list(universe))


def _expand(node: ListPatternNode, universe: list[Any]) -> ListPatternNode:
    if isinstance(node, Epsilon):
        return node
    if isinstance(node, Atom):
        if node.predicate.opaque:
            raise PatternError(
                f"cannot expand opaque predicate {node.predicate.describe()!r}"
            )
        satisfying = [value for value in universe if node.predicate(value)]
        if not satisfying:
            # ∅ is not in the surface AST; an unsatisfiable one-element
            # pattern is the closest equivalent: an atom nothing satisfies.
            return Atom(SymbolEquals(_NOTHING))
        return Union([Atom(SymbolEquals(value)) for value in satisfying]) if len(
            satisfying
        ) > 1 else Atom(SymbolEquals(satisfying[0]))
    if isinstance(node, Concat):
        return Concat([_expand(p, universe) for p in node.parts])
    if isinstance(node, Union):
        return Union([_expand(a, universe) for a in node.alternatives])
    if isinstance(node, Star):
        return Star(_expand(node.inner, universe))
    if isinstance(node, Plus):
        return Plus(_expand(node.inner, universe))
    if isinstance(node, Prune):
        return Prune(_expand(node.inner, universe))
    raise PatternError(f"cannot expand {node!r}")


class _Nothing:
    def __repr__(self) -> str:
        return "<no-object>"


_NOTHING = _Nothing()

#: Characters assigned to element positions; beyond these the encoder
#: switches to plane-1 code points, so inputs of any realistic length work.
_FIRST_CODE_POINT = 0xE000  # private-use area: no regex metacharacters


def encode_sequence(values: Sequence[Any]) -> str:
    """One unique character per element position."""
    return "".join(chr(_FIRST_CODE_POINT + i) for i in range(len(values)))


def _char_class(predicate: AlphabetPredicate, values: Sequence[Any]) -> str:
    chars = [chr(_FIRST_CODE_POINT + i) for i, v in enumerate(values) if predicate(v)]
    if not chars:
        # An unmatchable single character: a class excluding every
        # position character (fails on any input element).
        return "[^\\u0000-\\U0010FFFF]"
    return "[" + "".join(chars) + "]"


def to_python_regex(
    pattern: ListPattern | ListPatternNode, values: Sequence[Any]
) -> str:
    """Translate the pattern into a Python regex over :func:`encode_sequence`.

    Prune markers become plain groups (they do not change the language).
    Anchors are *not* emitted — span enumeration handles them — so the
    regex corresponds to the floating body.
    """
    node = pattern.body if isinstance(pattern, ListPattern) else pattern
    return _regex(node, values)


def _regex(node: ListPatternNode, values: Sequence[Any]) -> str:
    if isinstance(node, Epsilon):
        return "(?:)"
    if isinstance(node, Atom):
        if node.predicate.opaque:
            # Opaque predicates still evaluate fine positionally.
            pass
        return _char_class(node.predicate, values)
    if isinstance(node, Concat):
        return "".join(_regex(p, values) for p in node.parts)
    if isinstance(node, Union):
        return "(?:" + "|".join(_regex(a, values) for a in node.alternatives) + ")"
    if isinstance(node, Star):
        return "(?:" + _regex(node.inner, values) + ")*"
    if isinstance(node, Plus):
        return "(?:" + _regex(node.inner, values) + ")+"
    if isinstance(node, Prune):
        return "(?:" + _regex(node.inner, values) + ")"
    raise PatternError(f"cannot translate {node!r} to a regex")


def regex_find_spans(pattern: ListPattern, values: Sequence[Any]) -> list[tuple[int, int]]:
    """Oracle span enumeration: ``re.fullmatch`` on every substring."""
    encoded = encode_sequence(values)
    compiled = re.compile(to_python_regex(pattern, values))
    n = len(values)
    starts = (0,) if pattern.anchor_start else range(n + 1)
    spans: list[tuple[int, int]] = []
    for start in starts:
        ends = (n,) if pattern.anchor_end else range(start, n + 1)
        for end in ends:
            if compiled.fullmatch(encoded, start, end) is not None:
                spans.append((start, end))
    return sorted(set(spans))
