"""Pattern languages for lists and trees (paper §3).

* List patterns: regular expressions over alphabet-predicates, with four
  interchangeable engines (backtracking with prune capture, ε-NFA, lazy
  DFA, Brzozowski derivatives) plus the §3.4 ``P → P'`` translation and
  a Python ``re`` oracle bridge.
* Tree patterns: tree regular expressions with concatenation points,
  subscripted closures, ⊤/⊥ anchors and ``!`` pruning.
"""

from .derivatives import deriv_accepts, deriv_find_spans, derivative
from .equivalence import (
    distinguishing_vector,
    pattern_language_empty,
    pattern_subsumes,
    patterns_equivalent,
)
from .dfa import LazyDFA, compile_dfa, dfa_find_spans
from .list_ast import (
    EPSILON,
    Atom,
    Concat,
    Epsilon,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
    any_element,
    atom,
    seq,
    union,
)
from .list_match import ListMatch, find_list_matches, find_spans, matches_whole
from .list_parser import parse_list_pattern, list_pattern
from .nfa import NFA, compile_nfa, nfa_find_spans
from .regex_bridge import (
    encode_sequence,
    expand_alphabet,
    regex_find_spans,
    to_python_regex,
)
from .tree_ast import (
    CHILD_EPSILON,
    ChildAlt,
    ChildPatternNode,
    ChildPlus,
    ChildSeq,
    ChildStar,
    PointAtom,
    TreeAtom,
    TreeConcat,
    TreePattern,
    TreePatternNode,
    TreePlus,
    TreePrune,
    TreeStar,
    TreeUnion,
)
from .tree_match import (
    TREE_ENGINE_ENV,
    Pruned,
    Shape,
    TreeMatch,
    find_tree_matches,
    iter_tree_matches,
    tree_engine,
    tree_in_language,
)
from .tree_memo import (
    MatchContextRegistry,
    MemoTreeMatcher,
    TreeMatchContext,
    current_registry,
    match_scope,
)
from .tree_parser import parse_tree_pattern, tree_pattern

__all__ = [
    "Atom",
    "CHILD_EPSILON",
    "ChildAlt",
    "ChildPatternNode",
    "ChildPlus",
    "ChildSeq",
    "ChildStar",
    "Concat",
    "EPSILON",
    "Epsilon",
    "LazyDFA",
    "ListMatch",
    "MatchContextRegistry",
    "MemoTreeMatcher",
    "ListPattern",
    "ListPatternNode",
    "NFA",
    "Plus",
    "PointAtom",
    "Prune",
    "Pruned",
    "Shape",
    "Star",
    "TREE_ENGINE_ENV",
    "TreeAtom",
    "TreeConcat",
    "TreeMatch",
    "TreeMatchContext",
    "TreePattern",
    "TreePatternNode",
    "TreePlus",
    "TreePrune",
    "TreeStar",
    "TreeUnion",
    "Union",
    "any_element",
    "atom",
    "compile_dfa",
    "compile_nfa",
    "current_registry",
    "deriv_accepts",
    "deriv_find_spans",
    "derivative",
    "dfa_find_spans",
    "distinguishing_vector",
    "pattern_language_empty",
    "pattern_subsumes",
    "patterns_equivalent",
    "encode_sequence",
    "expand_alphabet",
    "find_list_matches",
    "find_spans",
    "find_tree_matches",
    "iter_tree_matches",
    "list_pattern",
    "match_scope",
    "matches_whole",
    "nfa_find_spans",
    "parse_list_pattern",
    "parse_tree_pattern",
    "regex_find_spans",
    "seq",
    "to_python_regex",
    "tree_engine",
    "tree_in_language",
    "tree_pattern",
    "union",
]
