"""Parser for list-pattern notation (paper §3.2).

Examples::

    [A??F]                      # melody: A, any, any, F
    [d [[a c]]* b]              # [d] ∘ [ac]* ∘ [b]
    ^[{age > 25} ?*]$           # anchored; embedded predicate text
    [x !?* y]                   # prune the middle run (§3.4)

Grammar::

    pattern     := '^'? body '$'?
    body        := '[' alternation ']' | alternation
    alternation := sequence ( '|' sequence )*
    sequence    := item+
    item        := '!'? base ( '*' | '+' )*
    base        := '?' | SYMBOL | '{' predicate-text '}'
                 | '[[' alternation ']]'

Bare symbols are resolved to alphabet-predicates by the ``resolver``
argument (default: :class:`~repro.predicates.alphabet.SymbolEquals`,
matching the payload directly — the figure-style string trees).  Domain
code typically passes a resolver like ``lambda s: attr("pitch") == s``.
"""

from __future__ import annotations

from typing import Callable

from ..errors import NotationError, PatternError
from ..predicates.alphabet import AlphabetPredicate, SymbolEquals
from ..storage import stats as stats_mod
from ..predicates.parser import parse_predicate
from .list_ast import (
    EPSILON,
    Atom,
    Concat,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
    any_element,
)
from .pattern_tokens import PatternTokenStream, tokenize_pattern

SymbolResolver = Callable[[str], AlphabetPredicate]


def default_resolver(symbol: str) -> AlphabetPredicate:
    return SymbolEquals(symbol)


def parse_list_pattern(text: str, resolver: SymbolResolver | None = None) -> ListPattern:
    """Parse list-pattern text into a :class:`ListPattern`."""
    # Counts pattern compilations for EXPLAIN ANALYZE and the plan
    # cache's warm-path check (see tree_parser.parse_tree_pattern).
    stats_mod.emit("pattern_compilations")
    resolver = resolver or default_resolver
    stream = PatternTokenStream(tokenize_pattern(text), text)

    anchor_start = stream.match("top") is not None
    # An odd total of '[' characters means a single outer pattern bracket
    # wraps the body (groups always contribute balanced pairs).
    bracketed = stream.open_bracket_count() % 2 == 1
    if bracketed and not stream.match_single_open():
        leftover = stream.peek()
        raise NotationError(
            "expected '[' to open the pattern",
            text,
            leftover.position if leftover else 0,
        )

    body = _alternation(stream, resolver)

    anchor_end = False
    if bracketed:
        # `$` may sit just inside the closing bracket: [abc$]
        if stream.match("bottom") is not None:
            anchor_end = True
        stream.expect_single_close()
    if stream.match("bottom") is not None:
        anchor_end = True
    # `^` may also sit just inside the opening bracket; handled by grammar
    # only at the very front, so reject anything left over.
    if not stream.exhausted:
        leftover = stream.peek()
        assert leftover is not None
        raise NotationError("trailing input after pattern", text, leftover.position)
    return ListPattern(body, anchor_start=anchor_start, anchor_end=anchor_end)


def _alternation(stream: PatternTokenStream, resolver: SymbolResolver) -> ListPatternNode:
    alternatives = [_sequence(stream, resolver)]
    while stream.match("pipe") is not None:
        alternatives.append(_sequence(stream, resolver))
    if len(alternatives) == 1:
        return alternatives[0]
    return Union(alternatives)


_SEQUENCE_STARTS = {"any", "sym", "pred", "bang"}


def _sequence(stream: PatternTokenStream, resolver: SymbolResolver) -> ListPatternNode:
    parts: list[ListPatternNode] = []
    while True:
        token = stream.peek()
        if token is None:
            break
        if token.kind not in _SEQUENCE_STARTS and not stream.at_group_open():
            break
        parts.append(_item(stream, resolver))
    if not parts:
        return EPSILON
    if len(parts) == 1:
        return parts[0]
    return Concat(parts)


def _item(stream: PatternTokenStream, resolver: SymbolResolver) -> ListPatternNode:
    pruned = stream.match("bang") is not None
    node = _base(stream, resolver)
    while True:
        if stream.match("star") is not None:
            node = Star(node)
        elif stream.match("plus") is not None:
            node = Plus(node)
        else:
            break
    if pruned:
        node = Prune(node)
    return node


def _base(stream: PatternTokenStream, resolver: SymbolResolver) -> ListPatternNode:
    if stream.match_group_open():
        inner = _alternation(stream, resolver)
        stream.expect_group_close()
        return inner
    token = stream.next()
    if token.kind == "any":
        return any_element()
    if token.kind == "sym":
        return Atom(resolver(token.text))
    if token.kind == "pred":
        return Atom(parse_predicate(token.text))
    raise NotationError(
        f"unexpected {token.text!r} in list pattern", stream.text, token.position
    )


def list_pattern(
    source: "str | ListPattern | ListPatternNode | AlphabetPredicate",
    resolver: SymbolResolver | None = None,
) -> ListPattern:
    """Coerce any reasonable input into a :class:`ListPattern`.

    Accepts pattern text, a ready pattern, a bare AST node, or a single
    alphabet-predicate (which becomes a one-element pattern).
    """
    if isinstance(source, ListPattern):
        return source
    if isinstance(source, ListPatternNode):
        return ListPattern(source)
    if isinstance(source, AlphabetPredicate):
        return ListPattern(Atom(source))
    if isinstance(source, str):
        return parse_list_pattern(source, resolver)
    raise PatternError(f"cannot interpret {source!r} as a list pattern")
