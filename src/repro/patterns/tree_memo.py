"""Packrat memoization for the tree-pattern matcher (the ``memo`` engine).

The backtracker in :mod:`repro.patterns.tree_match` re-derives identical
sub-matches every time the enumeration revisits a ``(node, subpattern,
environment)`` triple — across alternatives, across closure unfoldings,
and across the candidate roots an index feeds it.  Footnote 3 of the
paper concedes the worst case is exponential; this module removes the
*repeated* work the same way packrat parsers do for PEGs:

* :class:`TreeMatchContext` — one per (pattern, data tree) pair: every
  pattern sub-term is interned to a small integer, every data node to
  its preorder position, and every concat-point environment to a
  fingerprint number, so memo keys are cheap tuples of ints.  The
  context owns the **memo tables** (``Shape`` fragments a subpattern
  yields at a node) and the **predicate-outcome bitmap** (each alphabet
  predicate runs at most once per node — the bitmap is the structure's
  :class:`~repro.storage.tree_index.TreeIndex` bitmap when an index is
  in play, so anchor probes and matchers share fills).
* :class:`MemoTreeMatcher` — the backtracker subclass that consults the
  tables.  Derivations are cached *lazily*: a cache miss yields results
  as they are computed and stores the list only when the derivation ran
  to exhaustion, so early-exit consumers (``limit``, tripped budgets)
  never pay for unrequested matches and never poison the table with a
  truncated entry.
* :class:`MatchContextRegistry` + :func:`match_scope` — per-query,
  thread-local sharing: the interpreter arms a registry around each
  evaluation so *every* operator matching the same pattern against the
  same tree reuses one context (the "batched candidate evaluation" of
  the physical layer), and predicate bitmaps are reset per query.

Correctness contract: the memo engine enumerates the exact ``Shape``
stream of the backtracker, in the same order — replay walks the stored
list in derivation order, and the stored fragments are the same objects
the backtracker would rebuild.  Cycle-guarded derivations (a non-empty
expansion guard) bypass the tables entirely, because their outcome
depends on the guard set, not just the triple.

Budget accounting: a memo *replay* ticks one engine step; a memo
*store* ticks ``1 + len(results)`` steps, charging retained memo cells
against the ``max_steps`` budget so a pathological pattern cannot hide
unbounded memory behind cheap lookups.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator, Sequence

from ..core.aqua_tree import AquaTree, TreeNode
from ..storage.tree_index import PredicateBitmap
from .tree_ast import (
    ChildPatternNode,
    ChildSeq,
    TreeAtom,
    TreePattern,
    TreePatternNode,
    TreePlus,
    TreeStar,
)
from .tree_match import Pruned, Shape, _Env, _StarCont, _TreeMatcher

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..predicates.alphabet import AlphabetPredicate
    from ..storage.database import Database

#: Distinguishes "cached False" from "not cached" in the nullable table.
_MISSING = object()


class TreeMatchContext:
    """Shared memo state for matching one pattern against one tree.

    Interns pattern sub-terms, data-node positions and environments so
    memo keys are tuples of small ints; owns the memo tables and the
    predicate-outcome bitmap.  One context serves every matcher (and
    every operator, via :class:`MatchContextRegistry`) that pairs this
    pattern with this tree — that sharing across the candidate stream is
    where the asymptotic win comes from.
    """

    def __init__(
        self,
        pattern: TreePattern,
        tree: AquaTree,
        bitmap: PredicateBitmap | None = None,
        column_source: "Any | None" = None,
        position_maps: tuple[dict[int, int], dict[int, int]] | None = None,
    ) -> None:
        self.pattern = pattern
        self.tree = tree
        # -- pattern-term interning: id() → small int.  The keepalive
        # list pins every registered object so ids cannot be recycled.
        self._nums: dict[int, int] = {}
        self._keep: list[object] = [pattern, tree]
        self._next_num = 0
        for term in pattern.body.walk():
            self._intern(term)
            if isinstance(term, ChildSeq):
                # _match_seq keys on the parts tuple itself.
                self._intern(term.parts)
        #: One stable number per TreePlus: every fresh star a ``tp+α``
        #: expansion creates maps to the same memo number, so the
        #: guard-faithful fresh-star-per-expansion protocol (see
        #: ``_TreeMatcher.plus_star``) still hits one table entry.
        self._plus_nums: dict[int, int] = {}
        # -- data-node interning: preorder position per node and per
        # child list (child-sequence memo keys need the owning node).
        # A columnar extent already interned the same preorder during
        # its build; ``position_maps`` shares those dicts (read-only
        # here) instead of repeating the O(n) walk per evaluation.
        if position_maps is not None:
            self._pre, self._children_pre = position_maps
        else:
            self._pre = {}
            self._children_pre = {}
            for position, node in enumerate(tree.nodes()):
                self._pre[id(node)] = position
                self._children_pre[id(node.children)] = position
        if bitmap is None:
            pre = self._pre
            # column_source (a ColumnarExtent) lets the TreeAtom
            # fast-fail serve outcomes from shared predicate columns:
            # one batch evaluation per extent instead of one bitmap
            # fill per (predicate, node).
            bitmap = PredicateBitmap(
                max(1, len(pre)),
                lambda node: pre.get(id(node)),
                source=column_source,
            )
        self.bitmap = bitmap
        # -- environment fingerprinting.
        self._cont_fps: dict[int, tuple] = {}
        self._env_nums: dict[tuple, int] = {}
        # -- the packrat tables.
        self.node_memo: dict[tuple, list[Shape | Pruned]] = {}
        self.children_memo: dict[tuple, list] = {}
        self.seq_memo: dict[tuple, list] = {}
        self.star_memo: dict[tuple, list] = {}
        self.null_memo: dict[tuple, bool] = {}
        #: Keys whose derivation is mid-flight: a re-entrant request for
        #: one of these computes uncached (storing would be unsound — the
        #: outer derivation is not finished).
        self.in_flight: set[tuple] = set()
        #: Retained memo cells (entries plus stored fragments) — the
        #: quantity charged against the step budget at store time.
        self.memo_cells = 0

    # -- interning -----------------------------------------------------------

    def _intern(self, obj: object) -> int:
        num = self._nums.get(id(obj))
        if num is None:
            num = self._nums[id(obj)] = self._next_num
            self._next_num += 1
            self._keep.append(obj)
        return num

    def register_plus_star(self, plus: TreePlus, star: TreeStar) -> None:
        """Map a fresh ``tp+α`` expansion star to its plus's stable number."""
        num = self._plus_nums.get(id(plus))
        if num is None:
            num = self._plus_nums[id(plus)] = self._next_num
            self._next_num += 1
        self._nums[id(star)] = num
        self._keep.append(star)

    def binding_fp(self, binding: "TreePatternNode | ChildPatternNode | _StarCont"):
        """Fingerprint of one environment binding, or ``None`` (unknown).

        A continuation closure fingerprints as its star's number plus the
        fingerprint of the environment it captured at closure entry;
        since ``_StarCont`` environments are immutable after capture the
        result is cached per closure object.
        """
        if isinstance(binding, _StarCont):
            cached = self._cont_fps.get(id(binding))
            if cached is not None:
                return cached
            star_num = self._nums.get(id(binding.star))
            if star_num is None:
                return None
            env_num = self.env_num(binding.env)
            if env_num is None:
                return None
            fp = ("s", star_num, env_num)
            self._cont_fps[id(binding)] = fp
            self._keep.append(binding)
            return fp
        num = self._nums.get(id(binding))
        if num is None:
            return None
        return ("p", num)

    def env_num(self, env: _Env) -> int | None:
        """Intern an environment to a small int (``None``: not internable)."""
        if not env:
            return 0
        parts = []
        for label in sorted(env):
            fp = self.binding_fp(env[label])
            if fp is None:
                return None
            parts.append((label, fp))
        fp = tuple(parts)
        num = self._env_nums.get(fp)
        if num is None:
            num = self._env_nums[fp] = len(self._env_nums) + 1
        return num

    # -- memo keys (None: this call is not cacheable) ------------------------

    def node_key(self, tp, node: TreeNode, env: _Env, flag: int):
        pre = self._pre.get(id(node))
        if pre is None:
            return None
        num = self._nums.get(id(tp))
        if num is None:
            return None
        env_num = self.env_num(env)
        if env_num is None:
            return None
        return (pre, num, env_num, flag)

    def children_key(self, cp, children: Sequence[TreeNode], index: int, env: _Env, flag: int):
        owner = self._children_pre.get(id(children))
        if owner is None:
            return None
        num = self._nums.get(id(cp))
        if num is None:
            return None
        env_num = self.env_num(env)
        if env_num is None:
            return None
        return (owner, num, index, env_num, flag)

    def seq_key(self, parts, part_index: int, children, index: int, env: _Env, flag: int):
        owner = self._children_pre.get(id(children))
        if owner is None:
            return None
        num = self._nums.get(id(parts))
        if num is None:
            return None
        env_num = self.env_num(env)
        if env_num is None:
            return None
        return (owner, num, part_index, index, env_num, flag)

    def null_key(self, tp, env: _Env):
        fp = self.binding_fp(tp)
        if fp is None:
            return None
        env_num = self.env_num(env)
        if env_num is None:
            return None
        return (fp, env_num)


class MemoTreeMatcher(_TreeMatcher):
    """The packrat engine: a backtracker whose derivations hit tables.

    Overrides exactly the seams :class:`_TreeMatcher` exposes — predicate
    tests route through the outcome bitmap, plus-expansion stars register
    stable memo numbers, and every derivation entry point consults its
    table before (and stores after) running the inherited logic, so the
    enumeration semantics are the backtracker's by construction.
    """

    def __init__(self, context: TreeMatchContext, leaf_anchor: bool) -> None:
        super().__init__(leaf_anchor)
        self.context = context
        self._flag = 1 if leaf_anchor else 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.bitmap_fills = 0
        self.bitmap_hits = 0
        self._companion: MemoTreeMatcher | None = None

    def counter_snapshot(self) -> dict[str, int]:
        snapshot = super().counter_snapshot()
        snapshot["memo_hits"] = self.memo_hits
        snapshot["memo_misses"] = self.memo_misses
        snapshot["bitmap_fills"] = self.bitmap_fills
        snapshot["bitmap_hits"] = self.bitmap_hits
        return snapshot

    # -- engine seams --------------------------------------------------------

    def eval_predicate(self, predicate: "AlphabetPredicate", node: TreeNode) -> bool:
        result, filled = self.context.bitmap.outcome(predicate, node)
        if filled:
            self.predicate_evals += 1
            self.bitmap_fills += 1
        else:
            self.bitmap_hits += 1
        return result

    def plus_star(self, tp: TreePlus) -> TreeStar:
        star = TreeStar(tp.inner, tp.point)
        self.context.register_plus_star(tp, star)
        return star

    def prune_matcher(self) -> "_TreeMatcher":
        if not self.leaf_anchor:
            return self
        if self._companion is None:
            # Shares the context (tables, bitmap) under the ⊥-free flag.
            self._companion = MemoTreeMatcher(self.context, leaf_anchor=False)
            self._companion.guard = self.guard
        return self._companion

    # -- the packrat core ----------------------------------------------------

    def _memoized(self, table: dict, key: tuple, compute) -> "Iterator | list":
        """Serve ``key`` from ``table``, else run ``compute()`` and store.

        A hit returns the stored list itself (callers only iterate), so
        replay costs one budget tick and no generator frames.  A miss is
        lazy by design: results stream out as the underlying derivation
        produces them and the list is stored only on clean exhaustion —
        an abandoned generator (early-exit consumer) or an in-flight
        re-entrant request leaves the table untouched.
        """
        cached = table.get(key)
        if cached is not None:
            self.memo_hits += 1
            if self.guard is not None:
                self.guard.tick(1, "memo replay")
            return cached
        if key in self.context.in_flight:
            return compute()
        self.memo_misses += 1
        return self._compute_and_store(table, key, compute)

    def _compute_and_store(self, table: dict, key: tuple, compute) -> Iterator:
        context = self.context
        context.in_flight.add(key)
        results: list = []
        completed = False
        try:
            for item in compute():
                results.append(item)
                yield item
            completed = True
        finally:
            context.in_flight.discard(key)
            if completed:
                table[key] = results
                cells = 1 + len(results)
                context.memo_cells += cells
                if self.guard is not None:
                    self.guard.tick(cells, "memo store")

    # -- memoized derivation entry points ------------------------------------

    def match_node(self, tp, node, env, guard=frozenset(), depth=0):
        # A non-empty expansion guard makes the outcome guard-dependent;
        # only guard-free derivations (which every child descent resets
        # to) are cacheable.
        if guard:
            return _TreeMatcher.match_node(self, tp, node, env, guard, depth)
        if isinstance(tp, TreeAtom):
            # Atoms are cheap to re-derive: the predicate answer comes
            # from the bitmap and any child-list derivation hits the
            # children tables, so wrapping them in node-level memo keys
            # costs more than it saves (scans and probes feed
            # mostly-failing atom roots).  Fail fast off the bitmap and
            # let successes run unwrapped.
            if not node.is_concat_point and not self.eval_predicate(
                tp.predicate, node
            ):
                self.backtrack_steps += 1
                if self.guard is not None:
                    self.guard.tick(1, "tree matcher")
                    self.guard.check_depth(depth, "tree matcher")
                return ()
            return _TreeMatcher.match_node(self, tp, node, env, guard, depth)
        key = self.context.node_key(tp, node, env, self._flag)
        if key is None:
            return _TreeMatcher.match_node(self, tp, node, env, guard, depth)
        return self._memoized(
            self.context.node_memo,
            key,
            lambda: _TreeMatcher.match_node(self, tp, node, env, guard, depth),
        )

    def match_children(self, cp, children, index, env, depth=0):
        key = self.context.children_key(cp, children, index, env, self._flag)
        if key is None:
            return _TreeMatcher.match_children(self, cp, children, index, env, depth)
        return self._memoized(
            self.context.children_memo,
            key,
            lambda: _TreeMatcher.match_children(self, cp, children, index, env, depth),
        )

    def _match_seq(self, parts, part_index, children, index, env, depth=0):
        key = self.context.seq_key(parts, part_index, children, index, env, self._flag)
        if key is None:
            return _TreeMatcher._match_seq(
                self, parts, part_index, children, index, env, depth
            )
        return self._memoized(
            self.context.seq_memo,
            key,
            lambda: _TreeMatcher._match_seq(
                self, parts, part_index, children, index, env, depth
            ),
        )

    def _match_child_star(self, inner, children, index, env, depth=0):
        key = self.context.children_key(inner, children, index, env, self._flag)
        if key is None:
            return _TreeMatcher._match_child_star(
                self, inner, children, index, env, depth
            )
        return self._memoized(
            self.context.star_memo,
            key,
            lambda: _TreeMatcher._match_child_star(
                self, inner, children, index, env, depth
            ),
        )

    def nullable(self, tp, env, depth=0):
        key = self.context.null_key(tp, env)
        if key is None:
            return _TreeMatcher.nullable(self, tp, env, depth)
        cached = self.context.null_memo.get(key, _MISSING)
        if cached is not _MISSING:
            self.memo_hits += 1
            return cached
        self.memo_misses += 1
        result = _TreeMatcher.nullable(self, tp, env, depth)
        self.context.null_memo[key] = result
        self.context.memo_cells += 1
        return result


class MatchContextRegistry:
    """Per-query context sharing: one memo table per (pattern, tree) pair.

    The interpreter arms one of these (via :func:`match_scope`) around a
    whole evaluation, so the split/sub_select probing operators the
    physical layer fuses over a candidate stream — and any other
    operator matching the same pattern against the same tree — all hit
    one context instead of rebuilding tables per ``next()`` pull.
    """

    def __init__(self, db: "Database | None" = None) -> None:
        self.db = db
        self._contexts: dict[tuple, TreeMatchContext] = {}

    def context_for(
        self,
        pattern: TreePattern,
        tree: AquaTree,
        bitmap: PredicateBitmap | None = None,
        position_maps: tuple[dict[int, int], dict[int, int]] | None = None,
    ) -> TreeMatchContext:
        key = (
            id(tree),
            pattern.root_anchor,
            pattern.leaf_anchor,
            pattern.body.describe(),
        )
        context = self._contexts.get(key)
        if context is None or context.tree is not tree:
            column_source = None
            if bitmap is None and self.db is not None:
                from ..storage.columnar import columnar_source_for

                column_source = columnar_source_for(self.db, tree)
                if column_source is not None and position_maps is None:
                    position_maps = column_source.position_maps()
            context = TreeMatchContext(
                pattern,
                tree,
                bitmap=bitmap,
                column_source=column_source,
                position_maps=position_maps,
            )
            self._contexts[key] = context
        return context

    def memo_cells(self) -> int:
        return sum(context.memo_cells for context in self._contexts.values())


def prime_match_context(
    pattern: TreePattern,
    tree: AquaTree,
    bitmap: PredicateBitmap | None = None,
    position_maps: tuple[dict[int, int], dict[int, int]] | None = None,
) -> TreeMatchContext | None:
    """Pre-register a shared context for ``(pattern, tree)``, if possible.

    The index-probing operators call this right after their anchor probe
    with the tree index's predicate-outcome bitmap, so the context that
    serves the whole candidate stream (and any later operator on the
    same pair) shares fills with the probe's own re-checks.  Passing the
    index's ``position_maps`` as well saves the context's own O(n)
    position-interning walk.  A no-op (returns ``None``) when no
    registry is armed or the backtrack engine is selected.
    """
    from .tree_match import tree_engine

    registry = current_registry()
    if registry is None or tree_engine() != "memo":
        return None
    return registry.context_for(
        pattern, tree, bitmap=bitmap, position_maps=position_maps
    )


_active = threading.local()


def current_registry() -> MatchContextRegistry | None:
    """The registry armed on this thread, or ``None`` (standalone mode)."""
    return getattr(_active, "registry", None)


@contextmanager
def match_scope(db: "Database | None" = None) -> Iterator[MatchContextRegistry]:
    """Arm a per-query :class:`MatchContextRegistry` for this thread.

    The outermost scope wins (mirroring ``guardrails.guarded``): the
    interpreter opens one per evaluation, and nested engine entry points
    reuse it.  A fresh scope also arms
    :func:`repro.storage.tree_index.scoped_bitmaps`, giving the query
    predicate-outcome bitmaps private to this scope: two identical runs
    report identical work, and — unlike the old cross-thread
    ``reset_predicate_bitmaps()`` — a query on one pool thread can
    neither clobber nor inherit the bitmap state of a query running (or
    previously run) on another.  The previous registry is restored on
    exit even when the query raises (the ``ResourceExhaustedError``
    unwind path included), so nothing bleeds into later queries
    scheduled on the same pool thread.
    """
    from ..storage.tree_index import scoped_bitmaps

    active = getattr(_active, "registry", None)
    if active is not None:
        yield active
        return
    registry = MatchContextRegistry(db)
    previous = active
    _active.registry = registry
    try:
        with scoped_bitmaps():
            yield registry
    finally:
        _active.registry = previous
