"""Shared tokenizer for list- and tree-pattern notation.

Pattern text mixes the structural notation of §2 with the pattern
metacharacters of §3:

========  =====================================================
token     meaning
========  =====================================================
``[ ]``   list pattern delimiters
``[[ ]]`` grouping (also written ``⟦ ⟧`` in the paper)
``( )``   tree children list
``*``     Kleene closure (``*@label`` on trees)
``+``     one-or-more (``+@label`` on trees)
``|``     disjunction
``?``     the always-true alphabet-predicate
``!``     prune prefix (§3.4)
``^``     start anchor / ``⊤`` root anchor
``$``     end anchor / ``⊥`` leaf anchor
``@lbl``  concatenation point ``α``/``αlbl``
``{...}`` an embedded alphabet-predicate in the §3.1 text syntax
symbol    resolved to an alphabet-predicate by the caller
========  =====================================================

Symbols follow the compact/word-mode convention of
:mod:`repro.core.notation`: with no whitespace anywhere, all-lowercase
alphabetic runs split into single-character symbols (``[abc]``); any
whitespace or comma switches to whole-word symbols (``[A B C]``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.notation import use_word_mode
from ..errors import NotationError

_SINGLE_CHARS = {
    "*": "star",
    "+": "plus",
    "|": "pipe",
    "?": "any",
    "!": "bang",
    "^": "top",
    "$": "bottom",
    "(": "lparen",
    ")": "rparen",
    ".": "compose",
    "∘": "compose",
    "⊤": "top",
    "⊥": "bottom",
    "⟦": "dlbracket",
    "⟧": "drbracket",
}


@dataclass(frozen=True)
class PatternToken:
    kind: str
    text: str
    position: int


def tokenize_pattern(text: str) -> list[PatternToken]:
    word_mode = use_word_mode(text)
    tokens: list[PatternToken] = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c.isspace() or c == ",":
            i += 1
            continue
        if c == "[":
            if i + 1 < n and text[i + 1] == "[":
                tokens.append(PatternToken("dlbracket", "[[", i))
                i += 2
            else:
                tokens.append(PatternToken("lbracket", "[", i))
                i += 1
            continue
        if c == "]":
            if i + 1 < n and text[i + 1] == "]":
                tokens.append(PatternToken("drbracket", "]]", i))
                i += 2
            else:
                tokens.append(PatternToken("rbracket", "]", i))
                i += 1
            continue
        if c in _SINGLE_CHARS:
            tokens.append(PatternToken(_SINGLE_CHARS[c], c, i))
            i += 1
            continue
        if c == "@":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            tokens.append(PatternToken("alpha", text[i + 1 : j], i))
            i = j
            continue
        if c == "{":
            depth = 1
            j = i + 1
            while j < n and depth:
                if text[j] == "{":
                    depth += 1
                elif text[j] == "}":
                    depth -= 1
                j += 1
            if depth:
                raise NotationError("unterminated '{'", text, i)
            tokens.append(PatternToken("pred", text[i + 1 : j - 1], i))
            i = j
            continue
        if c in "'\"":
            end = text.find(c, i + 1)
            if end == -1:
                raise NotationError("unterminated quote", text, i)
            tokens.append(PatternToken("sym", text[i + 1 : end], i))
            i = end + 1
            continue
        if c.isalnum() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            run = text[i:j]
            if not word_mode and len(run) > 1 and run.isalpha() and run.islower():
                for offset, char in enumerate(run):
                    tokens.append(PatternToken("sym", char, i + offset))
            else:
                tokens.append(PatternToken("sym", run, i))
            i = j
            continue
        raise NotationError(f"unexpected character {c!r} in pattern", text, i)
    return tokens


class PatternTokenStream:
    """Cursor over a token list with the usual peek/next/expect protocol."""

    def __init__(self, tokens: list[PatternToken], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0

    def peek(self) -> PatternToken | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def peek_at(self, offset: int) -> PatternToken | None:
        index = self._index + offset
        if index < len(self._tokens):
            return self._tokens[index]
        return None

    def next(self) -> PatternToken:
        token = self.peek()
        if token is None:
            raise NotationError("unexpected end of pattern", self._text, len(self._text))
        self._index += 1
        return token

    def expect(self, kind: str) -> PatternToken:
        token = self.next()
        if token.kind != kind:
            raise NotationError(
                f"expected {kind} but found {token.text!r}", self._text, token.position
            )
        return token

    def match(self, kind: str) -> PatternToken | None:
        token = self.peek()
        if token is not None and token.kind == kind:
            return self.next()
        return None

    # The pattern delimiter `[` and the grouping digraph `[[` collide when
    # a group starts a bracketed pattern (`[[[a]]*]` is outer-`[` + group
    # `[[a]]` + `*` + `]`).  The helpers below let parsers peel single
    # brackets off digraph tokens and reassemble digraphs from adjacent
    # singles, so both readings are available.

    def open_bracket_count(self) -> int:
        """Total ``[`` characters in the stream (digraphs count twice)."""
        total = 0
        for token in self._tokens:
            if token.kind == "lbracket":
                total += 1
            elif token.kind == "dlbracket":
                total += 2
        return total

    def match_single_open(self) -> bool:
        """Consume one ``[``, splitting a ``[[`` token if necessary."""
        token = self.peek()
        if token is None:
            return False
        if token.kind == "lbracket":
            self.next()
            return True
        if token.kind == "dlbracket":
            self._tokens[self._index] = PatternToken("lbracket", "[", token.position + 1)
            return True
        return False

    def expect_single_close(self, text: str = "") -> None:
        """Consume one ``]``, splitting a ``]]`` token if necessary."""
        token = self.peek()
        if token is not None and token.kind == "drbracket":
            self._tokens[self._index] = PatternToken("rbracket", "]", token.position + 1)
            return
        self.expect("rbracket")

    def at_group_open(self) -> bool:
        """Is the cursor at a ``[[`` (digraph or adjacent singles)?"""
        token = self.peek()
        if token is None:
            return False
        if token.kind == "dlbracket":
            return True
        after = self.peek_at(1)
        return (
            token.kind == "lbracket"
            and after is not None
            and after.kind == "lbracket"
            and after.position == token.position + 1
        )

    def match_group_open(self) -> bool:
        """Consume ``[[`` — a digraph token or two adjacent singles."""
        token = self.peek()
        if token is None:
            return False
        if token.kind == "dlbracket":
            self.next()
            return True
        after = self.peek_at(1)
        if (
            token.kind == "lbracket"
            and after is not None
            and after.kind == "lbracket"
            and after.position == token.position + 1
        ):
            self.next()
            self.next()
            return True
        return False

    def expect_group_close(self) -> None:
        """Consume ``]]`` — a digraph token or two adjacent singles."""
        token = self.peek()
        if token is not None and token.kind == "drbracket":
            self.next()
            return
        after = self.peek_at(1)
        if (
            token is not None
            and token.kind == "rbracket"
            and after is not None
            and after.kind == "rbracket"
            and after.position == token.position + 1
        ):
            self.next()
            self.next()
            return
        raise NotationError(
            "expected ']]' to close a group",
            self._text,
            token.position if token is not None else len(self._text),
        )

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    @property
    def text(self) -> str:
        return self._text
