"""Brzozowski derivatives for list patterns (paper reference [4]).

The paper anchors its list-pattern language in the classical regular
expression literature and cites Brzozowski's derivatives directly.  A
derivative ``D_x(p)`` is the pattern matching exactly the tails of the
``p``-matches that begin with ``x``; membership testing is then just
iterated differentiation followed by a nullability check.

With a predicate alphabet the derivative is taken with respect to a
*concrete object*: each atom resolves to ε or ∅ depending on whether the
object satisfies it.  Smart constructors keep the derivative small.  The
suite uses this engine as a third independent implementation of the
pattern semantics.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import PatternError
from .list_ast import (
    EPSILON,
    Atom,
    Concat,
    Epsilon,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
)


class Empty(ListPatternNode):
    """∅ — the pattern with the empty language (derivative-internal)."""

    def nullable(self) -> bool:
        return False

    def atoms(self):  # type: ignore[override]
        return iter(())

    def required_atoms(self):  # type: ignore[override]
        return frozenset()

    def min_length(self) -> int:
        return 0

    def max_length(self) -> int | None:
        return 0

    def describe(self) -> str:
        return "∅"


#: Shared ∅ instance.
EMPTY = Empty()


def _is_empty(node: ListPatternNode) -> bool:
    return isinstance(node, Empty)


def _is_epsilon(node: ListPatternNode) -> bool:
    return isinstance(node, Epsilon)


def _concat(a: ListPatternNode, b: ListPatternNode) -> ListPatternNode:
    if _is_empty(a) or _is_empty(b):
        return EMPTY
    if _is_epsilon(a):
        return b
    if _is_epsilon(b):
        return a
    return Concat([a, b])


def _union(a: ListPatternNode, b: ListPatternNode) -> ListPatternNode:
    if _is_empty(a):
        return b
    if _is_empty(b):
        return a
    if a == b:
        return a
    return Union([a, b])


def derivative(node: ListPatternNode, value: Any) -> ListPatternNode:
    """``D_value(node)``: the residual pattern after consuming ``value``."""
    if isinstance(node, (Empty, Epsilon)):
        return EMPTY
    if isinstance(node, Atom):
        return EPSILON if node.predicate(value) else EMPTY
    if isinstance(node, Concat):
        if not node.parts:
            return EMPTY
        head, *rest = node.parts
        tail: ListPatternNode = Concat(list(rest)) if len(rest) > 1 else (rest[0] if rest else EPSILON)
        result = _concat(derivative(head, value), tail)
        if head.nullable():
            result = _union(result, derivative(tail, value))
        return result
    if isinstance(node, Union):
        result: ListPatternNode = EMPTY
        for alternative in node.alternatives:
            result = _union(result, derivative(alternative, value))
        return result
    if isinstance(node, Star):
        return _concat(derivative(node.inner, value), Star(node.inner))
    if isinstance(node, Plus):
        return derivative(node.desugar(), value)
    if isinstance(node, Prune):
        # Language-transparent, like the automaton engines.
        return derivative(node.inner, value)
    raise PatternError(f"cannot differentiate {node!r}")


def deriv_accepts(pattern: ListPattern | ListPatternNode, values: Sequence[Any]) -> bool:
    """Language membership by iterated differentiation."""
    node = pattern.body if isinstance(pattern, ListPattern) else pattern
    for value in values:
        node = derivative(node, value)
        if _is_empty(node):
            return False
    return node.nullable()


def deriv_find_spans(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """All ``(start, end)`` spans via derivatives (anchor-aware)."""
    n = len(values)
    if starts is None:
        candidate_starts: Sequence[int] = (0,) if pattern.anchor_start else range(n + 1)
    else:
        candidate_starts = sorted(set(starts))
        if pattern.anchor_start:
            candidate_starts = [s for s in candidate_starts if s == 0]
    spans: list[tuple[int, int]] = []
    for start in candidate_starts:
        if start > n:
            continue
        node = pattern.body
        position = start
        if node.nullable() and not (pattern.anchor_end and position != n):
            spans.append((start, position))
        while position < n:
            node = derivative(node, values[position])
            position += 1
            if _is_empty(node):
                break
            if node.nullable() and not (pattern.anchor_end and position != n):
                spans.append((start, position))
    return sorted(set(spans))
