"""Decision procedures for list patterns: equivalence and containment.

The rewrite framework of [31] needs to know when one pattern can replace
another.  Because list patterns are regular expressions over a *finite
set of alphabet-predicates*, the classical product construction decides
these questions exactly: an input element is fully characterized by its
**outcome vector** — which of the patterns' atom predicates it satisfies
— so the effective alphabet is the (finite) set of boolean vectors, and
language questions reduce to a reachability search over pairs of
determinized states.

* :func:`patterns_equivalent` — ``L(p) = L(q)``;
* :func:`pattern_subsumes` — ``L(p) ⊇ L(q)``;
* :func:`pattern_language_empty` — ``L(p) = ∅`` (e.g. after the §3.4
  alphabet translation against a universe that satisfies nothing);
* :func:`distinguishing_vector` — a witness word (as outcome vectors)
  accepted by exactly one of the two patterns, for diagnostics.

Semantics note: equivalence is over *abstract* predicate outcomes.  Two
patterns equivalent here are equivalent over every database; patterns
that differ only on unrealizable vectors (e.g. an element satisfying
both ``x = 'a'`` and ``x = 'b'``) may still behave identically in
practice — this procedure is sound for rewrites, conservatively strict.
"""

from __future__ import annotations

from itertools import product as cartesian_product
from typing import Sequence

from ..errors import PatternError
from ..predicates.alphabet import AlphabetPredicate
from .list_ast import ListPattern, ListPatternNode
from .nfa import NFA, compile_nfa


def _as_node(pattern: "ListPattern | ListPatternNode") -> ListPatternNode:
    if isinstance(pattern, ListPattern):
        if pattern.anchor_start or pattern.anchor_end:
            raise PatternError(
                "equivalence is defined on pattern bodies; anchors restrict"
                " placement, not language"
            )
        return pattern.body
    return pattern


class _VectorDFA:
    """Lazy determinization of an NFA over shared outcome vectors."""

    def __init__(self, nfa: NFA, atoms: Sequence[AlphabetPredicate]) -> None:
        self._nfa = nfa
        atom_index = {a: i for i, a in enumerate(atoms)}
        self._arcs: list[list[tuple[int, int]]] = [
            [(atom_index[predicate], target) for predicate, target in arcs]
            for arcs in nfa.transitions
        ]
        self.start = nfa.eps_closure([nfa.start])

    def accepting(self, states: frozenset[int]) -> bool:
        return self._nfa.accept in states

    def step(self, states: frozenset[int], vector: tuple[bool, ...]) -> frozenset[int]:
        moved: set[int] = set()
        for state in states:
            for slot, target in self._arcs[state]:
                if vector[slot]:
                    moved.add(target)
        if not moved:
            return frozenset()
        return self._nfa.eps_closure(moved)


def _shared_atoms(
    p: ListPatternNode, q: ListPatternNode
) -> list[AlphabetPredicate]:
    atoms: list[AlphabetPredicate] = []
    for node in (p, q):
        for atom in node.atoms():
            if atom not in atoms:
                atoms.append(atom)
    return atoms


_MAX_ATOMS = 14


def _vectors(atoms: Sequence[AlphabetPredicate]) -> list[tuple[bool, ...]]:
    """All semantically possible outcome vectors.

    The one predicate whose outcome is knowable abstractly is the
    always-true ``?``: its slot is pinned True (a vector with ``?``
    False describes no object).  Other predicate combinations are kept
    even when mutually exclusive in practice — see the module note on
    conservative strictness.
    """
    from ..predicates.alphabet import TruePredicate

    choices = [
        ((True,) if isinstance(atom, TruePredicate) else (False, True))
        for atom in atoms
    ]
    return [tuple(v) for v in cartesian_product(*choices)]


def distinguishing_vector(
    p: "ListPattern | ListPatternNode", q: "ListPattern | ListPatternNode"
) -> list[tuple[bool, ...]] | None:
    """A word (sequence of outcome vectors) accepted by exactly one of
    ``p``/``q``, or None when the patterns are equivalent."""
    p_node, q_node = _as_node(p), _as_node(q)
    atoms = _shared_atoms(p_node, q_node)
    if len(atoms) > _MAX_ATOMS:
        raise PatternError(
            f"equivalence over {len(atoms)} distinct predicates is too large"
            f" (max {_MAX_ATOMS})"
        )
    dfa_p = _VectorDFA(compile_nfa(p_node), atoms)
    dfa_q = _VectorDFA(compile_nfa(q_node), atoms)

    start = (dfa_p.start, dfa_q.start)
    seen = {start}
    frontier: list[tuple[tuple[frozenset[int], frozenset[int]], list]] = [(start, [])]
    vectors = _vectors(atoms)
    while frontier:
        (sp, sq), path = frontier.pop()
        if dfa_p.accepting(sp) != dfa_q.accepting(sq):
            return path
        for vector in vectors:
            np_, nq = dfa_p.step(sp, vector), dfa_q.step(sq, vector)
            if not np_ and not nq:
                continue
            pair = (np_, nq)
            if pair not in seen:
                seen.add(pair)
                frontier.append((pair, path + [vector]))
    return None


def patterns_equivalent(
    p: "ListPattern | ListPatternNode", q: "ListPattern | ListPatternNode"
) -> bool:
    """``L(p) == L(q)`` over abstract predicate outcomes."""
    return distinguishing_vector(p, q) is None


def pattern_subsumes(
    p: "ListPattern | ListPatternNode", q: "ListPattern | ListPatternNode"
) -> bool:
    """``L(p) ⊇ L(q)``: every ``q``-word is a ``p``-word."""
    p_node, q_node = _as_node(p), _as_node(q)
    atoms = _shared_atoms(p_node, q_node)
    if len(atoms) > _MAX_ATOMS:
        raise PatternError(
            f"containment over {len(atoms)} distinct predicates is too large"
            f" (max {_MAX_ATOMS})"
        )
    dfa_p = _VectorDFA(compile_nfa(p_node), atoms)
    dfa_q = _VectorDFA(compile_nfa(q_node), atoms)

    start = (dfa_p.start, dfa_q.start)
    seen = {start}
    frontier = [start]
    vectors = _vectors(atoms)
    while frontier:
        sp, sq = frontier.pop()
        if dfa_q.accepting(sq) and not dfa_p.accepting(sp):
            return False
        for vector in vectors:
            nq = dfa_q.step(sq, vector)
            if not nq:
                continue  # q rejects all extensions: nothing to contain
            np_ = dfa_p.step(sp, vector)
            pair = (np_, nq)
            if pair not in seen:
                seen.add(pair)
                frontier.append(pair)
    return True


def pattern_language_empty(pattern: "ListPattern | ListPatternNode") -> bool:
    """Is the pattern's language empty over abstract outcomes?

    (For patterns built from satisfiable predicates, emptiness only
    arises through ∅ leaves introduced by translations.)
    """
    node = _as_node(pattern)
    atoms = [a for a in _shared_atoms(node, node)]
    if len(atoms) > _MAX_ATOMS:
        raise PatternError("emptiness check over too many predicates")
    dfa = _VectorDFA(compile_nfa(node), atoms)
    seen = {dfa.start}
    frontier = [dfa.start]
    vectors = _vectors(atoms)
    while frontier:
        states = frontier.pop()
        if dfa.accepting(states):
            return False
        for vector in vectors:
            nxt = dfa.step(states, vector)
            if nxt and nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return True
