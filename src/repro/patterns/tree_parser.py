"""Parser for tree-pattern notation (paper §3.3).

Examples (ASCII renderings of the paper's patterns)::

    Mat(? Ed)                        # Figure 4's running example
    Brazil(!?* USA !?*)              # the split pattern of Figure 4
    printf(?* LargeData ?* LargeData ?*)   # §5, variable arity
    [[a(@1 @2)]] .@1 [[b(d(fg)e)]] .@2 c   # Figure 1 concatenation
    [[a(b c @)]]*@                   # Figure 2 self-concatenation
    ^d(e(h i) j)                     # ⊤-anchored (the split rewrite)
    b(d e)$                          # ⊥-anchored (leaves must align)

Grammar::

    pattern      := '^'? alternation '$'?
    alternation  := chain ( '|' chain )*
    chain        := unit ( '.' '@lbl' unit )*           -- tp ∘α tp
    unit         := '!'? primary ( '*@lbl' | '+@lbl' )*
    primary      := head [ '(' children ')' ] | '@lbl' | '[[' alternation ']]'
    head         := '?' | SYMBOL | '{' predicate-text '}'
    children     := cseq ( '|' cseq )*
    cseq         := citem*
    citem        := '!'? primary ( '*@lbl' | '+@lbl' )* ( '*' | '+' )*

The two closure forms are distinguished lexically: a ``*``/``+``
*immediately* followed by ``@`` (no space) is the subscripted tree
closure ``*α``; a bare ``*``/``+`` inside a children list is sibling
repetition.  ``a()`` demands a childless node; bare ``a`` matches a node
and implicitly prunes its children (§4's ``split(d, ...)``).
"""

from __future__ import annotations

from typing import Callable

from ..core.concat import ConcatPoint
from ..errors import NotationError, PatternError
from ..storage import stats as stats_mod
from ..predicates.alphabet import ANY, AlphabetPredicate, SymbolEquals
from ..predicates.parser import parse_predicate
from .pattern_tokens import PatternToken, PatternTokenStream, tokenize_pattern
from .tree_ast import (
    CHILD_EPSILON,
    ChildAlt,
    ChildPatternNode,
    ChildPlus,
    ChildSeq,
    ChildStar,
    PointAtom,
    TreeAtom,
    TreeConcat,
    TreePattern,
    TreePatternNode,
    TreePlus,
    TreePrune,
    TreeStar,
    TreeUnion,
)

SymbolResolver = Callable[[str], AlphabetPredicate]


def default_resolver(symbol: str) -> AlphabetPredicate:
    return SymbolEquals(symbol)


def parse_tree_pattern(text: str, resolver: SymbolResolver | None = None) -> TreePattern:
    """Parse tree-pattern text into a :class:`TreePattern`."""
    # Credited to any activated sink so EXPLAIN ANALYZE (and the plan
    # cache's acceptance check) can count compilations on the cold path
    # and prove the warm path skips them.
    stats_mod.emit("pattern_compilations")
    resolver = resolver or default_resolver
    stream = PatternTokenStream(tokenize_pattern(text), text)
    root_anchor = stream.match("top") is not None
    body = _alternation(stream, resolver)
    leaf_anchor = stream.match("bottom") is not None
    if not stream.exhausted:
        leftover = stream.peek()
        assert leftover is not None
        raise NotationError("trailing input after tree pattern", text, leftover.position)
    return TreePattern(body, root_anchor=root_anchor, leaf_anchor=leaf_anchor)


def _alternation(stream: PatternTokenStream, resolver: SymbolResolver) -> TreePatternNode:
    alternatives = [_chain(stream, resolver)]
    while stream.match("pipe") is not None:
        alternatives.append(_chain(stream, resolver))
    if len(alternatives) == 1:
        return alternatives[0]
    return TreeUnion(alternatives)


def _chain(stream: PatternTokenStream, resolver: SymbolResolver) -> TreePatternNode:
    node = _unit(stream, resolver)
    while stream.match("compose") is not None:
        point_token = stream.expect("alpha")
        right = _unit(stream, resolver)
        node = TreeConcat(node, ConcatPoint(point_token.text), right)
    return node


def _tree_postfixes(
    stream: PatternTokenStream, node: TreePatternNode
) -> TreePatternNode:
    """Apply subscripted closures ``*@lbl`` / ``+@lbl`` (adjacency-checked)."""
    while True:
        token = stream.peek()
        if token is None or token.kind not in ("star", "plus"):
            return node
        if not _adjacent_alpha(stream):
            return node
        stream.next()
        point_token = stream.expect("alpha")
        point = ConcatPoint(point_token.text)
        if token.kind == "star":
            node = TreeStar(node, point)
        else:
            node = TreePlus(node, point)


def _adjacent_alpha(stream: PatternTokenStream) -> bool:
    """Is the star/plus at the cursor immediately followed by ``@``?"""
    star = stream.peek()
    assert star is not None
    after = stream.peek_at(1)
    return (
        after is not None
        and after.kind == "alpha"
        and after.position == star.position + 1
    )


def _unit(stream: PatternTokenStream, resolver: SymbolResolver) -> TreePatternNode:
    pruned = stream.match("bang") is not None
    node = _primary(stream, resolver)
    node = _tree_postfixes(stream, node)
    if pruned:
        node = TreePrune(node)
    return node


def _primary(stream: PatternTokenStream, resolver: SymbolResolver) -> TreePatternNode:
    if stream.match_group_open():
        inner = _alternation(stream, resolver)
        stream.expect_group_close()
        return inner
    token = stream.next()
    if token.kind == "alpha":
        return PointAtom(ConcatPoint(token.text))
    if token.kind == "any":
        predicate: AlphabetPredicate = ANY
    elif token.kind == "sym":
        predicate = resolver(token.text)
    elif token.kind == "pred":
        predicate = parse_predicate(token.text)
    else:
        raise NotationError(
            f"unexpected {token.text!r} in tree pattern", stream.text, token.position
        )
    children: ChildPatternNode | TreePatternNode | None = None
    if stream.match("lparen") is not None:
        children = _children(stream, resolver)
        stream.expect("rparen")
    return TreeAtom(predicate, children)


def _children(
    stream: PatternTokenStream, resolver: SymbolResolver
) -> ChildPatternNode | TreePatternNode:
    alternatives = [_cseq(stream, resolver)]
    while stream.match("pipe") is not None:
        alternatives.append(_cseq(stream, resolver))
    if len(alternatives) == 1:
        return alternatives[0]
    return ChildAlt(alternatives)


_CITEM_STARTS = {"any", "sym", "pred", "alpha", "bang"}


def _cseq(
    stream: PatternTokenStream, resolver: SymbolResolver
) -> ChildPatternNode | TreePatternNode:
    items: list[ChildPatternNode | TreePatternNode] = []
    while True:
        token = stream.peek()
        if token is None:
            break
        if token.kind not in _CITEM_STARTS and not stream.at_group_open():
            break
        items.append(_citem(stream, resolver))
    if not items:
        return CHILD_EPSILON
    if len(items) == 1:
        return items[0]
    return ChildSeq(items)


def _citem(
    stream: PatternTokenStream, resolver: SymbolResolver
) -> ChildPatternNode | TreePatternNode:
    pruned = stream.match("bang") is not None
    node: ChildPatternNode | TreePatternNode = _primary(stream, resolver)
    node = _tree_postfixes(stream, node)  # type: ignore[arg-type]
    # Concatenation chains are valid wherever a tree pattern is —
    # including as a child-list atom: x([[y(@2)]]*@2 .@2 @1).
    while stream.match("compose") is not None:
        point_token = stream.expect("alpha")
        right = _unit(stream, resolver)
        node = TreeConcat(node, ConcatPoint(point_token.text), right)  # type: ignore[arg-type]
    if pruned:
        node = TreePrune(node)  # type: ignore[arg-type]
    while True:
        token = stream.peek()
        if token is None or token.kind not in ("star", "plus"):
            break
        if _adjacent_alpha(stream):
            raise NotationError(
                "tree closure *@ must precede the prune/list postfixes",
                stream.text,
                token.position,
            )
        stream.next()
        if token.kind == "star":
            node = ChildStar(node)
        else:
            node = ChildPlus(node)
    return node


def tree_pattern(
    source: "str | TreePattern | TreePatternNode | AlphabetPredicate",
    resolver: SymbolResolver | None = None,
) -> TreePattern:
    """Coerce any reasonable input into a :class:`TreePattern`.

    Accepts pattern text, a ready pattern, a bare AST node, or a single
    alphabet-predicate (which becomes a bare single-node pattern).
    """
    if isinstance(source, TreePattern):
        return source
    if isinstance(source, TreePatternNode):
        return TreePattern(source)
    if isinstance(source, AlphabetPredicate):
        return TreePattern(TreeAtom(source, None))
    if isinstance(source, str):
        return parse_tree_pattern(source, resolver)
    raise PatternError(f"cannot interpret {source!r} as a tree pattern")
