"""Tree pattern AST (paper §3.3).

Tree patterns generalize regular expressions to trees.  The paper's
grammar (adapted)::

    tp  ::= alphabet-predicate | ? | α            -- single-node patterns
          | ap ( tlp )                             -- root + children
          | tp | tp                                -- disjunction
          | tp ∘α tp                               -- concatenation at α
          | tp *α | tp +α                          -- iterative self-concat
          | ⊤tp | tp⊥                              -- root / leaf anchors
          | ! tp                                   -- prune (§3.4)

    tlp ::= tp | tlp tlp | tlp '|' tlp | tlp* | tlp+ | ε

Two different closures coexist and must not be confused:

* **tree closure** ``tp*α`` (subscripted by a concatenation point):
  vertical pumping — ``L(tp*α) = {NULL} ∪ L(tp ∘α tp*α)``;
* **child-list closure** ``tlp*`` (unsubscripted, only inside a
  children list): horizontal sibling repetition, ordinary list Kleene
  closure whose alphabet is tree patterns (this is the ``?*`` in the
  paper's ``printf(?* LargeData ?* LargeData ?*)`` query).

Concatenation is kept lazy (a :class:`TreeConcat` node) rather than
substituted eagerly, because a concatenation point inside a closure is
the recursion hook — the matcher threads an environment mapping points
to continuation patterns.

The children list of a :class:`TreeAtom` is significant even when empty:

* ``children=None`` (bare ``a``) — matches a node and implicitly prunes
  all its actual children as *descendants of the match* (this is why
  ``split(d, ...)`` reattaches via ``y ∘α1,α2 z`` in §4);
* ``children=CHILD_EPSILON`` (written ``a()``) — requires the node to
  have no children at all.

Child list patterns are matched against the node's **entire** child
sequence (extra children are absorbed only by explicit ``?*``), per the
``printf`` example.
"""

from __future__ import annotations

from typing import Iterator

from ..core.concat import ConcatPoint
from ..errors import PatternError
from ..predicates.alphabet import AlphabetPredicate


from .list_ast import atom_text as _pred_text


# ---------------------------------------------------------------------------
# Child-list pattern nodes (the tlp language)
# ---------------------------------------------------------------------------


class ChildPatternNode:
    """Base class for child-list (tlp) pattern nodes."""

    def describe(self) -> str:
        raise NotImplementedError

    def walk(self) -> Iterator["ChildPatternNode | TreePatternNode"]:
        yield self

    def __repr__(self) -> str:
        return f"ChildPattern<{self.describe()}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChildPatternNode):
            return self.describe() == other.describe()
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.describe()))


class ChildEpsilon(ChildPatternNode):
    """Matches an empty child sequence."""

    def describe(self) -> str:
        return "ε"


#: Shared empty-children pattern (the explicit ``a()``).
CHILD_EPSILON = ChildEpsilon()


class ChildSeq(ChildPatternNode):
    """Horizontal concatenation of child patterns."""

    def __init__(self, parts: list["ChildPatternNode | TreePatternNode"]) -> None:
        flattened: list[ChildPatternNode | TreePatternNode] = []
        for part in parts:
            if isinstance(part, ChildSeq):
                flattened.extend(part.parts)
            elif isinstance(part, ChildEpsilon):
                continue
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def describe(self) -> str:
        if not self.parts:
            return "ε"
        return " ".join(
            f"[[{p.describe()}]]" if isinstance(p, (ChildAlt, TreeUnion)) else p.describe()
            for p in self.parts
        )

    def walk(self) -> Iterator["ChildPatternNode | TreePatternNode"]:
        yield self
        for part in self.parts:
            yield from part.walk()


class ChildAlt(ChildPatternNode):
    """Disjunction of child-sequence patterns."""

    def __init__(self, alternatives: list["ChildPatternNode | TreePatternNode"]) -> None:
        if not alternatives:
            raise PatternError("child alternation needs at least one branch")
        self.alternatives = tuple(alternatives)

    def describe(self) -> str:
        return " | ".join(a.describe() for a in self.alternatives)

    def walk(self) -> Iterator["ChildPatternNode | TreePatternNode"]:
        yield self
        for alternative in self.alternatives:
            yield from alternative.walk()


class ChildStar(ChildPatternNode):
    """Sibling repetition ``tlp*`` (zero or more)."""

    def __init__(self, inner: "ChildPatternNode | TreePatternNode") -> None:
        self.inner = inner

    def describe(self) -> str:
        inner = self.inner.describe()
        if isinstance(self.inner, (ChildSeq, ChildAlt, TreeUnion)):
            inner = f"[[{inner}]]"
        return f"{inner}*"

    def walk(self) -> Iterator["ChildPatternNode | TreePatternNode"]:
        yield self
        yield from self.inner.walk()


class ChildPlus(ChildPatternNode):
    """Sibling repetition ``tlp+`` (one or more)."""

    def __init__(self, inner: "ChildPatternNode | TreePatternNode") -> None:
        self.inner = inner

    def describe(self) -> str:
        inner = self.inner.describe()
        if isinstance(self.inner, (ChildSeq, ChildAlt, TreeUnion)):
            inner = f"[[{inner}]]"
        return f"{inner}+"

    def walk(self) -> Iterator["ChildPatternNode | TreePatternNode"]:
        yield self
        yield from self.inner.walk()


# ---------------------------------------------------------------------------
# Tree pattern nodes (the tp language)
# ---------------------------------------------------------------------------


class TreePatternNode:
    """Base class for tree-pattern AST nodes."""

    def describe(self) -> str:
        raise NotImplementedError

    def walk(self) -> Iterator["ChildPatternNode | TreePatternNode"]:
        yield self

    def __repr__(self) -> str:
        return f"TreePattern<{self.describe()}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TreePatternNode):
            return self.describe() == other.describe()
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.describe()))

    # -- combinators --------------------------------------------------------

    def concat(self, point: ConcatPoint, other: "TreePatternNode") -> "TreeConcat":
        return TreeConcat(self, point, other)

    def star(self, point: ConcatPoint) -> "TreeStar":
        return TreeStar(self, point)

    def plus(self, point: ConcatPoint) -> "TreePlus":
        return TreePlus(self, point)

    def alt(self, other: "TreePatternNode") -> "TreeUnion":
        return TreeUnion([self, other])

    def prune(self) -> "TreePrune":
        return TreePrune(self)


class TreeAtom(TreePatternNode):
    """A node pattern: predicate plus an optional children list pattern."""

    def __init__(
        self,
        predicate: AlphabetPredicate,
        children: ChildPatternNode | TreePatternNode | None = None,
    ) -> None:
        self.predicate = predicate
        self.children = children

    def describe(self) -> str:
        head = _pred_text(self.predicate)
        if self.children is None:
            return head
        inner = "" if isinstance(self.children, ChildEpsilon) else self.children.describe()
        return f"{head}({inner})"

    def walk(self) -> Iterator[ChildPatternNode | TreePatternNode]:
        yield self
        if self.children is not None:
            yield from self.children.walk()


class PointAtom(TreePatternNode):
    """A concatenation point used as a single-node pattern.

    Unbound, it matches a labeled NULL in the data (§3.5); bound by an
    enclosing ``∘α`` / ``*α`` it stands for the continuation pattern.
    """

    def __init__(self, point: ConcatPoint) -> None:
        self.point = point

    def describe(self) -> str:
        return str(self.point)


class TreeUnion(TreePatternNode):
    def __init__(self, alternatives: list[TreePatternNode]) -> None:
        if not alternatives:
            raise PatternError("tree union needs at least one branch")
        flattened: list[TreePatternNode] = []
        for alternative in alternatives:
            if isinstance(alternative, TreeUnion):
                flattened.extend(alternative.alternatives)
            else:
                flattened.append(alternative)
        self.alternatives = tuple(flattened)

    def describe(self) -> str:
        return " | ".join(a.describe() for a in self.alternatives)

    def walk(self) -> Iterator[ChildPatternNode | TreePatternNode]:
        yield self
        for alternative in self.alternatives:
            yield from alternative.walk()


class TreeConcat(TreePatternNode):
    """``left ∘α right`` — lazy; the matcher binds ``α ↦ right``."""

    def __init__(self, left: TreePatternNode, point: ConcatPoint, right: TreePatternNode) -> None:
        self.left = left
        self.point = point
        self.right = right

    def describe(self) -> str:
        return f"[[{self.left.describe()}]] .{self.point} [[{self.right.describe()}]]"

    def walk(self) -> Iterator[ChildPatternNode | TreePatternNode]:
        yield self
        yield from self.left.walk()
        yield from self.right.walk()


class TreeStar(TreePatternNode):
    """Iterative self-concatenation ``tp*α`` (vertical pumping)."""

    def __init__(self, inner: TreePatternNode, point: ConcatPoint) -> None:
        self.inner = inner
        self.point = point

    def describe(self) -> str:
        return f"[[{self.inner.describe()}]]*{self.point}"

    def walk(self) -> Iterator[ChildPatternNode | TreePatternNode]:
        yield self
        yield from self.inner.walk()


class TreePlus(TreePatternNode):
    """``tp+α`` — one or more self-concatenations."""

    def __init__(self, inner: TreePatternNode, point: ConcatPoint) -> None:
        self.inner = inner
        self.point = point

    def describe(self) -> str:
        return f"[[{self.inner.describe()}]]+{self.point}"

    def walk(self) -> Iterator[ChildPatternNode | TreePatternNode]:
        yield self
        yield from self.inner.walk()


class TreePrune(TreePatternNode):
    """``!tp`` — match, then prune the whole data subtree at the match root.

    ``optional=True`` makes the prune match zero-or-one subtree (used
    internally by the list→tree pattern translation to absorb a list's
    tail; not expressible in the surface syntax).
    """

    def __init__(self, inner: TreePatternNode, optional: bool = False) -> None:
        if any(isinstance(n, TreePrune) for n in inner.walk()):
            raise PatternError("prune markers cannot nest")
        self.inner = inner
        self.optional = optional

    def describe(self) -> str:
        text = f"!{self.inner.describe()}"
        if self.optional:
            text += "«opt»"
        return text

    def walk(self) -> Iterator[ChildPatternNode | TreePatternNode]:
        yield self
        yield from self.inner.walk()


class TreePattern:
    """A complete tree pattern: body plus ``⊤`` / ``⊥`` anchors.

    * ``root_anchor`` (⊤, written ``^`` in text notation): the pattern may
      match only at the root of the input tree.
    * ``leaf_anchor`` (⊥, written ``$``): every *bare* pattern leaf must
      coincide with a data leaf (no implicit descendant pruning).
    """

    __slots__ = ("body", "root_anchor", "leaf_anchor")

    def __init__(
        self,
        body: TreePatternNode,
        root_anchor: bool = False,
        leaf_anchor: bool = False,
    ) -> None:
        self.body = body
        self.root_anchor = root_anchor
        self.leaf_anchor = leaf_anchor

    def describe(self) -> str:
        text = self.body.describe()
        if self.root_anchor:
            text = "^" + text
        if self.leaf_anchor:
            text = text + "$"
        return text

    def __repr__(self) -> str:
        return f"TreePattern<{self.describe()}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TreePattern):
            return self.describe() == other.describe()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("TreePattern", self.describe()))

    def anchored(self) -> "TreePattern":
        """The ``⊤`` version of this pattern (used by the split rewrite)."""
        return TreePattern(self.body, root_anchor=True, leaf_anchor=self.leaf_anchor)

    def concat(self, point: ConcatPoint, other: "TreePattern | TreePatternNode") -> "TreePattern":
        other_body = other.body if isinstance(other, TreePattern) else other
        return TreePattern(
            TreeConcat(self.body, point, other_body),
            root_anchor=self.root_anchor,
            leaf_anchor=self.leaf_anchor,
        )

    def contains_prune(self) -> bool:
        return any(isinstance(n, TreePrune) for n in self.body.walk())

    def atom_predicates(self) -> list[AlphabetPredicate]:
        """All alphabet-predicates mentioned, in preorder (with repeats)."""
        result: list[AlphabetPredicate] = []
        for node in self.body.walk():
            if isinstance(node, TreeAtom):
                result.append(node.predicate)
        return result

    def root_predicates(self) -> list[AlphabetPredicate]:
        """Predicates that can match the *root* of an instance.

        Used by the optimizer to pick an index anchor: every match root
        must satisfy one of these.  Conservative (may return ``[]`` when
        the root is a closure or point, meaning "unknown").
        """
        return _root_predicates(self.body)


def _root_predicates(node: TreePatternNode) -> list[AlphabetPredicate]:
    if isinstance(node, TreeAtom):
        return [node.predicate]
    if isinstance(node, TreeUnion):
        result: list[AlphabetPredicate] = []
        for alternative in node.alternatives:
            sub = _root_predicates(alternative)
            if not sub:
                return []
            result.extend(sub)
        return result
    if isinstance(node, TreeConcat):
        return _root_predicates(node.left)
    if isinstance(node, TreePlus):
        return _root_predicates(node.inner)
    # TreeStar can be NULL; PointAtom / TreePrune roots are not usable.
    return []
