"""List pattern AST (paper §3.2).

List patterns are regular expressions whose alphabet is
*alphabet-predicates* (§3.1).  The constructors mirror the paper's
grammar::

    lp  ::= [ilp] | [[lp]]
    ilp ::= alphabet-predicate | ? | ilp+ | ilp* | [[ilp]] | lp ∘ lp
          | lp | lp            -- disjunction
          | ^lp | lp$          -- anchors

plus the ``!`` prune prefix from §3.4 ("the largest subtree rooted at the
node matching P's root [is] pruned from the result"; for lists the pruned
piece is a run of elements).

Every node knows how to report:

* ``nullable()`` — can it match the empty sequence,
* ``atoms()`` — the alphabet-predicates it mentions,
* ``required_atoms()`` — predicates that *every* match must satisfy
  somewhere (the optimizer's anchor-extraction hook),
* ``min_length()`` / ``max_length()`` — match-length bounds (``None`` for
  unbounded), used by the optimizer's cost model.

Nodes are immutable value objects; ``describe()`` round-trips through the
pattern parser for all constructs it can express.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import PatternError
from ..predicates.alphabet import ANY, AlphabetPredicate, SymbolEquals, TruePredicate


def atom_text(predicate: AlphabetPredicate) -> str:
    """Render a predicate atom in pattern syntax (round-trips through the
    pattern parsers): ``?`` for the true predicate, a bare/quoted symbol
    for :class:`SymbolEquals`, ``{...}`` for everything else."""
    if isinstance(predicate, TruePredicate):
        return "?"
    if isinstance(predicate, SymbolEquals) and isinstance(predicate.symbol, str):
        symbol = predicate.symbol
        if symbol and all(c.isalnum() or c == "_" for c in symbol):
            return symbol
        return f"'{symbol}'"
    return "{" + predicate.embed_text() + "}"


class ListPatternNode:
    """Base class for list-pattern AST nodes."""

    def nullable(self) -> bool:
        raise NotImplementedError

    def atoms(self) -> Iterator[AlphabetPredicate]:
        raise NotImplementedError

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        raise NotImplementedError

    def min_length(self) -> int:
        raise NotImplementedError

    def max_length(self) -> int | None:
        raise NotImplementedError

    def contains_prune(self) -> bool:
        return any(isinstance(n, Prune) for n in self.walk())

    def walk(self) -> Iterator["ListPatternNode"]:
        """Preorder traversal of the AST."""
        yield self

    def describe(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"ListPattern<{self.describe()}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ListPatternNode):
            return self.describe() == other.describe()
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.describe()))

    # -- combinators --------------------------------------------------------

    def then(self, other: "ListPatternNode") -> "Concat":
        """Concatenation ``self ∘ other``."""
        return Concat([self, other])

    def alt(self, other: "ListPatternNode") -> "Union":
        """Disjunction ``self | other``."""
        return Union([self, other])

    def star(self) -> "Star":
        return Star(self)

    def plus(self) -> "Plus":
        return Plus(self)

    def prune(self) -> "Prune":
        return Prune(self)


class Epsilon(ListPatternNode):
    """Matches the empty sequence.  Not in the surface grammar but needed
    as the identity of concatenation (e.g. as a star's zero case)."""

    def nullable(self) -> bool:
        return True

    def atoms(self) -> Iterator[AlphabetPredicate]:
        return iter(())

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        return frozenset()

    def min_length(self) -> int:
        return 0

    def max_length(self) -> int | None:
        return 0

    def describe(self) -> str:
        return "ε"


#: Shared empty-pattern instance.
EPSILON = Epsilon()


class Atom(ListPatternNode):
    """A single alphabet-predicate: matches exactly one element."""

    def __init__(self, predicate: AlphabetPredicate) -> None:
        self.predicate = predicate

    def nullable(self) -> bool:
        return False

    def atoms(self) -> Iterator[AlphabetPredicate]:
        yield self.predicate

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        return frozenset([self.predicate])

    def min_length(self) -> int:
        return 1

    def max_length(self) -> int | None:
        return 1

    def describe(self) -> str:
        return atom_text(self.predicate)


def any_element() -> Atom:
    """The metacharacter ``?`` (always TRUE)."""
    return Atom(ANY)


class Concat(ListPatternNode):
    """Concatenation ``lp1 ∘ lp2 ∘ ...`` (flattened)."""

    def __init__(self, parts: list[ListPatternNode]) -> None:
        flattened: list[ListPatternNode] = []
        for part in parts:
            if isinstance(part, Concat):
                flattened.extend(part.parts)
            elif isinstance(part, Epsilon):
                continue
            else:
                flattened.append(part)
        self.parts = tuple(flattened)

    def nullable(self) -> bool:
        return all(p.nullable() for p in self.parts)

    def atoms(self) -> Iterator[AlphabetPredicate]:
        for part in self.parts:
            yield from part.atoms()

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        result: frozenset[AlphabetPredicate] = frozenset()
        for part in self.parts:
            result |= part.required_atoms()
        return result

    def min_length(self) -> int:
        return sum(p.min_length() for p in self.parts)

    def max_length(self) -> int | None:
        total = 0
        for part in self.parts:
            part_max = part.max_length()
            if part_max is None:
                return None
            total += part_max
        return total

    def walk(self) -> Iterator[ListPatternNode]:
        yield self
        for part in self.parts:
            yield from part.walk()

    def describe(self) -> str:
        if not self.parts:
            return "ε"
        return " ".join(
            f"[[{p.describe()}]]" if isinstance(p, Union) else p.describe()
            for p in self.parts
        )


class Union(ListPatternNode):
    """Disjunction ``lp1 | lp2 | ...`` (flattened)."""

    def __init__(self, alternatives: list[ListPatternNode]) -> None:
        if not alternatives:
            raise PatternError("a union needs at least one alternative")
        flattened: list[ListPatternNode] = []
        for alternative in alternatives:
            if isinstance(alternative, Union):
                flattened.extend(alternative.alternatives)
            else:
                flattened.append(alternative)
        self.alternatives = tuple(flattened)

    def nullable(self) -> bool:
        return any(a.nullable() for a in self.alternatives)

    def atoms(self) -> Iterator[AlphabetPredicate]:
        for alternative in self.alternatives:
            yield from alternative.atoms()

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        # Only predicates required by *every* branch are required overall.
        sets = [a.required_atoms() for a in self.alternatives]
        result = sets[0]
        for s in sets[1:]:
            result &= s
        return result

    def min_length(self) -> int:
        return min(a.min_length() for a in self.alternatives)

    def max_length(self) -> int | None:
        total = 0
        for alternative in self.alternatives:
            alt_max = alternative.max_length()
            if alt_max is None:
                return None
            total = max(total, alt_max)
        return total

    def walk(self) -> Iterator[ListPatternNode]:
        yield self
        for alternative in self.alternatives:
            yield from alternative.walk()

    def describe(self) -> str:
        return " | ".join(a.describe() for a in self.alternatives)


class Star(ListPatternNode):
    """Kleene closure ``lp*`` — zero or more self-concatenations."""

    def __init__(self, inner: ListPatternNode) -> None:
        self.inner = inner

    def nullable(self) -> bool:
        return True

    def atoms(self) -> Iterator[AlphabetPredicate]:
        return self.inner.atoms()

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        return frozenset()  # zero iterations are allowed

    def min_length(self) -> int:
        return 0

    def max_length(self) -> int | None:
        if self.inner.max_length() == 0:
            return 0
        return None

    def walk(self) -> Iterator[ListPatternNode]:
        yield self
        yield from self.inner.walk()

    def describe(self) -> str:
        return f"[[{self.inner.describe()}]]*"


class Plus(ListPatternNode):
    """``lp+`` — one or more self-concatenations."""

    def __init__(self, inner: ListPatternNode) -> None:
        self.inner = inner

    def nullable(self) -> bool:
        return self.inner.nullable()

    def atoms(self) -> Iterator[AlphabetPredicate]:
        return self.inner.atoms()

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        return self.inner.required_atoms()

    def min_length(self) -> int:
        return self.inner.min_length()

    def max_length(self) -> int | None:
        if self.inner.max_length() == 0:
            return 0
        return None

    def walk(self) -> Iterator[ListPatternNode]:
        yield self
        yield from self.inner.walk()

    def describe(self) -> str:
        return f"[[{self.inner.describe()}]]+"

    def desugar(self) -> Concat:
        """``lp+`` = ``lp ∘ lp*``."""
        return Concat([self.inner, Star(self.inner)])


class Prune(ListPatternNode):
    """``!lp`` — matched but pruned from the returned result (§3.4).

    The pruned run is replaced by a fresh concatenation point ``αi`` in
    the match piece and handed to ``split``'s third component.
    """

    def __init__(self, inner: ListPatternNode) -> None:
        if inner.contains_prune():
            raise PatternError("prune markers cannot nest")
        self.inner = inner

    def nullable(self) -> bool:
        return self.inner.nullable()

    def atoms(self) -> Iterator[AlphabetPredicate]:
        return self.inner.atoms()

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        return self.inner.required_atoms()

    def min_length(self) -> int:
        return self.inner.min_length()

    def max_length(self) -> int | None:
        return self.inner.max_length()

    def walk(self) -> Iterator[ListPatternNode]:
        yield self
        yield from self.inner.walk()

    def describe(self) -> str:
        return f"![[{self.inner.describe()}]]"


class ListPattern:
    """A complete list pattern: body plus the ``^`` / ``$`` anchors.

    A bare body is floating (may match any sublist); ``^`` pins the match
    to the start of the list and ``$`` to the end (§3.2).
    """

    __slots__ = ("body", "anchor_start", "anchor_end")

    def __init__(
        self,
        body: ListPatternNode,
        anchor_start: bool = False,
        anchor_end: bool = False,
    ) -> None:
        self.body = body
        self.anchor_start = anchor_start
        self.anchor_end = anchor_end

    def describe(self) -> str:
        text = f"[{self.body.describe()}]"
        if self.anchor_start:
            text = "^" + text
        if self.anchor_end:
            text = text + "$"
        return text

    def __repr__(self) -> str:
        return f"ListPattern<{self.describe()}>"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ListPattern):
            return self.describe() == other.describe()
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("ListPattern", self.describe()))

    def contains_prune(self) -> bool:
        return self.body.contains_prune()

    def required_atoms(self) -> frozenset[AlphabetPredicate]:
        return self.body.required_atoms()

    def min_length(self) -> int:
        return self.body.min_length()

    def max_length(self) -> int | None:
        return self.body.max_length()


def atom(predicate: AlphabetPredicate) -> Atom:
    return Atom(predicate)


def seq(*parts: ListPatternNode) -> ListPatternNode:
    """Concatenate parts (``seq()`` is ε)."""
    if not parts:
        return EPSILON
    if len(parts) == 1:
        return parts[0]
    return Concat(list(parts))


def union(*alternatives: ListPatternNode) -> ListPatternNode:
    if len(alternatives) == 1:
        return alternatives[0]
    return Union(list(alternatives))
