"""Thompson construction of an ε-NFA from a list pattern.

The paper grounds its predicate language in classical regular-expression
theory ("the expressiveness and tractability of regular expressions is
well known", §1).  This module supplies the tractable half: an ε-NFA
whose transitions are labeled with alphabet-predicates, simulated in
O(|pattern| · |input|) per start position, independent of how ambiguous
the pattern is.  Prune markers are transparent here — the NFA answers
*language* questions (membership, spans); prune structure comes from the
backtracking engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

from ..errors import PatternError
from ..predicates.alphabet import AlphabetPredicate
from .list_ast import (
    Atom,
    Concat,
    Epsilon,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
)


@dataclass
class NFA:
    """An ε-NFA over alphabet-predicate labels.

    ``transitions[state]`` is a list of ``(predicate, target)`` pairs;
    ``epsilon[state]`` is a list of targets reachable for free.
    """

    start: int
    accept: int
    transitions: list[list[tuple[AlphabetPredicate, int]]] = field(default_factory=list)
    epsilon: list[list[int]] = field(default_factory=list)

    @property
    def state_count(self) -> int:
        return len(self.transitions)

    def atom_predicates(self) -> list[AlphabetPredicate]:
        """Distinct transition predicates, in first-use order."""
        seen: list[AlphabetPredicate] = []
        for arcs in self.transitions:
            for predicate, _ in arcs:
                if predicate not in seen:
                    seen.append(predicate)
        return seen

    # -- simulation ---------------------------------------------------------

    def eps_closure(self, states: Iterable[int]) -> frozenset[int]:
        stack = list(states)
        closure = set(stack)
        while stack:
            state = stack.pop()
            for target in self.epsilon[state]:
                if target not in closure:
                    closure.add(target)
                    stack.append(target)
        return frozenset(closure)

    def step(self, states: frozenset[int], value: Any) -> frozenset[int]:
        """One input element: predicate transitions then ε-closure."""
        moved: set[int] = set()
        for state in states:
            for predicate, target in self.transitions[state]:
                if predicate(value):
                    moved.add(target)
        if not moved:
            return frozenset()
        return self.eps_closure(moved)

    def accepts(self, values: Sequence[Any]) -> bool:
        states = self.eps_closure([self.start])
        for value in values:
            states = self.step(states, value)
            if not states:
                return False
        return self.accept in states

    def ends_from(self, values: Sequence[Any], start: int) -> list[int]:
        """All end positions of matches beginning at ``start``."""
        ends: list[int] = []
        states = self.eps_closure([self.start])
        position = start
        if self.accept in states:
            ends.append(position)
        while position < len(values) and states:
            states = self.step(states, values[position])
            position += 1
            if self.accept in states:
                ends.append(position)
        return ends


class _Builder:
    def __init__(self) -> None:
        self.transitions: list[list[tuple[AlphabetPredicate, int]]] = []
        self.epsilon: list[list[int]] = []

    def new_state(self) -> int:
        self.transitions.append([])
        self.epsilon.append([])
        return len(self.transitions) - 1

    def add_eps(self, source: int, target: int) -> None:
        self.epsilon[source].append(target)

    def add_arc(self, source: int, predicate: AlphabetPredicate, target: int) -> None:
        self.transitions[source].append((predicate, target))

    def build(self, node: ListPatternNode) -> tuple[int, int]:
        """Thompson fragment: returns ``(entry, exit)`` states."""
        if isinstance(node, Epsilon):
            entry = self.new_state()
            exit_ = self.new_state()
            self.add_eps(entry, exit_)
            return entry, exit_
        if isinstance(node, Atom):
            entry = self.new_state()
            exit_ = self.new_state()
            self.add_arc(entry, node.predicate, exit_)
            return entry, exit_
        if isinstance(node, Concat):
            if not node.parts:
                return self.build(Epsilon())
            entry, current_exit = self.build(node.parts[0])
            for part in node.parts[1:]:
                part_entry, part_exit = self.build(part)
                self.add_eps(current_exit, part_entry)
                current_exit = part_exit
            return entry, current_exit
        if isinstance(node, Union):
            entry = self.new_state()
            exit_ = self.new_state()
            for alternative in node.alternatives:
                alt_entry, alt_exit = self.build(alternative)
                self.add_eps(entry, alt_entry)
                self.add_eps(alt_exit, exit_)
            return entry, exit_
        if isinstance(node, Star):
            entry = self.new_state()
            exit_ = self.new_state()
            inner_entry, inner_exit = self.build(node.inner)
            self.add_eps(entry, inner_entry)
            self.add_eps(entry, exit_)
            self.add_eps(inner_exit, inner_entry)
            self.add_eps(inner_exit, exit_)
            return entry, exit_
        if isinstance(node, Plus):
            return self.build(node.desugar())
        if isinstance(node, Prune):
            # Language-transparent: pruning affects results, not matching.
            return self.build(node.inner)
        raise PatternError(f"unknown pattern node {node!r}")


def compile_nfa(pattern: ListPattern | ListPatternNode) -> NFA:
    """Compile a list pattern (anchors excluded) into an ε-NFA."""
    body = pattern.body if isinstance(pattern, ListPattern) else pattern
    builder = _Builder()
    start, accept = builder.build(body)
    return NFA(
        start=start,
        accept=accept,
        transitions=builder.transitions,
        epsilon=builder.epsilon,
    )


def nfa_find_spans(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """All ``(start, end)`` spans via NFA simulation (anchor-aware)."""
    nfa = compile_nfa(pattern)
    n = len(values)
    if starts is None:
        candidate_starts: Sequence[int] = (0,) if pattern.anchor_start else range(n + 1)
    else:
        candidate_starts = sorted(set(starts))
        if pattern.anchor_start:
            candidate_starts = [s for s in candidate_starts if s == 0]
    spans: list[tuple[int, int]] = []
    for start in candidate_starts:
        if start > n:
            continue
        for end in nfa.ends_from(values, start):
            if pattern.anchor_end and end != n:
                continue
            spans.append((start, end))
    return sorted(set(spans))
