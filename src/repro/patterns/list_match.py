"""List-pattern matching with prune capture (paper §3.2, §3.4).

This is the reference engine: a backtracking interpreter over the pattern
AST that enumerates **every** matching sublist, tracking which elements a
``!`` prune marker removes from the returned piece.  The automaton engines
(:mod:`repro.patterns.nfa`, :mod:`repro.patterns.dfa`,
:mod:`repro.patterns.derivatives`) are faster for boolean and span
queries but do not carry prune structure; the property-test suite checks
that all engines agree on spans.

A match is reported as a :class:`ListMatch`:

* ``start``/``end`` — element positions of the matched sublist (end
  exclusive),
* ``kept`` — positions that remain in the returned piece,
* ``pruned_runs`` — maximal runs of pruned positions, in order; each run
  corresponds to one concatenation point ``αi`` in the piece that
  ``split`` returns.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

from .. import guardrails
from ..errors import PatternError
from ..faults import fault_point
from ..storage import stats as stats_mod
from .list_ast import (
    Atom,
    Concat,
    Epsilon,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
)

# An event is (element_position, prune_token); prune_token is None for kept
# elements and a unique object per prune-marker *activation* otherwise.
_Events = tuple[tuple[int, object | None], ...]


@dataclass(frozen=True)
class ListMatch:
    """One occurrence of a pattern in a list."""

    start: int
    end: int
    kept: tuple[int, ...]
    pruned_runs: tuple[tuple[int, ...], ...]

    @property
    def span(self) -> tuple[int, int]:
        return (self.start, self.end)

    @property
    def length(self) -> int:
        return self.end - self.start

    def __repr__(self) -> str:
        return (
            f"ListMatch({self.start}:{self.end}, kept={list(self.kept)},"
            f" pruned={[list(r) for r in self.pruned_runs]})"
        )


class _Matcher:
    """Backtracking interpreter; one instance per (pattern, sequence).

    Derivations only need to be enumerated where prune structure can
    differ.  A subpattern with no ``!`` beneath it is *span-determined*
    (every derivation keeps exactly the consumed elements), and since
    prune markers cannot nest, a prune's inner pattern is always
    span-determined too.  Both cases therefore delegate to the
    polynomial memoized span matcher; only the combinator structure
    *above* prune markers backtracks.  This keeps ``split`` exact while
    avoiding the exponential derivation walk for the common patterns
    (cf. footnote 3 — the residual exponential cases are closures over
    alternatives that differ only in pruning).
    """

    def __init__(self, values: Sequence[Any]) -> None:
        self.values = values
        self._spans = _SpanMatcher(values)
        self._prune_free: dict[int, bool] = {}
        #: Derivation steps explored (the backtracking work §3.4's
        #: engines avoid); plain int in the hot loop, flushed in bulk.
        self.backtrack_steps = 0
        self.predicate_evals = 0
        #: The budget armed on this thread, if any (one ``is None`` test
        #: per derivation step when unbudgeted).
        self.guard = guardrails.current_guard()

    def emit_stats(self) -> None:
        stats_mod.emit_many(
            {
                "backtrack_steps": self.backtrack_steps,
                "predicate_evals": self.predicate_evals
                + self._spans.predicate_evals,
            }
        )

    def flush_stats(self) -> None:
        """Emit accumulated counters and reset them (streaming executor)."""
        self.emit_stats()
        self.backtrack_steps = 0
        self.predicate_evals = 0
        self._spans.predicate_evals = 0

    def _is_prune_free(self, node: ListPatternNode) -> bool:
        cached = self._prune_free.get(id(node))
        if cached is None:
            cached = not node.contains_prune()
            self._prune_free[id(node)] = cached
        return cached

    def match(
        self, node: ListPatternNode, pos: int, depth: int = 0
    ) -> Iterator[tuple[int, _Events]]:
        """Yield ``(end, events)`` for every way ``node`` matches at ``pos``."""
        self.backtrack_steps += 1
        if self.guard is not None:
            self.guard.tick(1, "list matcher")
            self.guard.check_depth(depth, "list matcher")
        if self._is_prune_free(node):
            for end in sorted(self._spans.ends(node, pos)):
                yield end, tuple((i, None) for i in range(pos, end))
            return
        if isinstance(node, Prune):
            # Prunes cannot nest: the inner pattern is span-determined,
            # and every derivation prunes exactly the consumed segment.
            for end in sorted(self._spans.ends(node.inner, pos)):
                token = object()  # fresh per activation
                yield end, tuple((i, token) for i in range(pos, end))
            return
        if isinstance(node, Epsilon):
            yield pos, ()
        elif isinstance(node, Atom):
            if pos < len(self.values):
                self.predicate_evals += 1
                if node.predicate(self.values[pos]):
                    yield pos + 1, ((pos, None),)
        elif isinstance(node, Concat):
            yield from self._match_concat(node.parts, 0, pos, depth + 1)
        elif isinstance(node, Union):
            for alternative in node.alternatives:
                yield from self.match(alternative, pos, depth + 1)
        elif isinstance(node, Plus):
            yield from self.match(node.desugar(), pos, depth + 1)
        elif isinstance(node, Star):
            yield from self._match_star(node.inner, pos, depth + 1)
        else:  # pragma: no cover - exhaustiveness guard
            raise PatternError(f"unknown pattern node {node!r}")

    def _match_concat(
        self, parts: Sequence[ListPatternNode], index: int, pos: int, depth: int = 0
    ) -> Iterator[tuple[int, _Events]]:
        if index == len(parts):
            yield pos, ()
            return
        for mid, head_events in self.match(parts[index], pos, depth):
            for end, tail_events in self._match_concat(parts, index + 1, mid, depth + 1):
                yield end, head_events + tail_events

    def _match_star(
        self, inner: ListPatternNode, pos: int, depth: int = 0
    ) -> Iterator[tuple[int, _Events]]:
        # Depth-first over iteration counts; only zero-progress-free paths
        # recurse, so nullable inner patterns cannot loop forever.
        yield pos, ()
        for mid, head_events in self.match(inner, pos, depth):
            if mid == pos:
                continue
            for end, tail_events in self._match_star(inner, mid, depth + 1):
                yield end, head_events + tail_events


def _normalize(start: int, end: int, events: _Events) -> ListMatch:
    kept: list[int] = []
    runs: list[list[int]] = []
    current_token: object | None = None
    ordered = sorted(events, key=lambda e: e[0])
    for index, token in ordered:
        if token is None:
            kept.append(index)
            current_token = None
        else:
            if token is not current_token:
                runs.append([])
                current_token = token
            runs[-1].append(index)
    return ListMatch(
        start=start,
        end=end,
        kept=tuple(kept),
        pruned_runs=tuple(tuple(run) for run in runs),
    )


def find_list_matches(
    pattern: ListPattern,
    values: Sequence[Any],
    limit: int | None = None,
    starts: Sequence[int] | None = None,
) -> list[ListMatch]:
    """Enumerate the distinct matches of ``pattern`` in ``values``.

    ``starts`` optionally restricts candidate start positions — this is
    the hook the optimizer uses after an index narrowed the search space.
    Results are deduplicated (two derivations with the same span and the
    same kept/pruned structure count once) and ordered by (start, end).
    """
    with guardrails.guarded():
        return _find_list_matches(pattern, values, limit, starts)


def _find_list_matches(
    pattern: ListPattern,
    values: Sequence[Any],
    limit: int | None = None,
    starts: Sequence[int] | None = None,
) -> list[ListMatch]:
    results: list[ListMatch] = []
    for match in iter_list_matches(pattern, values, starts=starts):
        results.append(match)
        if limit is not None and len(results) >= limit:
            break
    return results


def iter_list_matches(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
    on_start: "Callable[[int], None] | None" = None,
    flush_per_start: bool = False,
) -> Iterator[ListMatch]:
    """Lazily enumerate distinct matches in ``(start, end)`` order.

    Candidate start positions ascend, so sorting each start's batch of
    matches by end position reproduces the eager function's global
    ``(start, end)`` ordering without materializing the full result —
    only one start's matches are ever buffered at a time.

    ``on_start`` is invoked once per candidate start before matching
    there (the streaming executor's position-charging hook);
    ``flush_per_start`` flushes matcher counters after every start so
    they land in the operator scope attributed at pull time.
    """
    with guardrails.guarded():
        matcher = _Matcher(values)
        n = len(values)
        if starts is None:
            candidate_starts: Sequence[int] = (
                (0,) if pattern.anchor_start else range(n + 1)
            )
        else:
            candidate_starts = sorted(set(starts))
            if pattern.anchor_start:
                candidate_starts = [s for s in candidate_starts if s == 0]

        seen: set[tuple[Any, ...]] = set()
        try:
            for start in candidate_starts:
                if start > n:
                    continue
                fault_point("matcher_step")
                if on_start is not None:
                    on_start(start)
                batch: list[ListMatch] = []
                for end, events in matcher.match(pattern.body, start):
                    if pattern.anchor_end and end != n:
                        continue
                    match = _normalize(start, end, events)
                    key = (match.start, match.end, match.kept, match.pruned_runs)
                    if key in seen:
                        continue
                    seen.add(key)
                    batch.append(match)
                batch.sort(key=lambda m: (m.start, m.end))
                if flush_per_start:
                    matcher.flush_stats()
                yield from batch
        finally:
            matcher.emit_stats()


class _SpanMatcher:
    """Polynomial span computation via memoized end-sets.

    ``ends(node, pos)`` is the set of positions where a match of
    ``node`` beginning at ``pos`` can end.  Memoizing on ``(node, pos)``
    collapses the exponentially many derivations the backtracking
    matcher distinguishes (it must — pruning structure differs), which
    is exactly why span queries stay tractable while full ``split``
    enumeration is worst-case exponential (paper footnote 3).
    """

    def __init__(self, values: Sequence[Any]) -> None:
        self.values = values
        self._memo: dict[tuple[int, int], frozenset[int]] = {}
        self.predicate_evals = 0
        self.guard = guardrails.current_guard()

    def ends(self, node: ListPatternNode, pos: int) -> frozenset[int]:
        key = (id(node), pos)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if self.guard is not None:
            self.guard.tick(1, "span matcher")
        result = self._compute(node, pos)
        self._memo[key] = result
        return result

    def _compute(self, node: ListPatternNode, pos: int) -> frozenset[int]:
        if isinstance(node, Epsilon):
            return frozenset((pos,))
        if isinstance(node, Atom):
            if pos < len(self.values):
                self.predicate_evals += 1
                if node.predicate(self.values[pos]):
                    return frozenset((pos + 1,))
            return frozenset()
        if isinstance(node, Concat):
            current = frozenset((pos,))
            for part in node.parts:
                current = frozenset(
                    end for mid in current for end in self.ends(part, mid)
                )
                if not current:
                    break
            return current
        if isinstance(node, Union):
            result: frozenset[int] = frozenset()
            for alternative in node.alternatives:
                result |= self.ends(alternative, pos)
            return result
        if isinstance(node, Plus):
            return self._star_from(node.inner, self.ends(node.inner, pos))
        if isinstance(node, Star):
            return self._star_from(node.inner, frozenset((pos,)))
        if isinstance(node, Prune):
            return self.ends(node.inner, pos)
        raise PatternError(f"unknown pattern node {node!r}")

    def _star_from(self, inner: ListPatternNode, initial: frozenset[int]) -> frozenset[int]:
        reached = set(initial)
        frontier = list(initial)
        while frontier:
            position = frontier.pop()
            for end in self.ends(inner, position):
                if end not in reached:
                    reached.add(end)
                    frontier.append(end)
        return frozenset(reached)


def find_spans(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """All distinct ``(start, end)`` spans matched by ``pattern``.

    Polynomial (memoized), unlike :func:`find_list_matches` which must
    enumerate derivations to carry prune structure.
    """
    with guardrails.guarded():
        fault_point("matcher_step")
        matcher = _SpanMatcher(values)
        n = len(values)
        if starts is None:
            candidate_starts: Sequence[int] = (
                (0,) if pattern.anchor_start else range(n + 1)
            )
        else:
            candidate_starts = sorted(set(starts))
            if pattern.anchor_start:
                candidate_starts = [s for s in candidate_starts if s == 0]
        spans: list[tuple[int, int]] = []
        try:
            for start in candidate_starts:
                if start > n:
                    continue
                for end in matcher.ends(pattern.body, start):
                    if pattern.anchor_end and end != n:
                        continue
                    spans.append((start, end))
        finally:
            stats_mod.emit_many({"predicate_evals": matcher.predicate_evals})
        return sorted(set(spans))


def matches_whole(pattern: ListPattern, values: Sequence[Any]) -> bool:
    """Does the *entire* sequence belong to the pattern's language?

    Anchoring is forced on both ends regardless of the pattern's own
    anchors — this is language membership, the ``I ∈ L(P')`` of §3.4.
    """
    with guardrails.guarded():
        fault_point("matcher_step")
        matcher = _SpanMatcher(values)
        try:
            return len(values) in matcher.ends(pattern.body, 0)
        finally:
            stats_mod.emit_many({"predicate_evals": matcher.predicate_evals})
