"""Lazy DFA (subset construction on demand) for list patterns.

Classical subset construction needs a finite alphabet, but our alphabet
is a set of *predicates* evaluated over arbitrary objects.  The standard
trick (also used by predicate-automata engines) is to observe that a DFA
transition only depends on the **vector of predicate outcomes** for the
input element: two elements satisfying exactly the same atom predicates
are interchangeable.  We therefore key the transition cache on
``(state_set, outcome_vector)`` and build states lazily as inputs arrive.

Compared to NFA simulation this trades memory for time: once the cache is
warm, each element costs one predicate-vector evaluation plus one dict
lookup — the classic DFA-vs-backtracking gap measured by the
``CLAIM-DFA`` benchmark.

The cache is **bounded** (``cache_limit``, LRU eviction: a hit marks the
entry most-recently-used, a miss at capacity drops exactly the least
recently used one) so long-running shells matching over high-cardinality
alphabets cannot grow it without limit, and the matcher keeps warmth
counters — hits, misses, evictions, predicate evaluations — that it
flushes to any activated :mod:`~repro.storage.stats` sink, which is how
``EXPLAIN ANALYZE`` charts DFA cache warmth per operator.  The default
bound honours the ``AQUA_DFA_CACHE_LIMIT`` environment knob.
"""

from __future__ import annotations

from typing import Any, Sequence

from .. import config, guardrails
from ..predicates.alphabet import AlphabetPredicate
from ..storage import stats as stats_mod
from .list_ast import ListPattern, ListPatternNode
from .nfa import NFA, compile_nfa

#: Environment knob overriding the default transition-cache bound.
DFA_CACHE_LIMIT_ENV = config.DFA_CACHE_LIMIT_ENV

#: Default transition-cache bound; generous for real alphabets (a cache
#: entry per *distinct* (state-set, outcome-vector) pair), small enough
#: that a pathological alphabet cannot leak memory in a resident shell.
DEFAULT_CACHE_LIMIT = config.DEFAULT_DFA_CACHE_LIMIT


def default_cache_limit() -> int:
    """The cache bound from ``AQUA_DFA_CACHE_LIMIT``, or the default.

    Validation lives in :mod:`repro.config`; a malformed value raises a
    one-line :class:`~repro.errors.QueryError` naming the knob.
    """
    return config.validated_dfa_cache_limit()


class LazyDFA:
    """A deterministic matcher built lazily over an ε-NFA."""

    def __init__(self, nfa: NFA, cache_limit: int | None = None) -> None:
        if cache_limit is None:
            cache_limit = default_cache_limit()
        if cache_limit < 1:
            raise ValueError("cache_limit must be at least 1")
        self._nfa = nfa
        self._atoms: list[AlphabetPredicate] = nfa.atom_predicates()
        self._start = nfa.eps_closure([nfa.start])
        # (state_set, outcome_vector) -> state_set
        self._cache: dict[tuple[frozenset[int], tuple[bool, ...]], frozenset[int]] = {}
        self._cache_limit = cache_limit
        atom_index = {predicate: i for i, predicate in enumerate(self._atoms)}
        # Per state: arcs with the predicate resolved to its vector slot.
        self._arcs: list[list[tuple[int, int]]] = [
            [(atom_index[predicate], target) for predicate, target in arcs]
            for arcs in nfa.transitions
        ]
        # Warmth counters: plain ints in the hot loop, flushed in bulk.
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.predicate_evals = 0
        self._emitted: dict[str, int] = {}
        # Construction itself is budgeted work: subset construction over
        # a pathological pattern can be large before a single element is
        # matched, so charge one step per NFA state now.
        guard = guardrails.current_guard()
        if guard is not None:
            guard.tick(len(self._arcs), "dfa construction")

    @property
    def start_state(self) -> frozenset[int]:
        return self._start

    @property
    def atom_count(self) -> int:
        return len(self._atoms)

    @property
    def cached_transitions(self) -> int:
        return len(self._cache)

    @property
    def cache_limit(self) -> int:
        return self._cache_limit

    def stats_snapshot(self) -> dict[str, int]:
        """Warmth counters plus the current cache size (a gauge)."""
        return {
            "dfa_cache_hits": self.cache_hits,
            "dfa_cache_misses": self.cache_misses,
            "dfa_cache_evictions": self.cache_evictions,
            "dfa_cache_size": len(self._cache),
            "predicate_evals": self.predicate_evals,
        }

    def emit_stats(self) -> None:
        """Flush counter *deltas* since the last flush to activated sinks.

        Deltas keep a long-lived matcher (a resident shell reusing one
        compiled DFA) from re-reporting old work on every query.
        """
        snapshot = self.stats_snapshot()
        del snapshot["dfa_cache_size"]  # a gauge, not a counter
        deltas = {
            name: value - self._emitted.get(name, 0)
            for name, value in snapshot.items()
        }
        self._emitted = snapshot
        stats_mod.emit_many(deltas)

    def outcome_vector(self, value: Any) -> tuple[bool, ...]:
        self.predicate_evals += len(self._atoms)
        return tuple(predicate(value) for predicate in self._atoms)

    def is_accepting(self, states: frozenset[int]) -> bool:
        return self._nfa.accept in states

    def step(self, states: frozenset[int], value: Any) -> frozenset[int]:
        vector = self.outcome_vector(value)
        key = (states, vector)
        cached = self._cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            # LRU: re-insert so the entry moves to the back of the dict's
            # insertion order — the front is always the coldest entry.
            del self._cache[key]
            self._cache[key] = cached
            return cached
        self.cache_misses += 1
        moved: set[int] = set()
        for state in states:
            for atom_slot, target in self._arcs[state]:
                if vector[atom_slot]:
                    moved.add(target)
        result = self._nfa.eps_closure(moved) if moved else frozenset()
        if len(self._cache) >= self._cache_limit:
            # Evict exactly the least recently used entry (the front of
            # the insertion order, thanks to the re-insert on hit) —
            # unlike dropping a whole FIFO quarter, a hot working set
            # one entry wider than the limit loses one cold transition,
            # not a quarter of its warmth.
            del self._cache[next(iter(self._cache))]
            self.cache_evictions += 1
        self._cache[key] = result
        return result

    def accepts(self, values: Sequence[Any]) -> bool:
        with guardrails.guarded() as guard:
            states = self._start
            try:
                for value in values:
                    if guard is not None:
                        guard.tick(1, "dfa step")
                    states = self.step(states, value)
                    if not states:
                        return False
                return self.is_accepting(states)
            finally:
                self.emit_stats()

    def ends_from(self, values: Sequence[Any], start: int) -> list[int]:
        with guardrails.guarded() as guard:
            ends: list[int] = []
            states = self._start
            position = start
            if self.is_accepting(states):
                ends.append(position)
            while position < len(values) and states:
                if guard is not None:
                    guard.tick(1, "dfa step")
                states = self.step(states, values[position])
                position += 1
                if self.is_accepting(states):
                    ends.append(position)
            return ends


def compile_dfa(
    pattern: ListPattern | ListPatternNode,
    cache_limit: int | None = None,
) -> LazyDFA:
    return LazyDFA(compile_nfa(pattern), cache_limit=cache_limit)


def dfa_find_spans(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """All ``(start, end)`` spans via the lazy DFA (anchor-aware)."""
    with guardrails.guarded():
        return _dfa_find_spans(pattern, values, starts)


def _dfa_find_spans(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    dfa = compile_dfa(pattern)
    n = len(values)
    if starts is None:
        candidate_starts: Sequence[int] = (0,) if pattern.anchor_start else range(n + 1)
    else:
        candidate_starts = sorted(set(starts))
        if pattern.anchor_start:
            candidate_starts = [s for s in candidate_starts if s == 0]
    spans: list[tuple[int, int]] = []
    try:
        for start in candidate_starts:
            if start > n:
                continue
            for end in dfa.ends_from(values, start):
                if pattern.anchor_end and end != n:
                    continue
                spans.append((start, end))
    finally:
        dfa.emit_stats()
    return sorted(set(spans))
