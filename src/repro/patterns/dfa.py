"""Lazy DFA (subset construction on demand) for list patterns.

Classical subset construction needs a finite alphabet, but our alphabet
is a set of *predicates* evaluated over arbitrary objects.  The standard
trick (also used by predicate-automata engines) is to observe that a DFA
transition only depends on the **vector of predicate outcomes** for the
input element: two elements satisfying exactly the same atom predicates
are interchangeable.  We therefore key the transition cache on
``(state-set, outcome-vector)`` and build states lazily as inputs arrive.

Compared to NFA simulation this trades memory for time: once the cache is
warm, each element costs one predicate-vector evaluation plus one dict
lookup — the classic DFA-vs-backtracking gap measured by the
``CLAIM-DFA`` benchmark.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..predicates.alphabet import AlphabetPredicate
from .list_ast import ListPattern, ListPatternNode
from .nfa import NFA, compile_nfa


class LazyDFA:
    """A deterministic matcher built lazily over an ε-NFA."""

    def __init__(self, nfa: NFA) -> None:
        self._nfa = nfa
        self._atoms: list[AlphabetPredicate] = nfa.atom_predicates()
        self._start = nfa.eps_closure([nfa.start])
        # (state_set, outcome_vector) -> state_set
        self._cache: dict[tuple[frozenset[int], tuple[bool, ...]], frozenset[int]] = {}
        atom_index = {predicate: i for i, predicate in enumerate(self._atoms)}
        # Per state: arcs with the predicate resolved to its vector slot.
        self._arcs: list[list[tuple[int, int]]] = [
            [(atom_index[predicate], target) for predicate, target in arcs]
            for arcs in nfa.transitions
        ]

    @property
    def start_state(self) -> frozenset[int]:
        return self._start

    @property
    def atom_count(self) -> int:
        return len(self._atoms)

    @property
    def cached_transitions(self) -> int:
        return len(self._cache)

    def outcome_vector(self, value: Any) -> tuple[bool, ...]:
        return tuple(predicate(value) for predicate in self._atoms)

    def is_accepting(self, states: frozenset[int]) -> bool:
        return self._nfa.accept in states

    def step(self, states: frozenset[int], value: Any) -> frozenset[int]:
        vector = self.outcome_vector(value)
        key = (states, vector)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        moved: set[int] = set()
        for state in states:
            for atom_slot, target in self._arcs[state]:
                if vector[atom_slot]:
                    moved.add(target)
        result = self._nfa.eps_closure(moved) if moved else frozenset()
        self._cache[key] = result
        return result

    def accepts(self, values: Sequence[Any]) -> bool:
        states = self._start
        for value in values:
            states = self.step(states, value)
            if not states:
                return False
        return self.is_accepting(states)

    def ends_from(self, values: Sequence[Any], start: int) -> list[int]:
        ends: list[int] = []
        states = self._start
        position = start
        if self.is_accepting(states):
            ends.append(position)
        while position < len(values) and states:
            states = self.step(states, values[position])
            position += 1
            if self.is_accepting(states):
                ends.append(position)
        return ends


def compile_dfa(pattern: ListPattern | ListPatternNode) -> LazyDFA:
    return LazyDFA(compile_nfa(pattern))


def dfa_find_spans(
    pattern: ListPattern,
    values: Sequence[Any],
    starts: Sequence[int] | None = None,
) -> list[tuple[int, int]]:
    """All ``(start, end)`` spans via the lazy DFA (anchor-aware)."""
    dfa = compile_dfa(pattern)
    n = len(values)
    if starts is None:
        candidate_starts: Sequence[int] = (0,) if pattern.anchor_start else range(n + 1)
    else:
        candidate_starts = sorted(set(starts))
        if pattern.anchor_start:
            candidate_starts = [s for s in candidate_starts if s == 0]
    spans: list[tuple[int, int]] = []
    for start in candidate_starts:
        if start > n:
            continue
        for end in dfa.ends_from(values, start):
            if pattern.anchor_end and end != n:
                continue
            spans.append((start, end))
    return sorted(set(spans))
