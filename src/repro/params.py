"""Query parameters: named slots bound at execution time.

A :class:`Param` is a placeholder for a value supplied when the query
*runs*, not when it is built — the piece that makes a cached plan
reusable across invocations (see :mod:`repro.query.prepare`).  Params
appear in three notations that all converge on the same object:

* ``E.Param("name")`` — an expression node evaluating to the binding;
* ``Q.param("name")`` — the builder's placeholder, usable wherever a
  predicate constant is (``attr("age") > Q.param("limit")``);
* ``$name`` inside an AQL ``{...}`` predicate.

Bindings are *dynamically scoped*: :func:`bound_params` arms a mapping
for the current thread, and :func:`resolve` reads the innermost scope.
The execution drivers arm the scope, so user code only ever supplies a
plain ``params={...}`` dict.

The module deliberately imports nothing but :mod:`repro.errors`, so
every layer (predicates, patterns, storage, query) can depend on it
without cycles.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Iterator, Mapping

from .errors import QueryError


class Param:
    """A named parameter slot, bound via :func:`bound_params` at run time.

    Two params with the same name are the same slot (equality and hash
    follow the name), which is what lets a plan fingerprint treat
    ``$name`` as a stable structural feature while the bound value
    varies call to call.
    """

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not all(c.isalnum() or c == "_" for c in name):
            raise QueryError(
                f"invalid parameter name {name!r} (use letters, digits, '_')"
            )
        self.name = name

    def describe(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"${self.name}"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Param):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("Param", self.name))


_local = threading.local()


def current_bindings() -> Mapping[str, Any] | None:
    """The parameter bindings armed on this thread, or ``None``."""
    return getattr(_local, "bindings", None)


@contextmanager
def bound_params(bindings: Mapping[str, Any] | None) -> Iterator[None]:
    """Arm ``bindings`` for this thread; nested scopes layer over outer ones."""
    previous = getattr(_local, "bindings", None)
    if bindings is None:
        merged = previous
    else:
        merged = dict(previous) if previous else {}
        merged.update(bindings)
    _local.bindings = merged
    try:
        yield
    finally:
        _local.bindings = previous


def resolve(value: Any) -> Any:
    """``value`` itself, or the binding when it is a :class:`Param`.

    Raises a :class:`~repro.errors.QueryError` naming the missing slot
    when no binding is armed — the error a caller sees when running a
    parameterized query without ``params={...}``.
    """
    if isinstance(value, Param):
        bindings = current_bindings()
        if bindings is None or value.name not in bindings:
            raise QueryError(
                f"unbound query parameter ${value.name}"
                f" (pass params={{'{value.name}': ...}})"
            )
        return bindings[value.name]
    return value


def try_resolve(value: Any) -> tuple[Any, bool]:
    """``(resolved, ok)`` — like :func:`resolve` but never raises.

    ``ok`` is ``False`` when ``value`` is an unbound :class:`Param`;
    plan-time analyses use this to keep working without bindings.
    """
    if isinstance(value, Param):
        bindings = current_bindings()
        if bindings is None or value.name not in bindings:
            return None, False
        return bindings[value.name], True
    return value, True


def is_bindable(value: Any) -> bool:
    """Can ``value`` serve as an index-probe key? (Hashable check.)

    The re-plan guard of :class:`~repro.query.prepare.PreparedQuery`
    uses this: an anchor chosen at prepare time assumed an equality
    probe, which a binding with an unhashable value invalidates.
    """
    try:
        hash(value)
    except TypeError:
        return False
    return True
