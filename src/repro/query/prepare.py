"""Prepared queries: plan once, execute many times.

``prepare(source, db)`` runs the whole planning pipeline — AQL parse,
optimizer rewrite, pattern compilation, logical→physical lowering — and
captures the result in a :class:`PreparedQuery`: the optimized logical
plan plus the :class:`~repro.physical.lower.PipelineFactory` whose
``instantiate()`` yields a fresh executable pipeline with **no planning
work at all**.  Prepared queries are cached in a
:class:`~repro.query.plan_cache.PlanCache` keyed by the query's
structural fingerprint, so repeated ``prepare`` calls for the same shape
(including repeated AQL text, via the cache's alias table) skip
everything.

Parameterized queries make the cache earn its keep: ``$name`` slots
(:mod:`repro.params`) are part of the plan's *structure*, and the bound
values arrive at :meth:`PreparedQuery.run` — one plan, many bindings.
One guard protects that bargain: the lowering's access-path analysis may
have committed to an index probe on a ``$param`` equality term
(:func:`~repro.optimizer.anchors.tree_split_anchors` presumes an
unbound param servable).  The lowering factory records which slots back
such anchors (``PipelineFactory.anchor_params``), and a binding that
cannot be an index key (an unhashable value) triggers a **re-plan for
that run only** — counted as ``plan_cache_replans`` — planned under the
armed bindings so the binding-aware analysis picks the safe full-scan
shape instead.

Execution semantics are identical to
:func:`repro.query.interpreter.evaluate` — same guard, instrumentation,
match-scope and executor arming, bit-identical results and counters —
which the plan-cache property suite asserts across executors × engines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Hashable, Mapping

from .. import config, guardrails
from ..errors import QueryError
from ..guardrails import Budget
from ..params import bound_params, current_bindings, is_bindable
from ..patterns.tree_memo import match_scope
from ..storage.database import Database
from . import expr as E
from .metrics import PlanMetrics
from .plan_cache import DEFAULT_CACHE, PlanCache, plan_fingerprint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..physical.lower import PipelineFactory


def _plan_dependencies(expr: E.Expr, plan: E.Expr) -> tuple[str, ...]:
    """The version-map tags this query's validity depends on.

    Every extent and named root the expression (or its optimized plan —
    rewrites can only preserve or drop references, but the union is
    cheap insurance) reads contributes a tag; index create/drop and
    ``analyze`` stamp the extent tag too, so access-path choices are
    covered.  A query that touches no stored resource depends only on
    the blanket tag, which moves on bare ``bump_epoch()`` calls.
    """
    from ..storage.database import GLOBAL_RESOURCE, extent_resource, root_resource

    tags: set[str] = {GLOBAL_RESOURCE}
    for node in list(expr.walk()) + list(plan.walk()):
        if isinstance(node, E.Root):
            tags.add(root_resource(node.name))
        elif isinstance(node, E.Extent):
            tags.add(extent_resource(node.name))
    return tuple(sorted(tags))


def _plan(
    expr: E.Expr, db: Database, optimize: bool
) -> tuple[E.Expr, "PipelineFactory"]:
    """The planning pipeline shared by cold prepares and re-plans.

    ``optimize`` controls both the algebraic rewrite pass and the
    lowering's access-path choice: an optimized prepare commits to index
    anchors / conjunct decompositions in the factory, an unoptimized one
    (the degradation ladder's last rung) mirrors the logical tree.
    """
    from ..optimizer.engine import Optimizer
    from ..physical.lower import lower_factory

    plan = expr
    if optimize:
        plan, _ = Optimizer(db).optimize(expr)
    return plan, lower_factory(plan, db, choose_access_paths=optimize)


class PreparedQuery:
    """An execution-ready query: optimized plan + physical factory.

    Produced by :func:`prepare`; do not construct directly.  ``run()``
    may be called any number of times, with different parameter bindings
    each time.  Instances are immutable from the caller's perspective
    and safe to share across threads (each run instantiates its own
    operator tree).
    """

    def __init__(
        self,
        *,
        expr: E.Expr,
        plan: E.Expr,
        factory: "PipelineFactory",
        db: Database,
        epoch: int,
        optimize: bool,
        fingerprint: Hashable,
        cache: PlanCache | None,
        deps: tuple[str, ...] | None = None,
        dep_versions: tuple[int, ...] | None = None,
    ) -> None:
        self.expr = expr
        self.plan = plan
        self.factory = factory
        self.db = db
        self.epoch = epoch
        self.optimize = optimize
        self.fingerprint = fingerprint
        self.cache = cache
        self.deps = deps if deps is not None else _plan_dependencies(expr, plan)
        self.dep_versions = (
            dep_versions if dep_versions is not None else db.versions(self.deps)
        )
        self.anchor_params = factory.anchor_params
        self.param_slots = frozenset(
            node.name for node in expr.walk() if isinstance(node, E.Param)
        )

    # -- the re-plan guard -----------------------------------------------------

    def _needs_replan(self) -> bool:
        """Does some armed binding break a recorded anchor assumption?"""
        if not self.anchor_params:
            return False
        bindings = current_bindings() or {}
        return any(
            name in bindings and not is_bindable(bindings[name])
            for name in self.anchor_params
        )

    def _plan_for_bindings(
        self, view: Database
    ) -> tuple[E.Expr, "PipelineFactory"]:
        if not self._needs_replan():
            return self.plan, self.factory
        # Re-plan under the armed bindings: the binding-aware anchor
        # analysis now sees the unhashable constant and keeps the scan
        # shape.  The result serves this run only — the cached entry
        # stays correct for bindings that honour the assumption.
        if self.cache is not None:
            self.cache.note_replan()
        return _plan(self.expr, view, self.optimize)

    # -- execution -------------------------------------------------------------

    def run(
        self,
        params: Mapping[str, Any] | None = None,
        *,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        db: Database | None = None,
    ) -> Any:
        """Execute with ``params`` bound; semantics match ``evaluate()``.

        The knob keywords are the same set :meth:`repro.api.Session.query`
        and :meth:`repro.api.SessionPool.submit` take — ``budget`` /
        ``executor`` / ``engine`` / ``parallel`` / ``parallel_workers``
        override the session/env/default resolution for this run only
        (see :mod:`repro.config`).  ``db`` overrides the execution
        *view*: operators resolve roots, extents and indexes at runtime
        through the context database, so a plan prepared against one
        view (and served from the shared cache) executes correctly
        against another — in particular against a pinned
        :class:`~repro.storage.snapshot.DatabaseSnapshot` of the same
        base database.
        """
        from ..physical import ExecutionContext
        from .interpreter import _eval

        executor = config.validated_executor(executor)
        view = db if db is not None else self.db
        stats = view.stats
        with bound_params(params):
            plan, factory = self._plan_for_bindings(view)
            with config.tree_engine_scope(engine), config.parallel_scope(
                parallel
            ), config.parallel_workers_scope(parallel_workers), guardrails.guarded(
                budget
            ) as guard, stats.activated(), match_scope(view):
                if executor == "eager":
                    return _eval(plan, view, guard, ())
                ctx = ExecutionContext(
                    db=view, guard=guard, metrics=stats.collector, stats=stats
                )
                return factory.instantiate().execute(ctx)

    def run_with_metrics(
        self,
        params: Mapping[str, Any] | None = None,
        *,
        metrics: PlanMetrics | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        db: Database | None = None,
    ) -> tuple[Any, PlanMetrics]:
        """Like :meth:`run`, collecting per-operator runtime metrics."""
        metrics = metrics if metrics is not None else PlanMetrics()
        view = db if db is not None else self.db
        with view.stats.collecting(metrics):
            result = self.run(
                params,
                budget=budget,
                executor=executor,
                engine=engine,
                parallel=parallel,
                parallel_workers=parallel_workers,
                db=view,
            )
        return result, metrics

    def describe(self) -> str:
        return self.plan.describe()

    def __repr__(self) -> str:
        slots = ", ".join(sorted(self.param_slots)) or "none"
        return (
            f"PreparedQuery<{self.plan.describe()};"
            f" params: {slots}; epoch {self.epoch}>"
        )


def _as_expr(source: Any) -> E.Expr:
    """Coerce a prepare/query source (Expr | Q | AQL already handled)."""
    if isinstance(source, E.Expr):
        return source
    node = getattr(source, "node", None)  # a Q builder
    if isinstance(node, E.Expr):
        return node
    raise QueryError(
        f"cannot prepare {type(source).__name__!r}:"
        " expected an Expr, a Q builder, or AQL text"
    )


def prepare(
    source: Any,
    db: Database,
    *,
    optimize: bool = True,
    cache: PlanCache | None = DEFAULT_CACHE,
) -> PreparedQuery:
    """Prepare ``source`` (Expr | Q | AQL text) for repeated execution.

    Served from ``cache`` when a structurally identical query was
    prepared against the same database at the current epoch; planned
    from scratch (and stored) otherwise.  Pass ``cache=None`` to bypass
    caching entirely.  Cache traffic is observable via the cache's own
    counters and, for callers that activated a stats sink, the
    ``plan_cache_*`` emissions.
    """
    text: str | None = None
    expr: E.Expr | None = None
    missed: Hashable | None = None
    if isinstance(source, str):
        text = source
        # The alias table lets warm AQL text skip even the parse (and
        # therefore every pattern compilation the parse would do).
        if cache is not None:
            fingerprint = cache.lookup_alias(db, text, optimize)
            if fingerprint is not None:
                prepared = cache.lookup(db, fingerprint)
                if prepared is not None:
                    return prepared
                missed = fingerprint
        from .aql import parse_aql

        expr = parse_aql(text)
    else:
        expr = _as_expr(source)

    fingerprint = plan_fingerprint(expr, optimize=optimize)
    if cache is not None and fingerprint != missed:
        prepared = cache.lookup(db, fingerprint)
        if prepared is not None:
            if text is not None:
                cache.store_alias(db, text, optimize, fingerprint)
            return prepared

    # Capture the version cut BEFORE planning: a write that lands while
    # the optimizer runs then makes this entry immediately stale (it
    # re-plans on next lookup) instead of being served as current — the
    # conservative side of the race.
    token = db.version_token()
    plan, factory = _plan(expr, db, optimize)
    deps = _plan_dependencies(expr, plan)
    prepared = PreparedQuery(
        expr=expr,
        plan=plan,
        factory=factory,
        db=db,
        epoch=token.epoch,
        optimize=optimize,
        fingerprint=fingerprint,
        cache=cache,
        deps=deps,
        dep_versions=token.versions(deps),
    )
    if cache is not None:
        cache.store(db, fingerprint, prepared)
        if text is not None:
            cache.store_alias(db, text, optimize, fingerprint)
    return prepared
