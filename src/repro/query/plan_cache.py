"""The plan cache: structural fingerprints + epoch-validated LRU entries.

Every :func:`repro.query.prepare.prepare` call is keyed here by a
**structural fingerprint** of the query — a canonical tuple over the
``Expr`` tree, its pattern ASTs, predicate notations and parameter
*slots* (never bound values) — plus the identity of the database it was
planned against.  Two queries with the same shape share one cached
:class:`~repro.query.prepare.PreparedQuery`; a ``$param`` appears in the
fingerprint as its slot name, so one plan serves every binding.

Entries are validated **lazily against per-resource version counters**
(:meth:`repro.storage.database.Database.versions`): storage stamps the
touched extent/root on inserts, root (re)binds, index create/drop and
statistics recalibration, and a lookup that finds an entry whose
*dependencies* (the extents and roots its plan reads) moved drops it and
reports a miss — there is no eager invalidation traffic on the write
path, and a mutation of root ``A`` leaves cached plans over extent ``B``
warm.  A bare ``bump_epoch()`` (no resources named) still invalidates
everything.  Snapshots share their base database's cache identity and
validate against their *pinned* versions, so a reader pinned before a
write keeps hitting the plan prepared for its version.

Opaque values (raw-predicate closures, arbitrary functions) cannot be
fingerprinted by content, so they contribute their object/code identity.
That is sound *because the cache pins what it fingerprints*: a live
entry keeps its expression (and the database) alive, so an ``id()``
captured in its key can never be reused by a different object while the
entry can still be returned.

Counters (``hits`` / ``misses`` / ``invalidations`` / ``replans`` /
``evictions``) are kept on the cache object and additionally emitted
through :func:`repro.storage.stats.emit`, which credits **only sinks the
caller activated** — never ``db.stats`` implicitly — so executor-parity
tests comparing full instrumentation snapshots stay unaffected while
``EXPLAIN ANALYZE`` can activate a private sink and render the planning
footer.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Hashable, Iterable

from ..params import Param
from ..patterns.list_ast import ListPattern
from ..patterns.tree_ast import TreePattern
from ..predicates.alphabet import AlphabetPredicate
from ..storage import stats as stats_mod
from . import expr as E

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.database import Database
    from .prepare import PreparedQuery

#: Default number of prepared plans a cache retains.
DEFAULT_CAPACITY = 128


# -- fingerprinting ------------------------------------------------------------


_PRIMITIVES = (int, float, complex, str, bytes, bool, type(None))


def _value_fp(value: Any) -> Hashable:
    """A constant's contribution: content for primitives, identity else.

    Structured values (trees, lists, sets, arbitrary objects) contribute
    ``id()`` rather than content — equality on them can be deep and
    expensive, and identity is sound because the cache pins the
    expression that holds them.
    """
    if isinstance(value, Param):
        return ("param", value.name)
    if isinstance(value, _PRIMITIVES):
        return ("val", type(value).__name__, value)
    if isinstance(value, tuple):
        return ("tuple", tuple(_value_fp(item) for item in value))
    return ("id", id(value))


def _function_fp(function: Any) -> Hashable:
    """A callable's contribution: code identity + captured environment.

    Two closures over the same code object are the same *plan* only if
    their captured cells and defaults agree — e.g. the AQL translator
    builds one ``projector`` closure per query text, distinguished by
    its default-argument capture.
    """
    declared = getattr(function, "plan_fingerprint", None)
    if declared is not None:
        # A callable object may declare its own plan identity (e.g. the
        # docstore's path-step functions): two instances built from the
        # same path text are the same plan, so warm path queries hit.
        return ("declared-fn", declared)
    code = getattr(function, "__code__", None)
    if code is None:
        return ("callable-id", id(function))
    cells: tuple[Hashable, ...] = ()
    closure = getattr(function, "__closure__", None)
    if closure:
        cells = tuple(_value_fp(cell.cell_contents) for cell in closure)
    defaults = getattr(function, "__defaults__", None) or ()
    return (
        "fn",
        code.co_filename,
        code.co_name,
        code.co_firstlineno,
        hash(code.co_code),
        tuple(_value_fp(d) for d in defaults),
        cells,
    )


def _predicate_fp(predicate: AlphabetPredicate) -> Hashable:
    """A predicate's contribution: its notation, or identity when opaque.

    ``describe()`` renders ``$param`` constants as their slot, keeping
    the fingerprint binding-independent; an opaque predicate's
    description is just a function name (two different lambdas can
    collide), so opaque ones contribute identity instead.
    """
    if predicate.opaque:
        return ("opaque-pred", id(predicate))
    return ("pred", predicate.describe())


def _pattern_predicates(pattern: TreePattern | ListPattern) -> Iterable[Any]:
    for node in pattern.body.walk():
        predicate = getattr(node, "predicate", None)
        if predicate is not None:
            yield predicate


def _pattern_fp(pattern: Any) -> Hashable:
    """A pattern's contribution: its notation plus opaque-atom identities."""
    if isinstance(pattern, str):
        return ("pattern-text", pattern)
    if isinstance(pattern, (TreePattern, ListPattern)):
        opaque = tuple(
            ("opaque-atom", id(p))
            for p in _pattern_predicates(pattern)
            if getattr(p, "opaque", False)
        )
        return ("pattern", pattern.describe(), opaque)
    if isinstance(pattern, AlphabetPredicate):
        return ("pattern-pred", _predicate_fp(pattern))
    return ("pattern-id", id(pattern))


def _node_fp(node: E.Expr) -> Hashable:
    """One node's own features (children are appended structurally)."""
    features: list[Hashable] = [type(node).__name__]
    for attribute in ("name",):
        value = getattr(node, attribute, None)
        if isinstance(value, str):
            features.append((attribute, value))
    if isinstance(node, E.Literal):
        features.append(("value", _value_fp(node.value)))
    predicate = getattr(node, "predicate", None)
    if predicate is not None:
        features.append(_predicate_fp(predicate))
    indexed = getattr(node, "indexed", None)
    if indexed is not None:
        features.append(("indexed", _predicate_fp(indexed)))
    residual = getattr(node, "residual", None)
    if residual is not None:
        features.append(("residual", _predicate_fp(residual)))
    pattern = getattr(node, "pattern", None)
    if pattern is not None:
        features.append(_pattern_fp(pattern))
    anchors = getattr(node, "anchors", None)
    if anchors is not None:
        features.append(("anchors", tuple(_predicate_fp(a) for a in anchors)))
    anchor = getattr(node, "anchor", None)
    if anchor is not None:
        features.append(("anchor", _predicate_fp(anchor)))
    offsets = getattr(node, "offsets", None)
    if offsets is not None:
        features.append(("offsets", tuple(offsets)))
    function = getattr(node, "function", None)
    if function is not None:
        features.append(_function_fp(function))
    return tuple(features)


def _expr_fp(node: E.Expr) -> Hashable:
    return (_node_fp(node), tuple(_expr_fp(child) for child in node.children()))


def plan_fingerprint(expr: E.Expr, *, optimize: bool) -> Hashable:
    """The canonical cache key for ``expr`` (excluding the database).

    Covers the operator tree, pattern ASTs, predicate notations (which
    carry the equality semantics the plan committed to), parameter
    *slots*, function identities, and whether the optimizer runs — the
    full set of inputs the planner's decisions depend on, minus the
    database state the epoch tracks separately.
    """
    return ("plan", bool(optimize), _expr_fp(expr))


# -- the cache -----------------------------------------------------------------


def cache_identity(db: "Database") -> int:
    """The keying identity of a database view.

    Snapshots expose their base database's identity, so one cache entry
    serves the live handle and every compatible snapshot; a plain
    ``id()`` fallback covers duck-typed stand-ins.
    """
    return getattr(db, "cache_identity", None) or id(db)


def _is_current(prepared: "PreparedQuery", db: "Database") -> bool:
    """Does ``prepared`` still match ``db``'s (possibly pinned) versions?

    Fine-grained when both sides speak versions: the entry's recorded
    dependency tags are compared against the view's counters, so a
    mutation of an unrelated extent/root leaves the entry live.  Falls
    back to the global-epoch comparison for version-less stand-ins.
    """
    versions = getattr(db, "versions", None)
    deps = getattr(prepared, "deps", None)
    if versions is not None and deps is not None:
        return versions(deps) == prepared.dep_versions
    return prepared.epoch == db.epoch


class PlanCache:
    """A bounded LRU of :class:`~repro.query.prepare.PreparedQuery`.

    Thread-safe; entries are keyed by ``(cache_identity(db),
    fingerprint)`` and validated against the plan's dependency versions
    on lookup.  The side table ``alias`` maps AQL source text to
    fingerprints so a warm textual query skips parsing entirely; aliases
    are LRU-bounded by the same capacity and dropped eagerly whenever
    their target entry is invalidated or evicted, so the table can never
    outgrow — or outlive — the entries it points at.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("plan cache capacity must be at least 1")
        self.capacity = capacity
        self._lock = threading.RLock()
        self._entries: "OrderedDict[Hashable, PreparedQuery]" = OrderedDict()
        self._aliases: "OrderedDict[Hashable, Hashable]" = OrderedDict()
        #: entry key → alias keys pointing at it (invalidation cleanup).
        self._alias_index: dict[Hashable, set[Hashable]] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.alias_invalidations = 0
        self.replans = 0
        self.evictions = 0

    # -- keys ------------------------------------------------------------------

    def entry_key(self, db: "Database", fingerprint: Hashable) -> Hashable:
        return (cache_identity(db), fingerprint)

    def alias_key(self, db: "Database", text: str, optimize: bool) -> Hashable:
        return (cache_identity(db), text, bool(optimize))

    # -- alias/entry consistency (call with the lock held) ---------------------

    def _drop_entry(self, key: Hashable) -> None:
        del self._entries[key]
        for alias in self._alias_index.pop(key, ()):
            if self._aliases.pop(alias, None) is not None:
                self.alias_invalidations += 1

    def _unlink_alias(self, alias: Hashable, fingerprint: Hashable) -> None:
        identity = alias[0]
        index = self._alias_index.get((identity, fingerprint))
        if index is not None:
            index.discard(alias)

    # -- the protocol ----------------------------------------------------------

    def lookup(self, db: "Database", fingerprint: Hashable) -> "PreparedQuery | None":
        """The live entry for ``fingerprint``, or ``None`` (a miss).

        An entry whose dependency versions no longer match the view is
        dropped here — lazy invalidation, aliases included — and counted
        as both an invalidation and a miss.
        """
        key = self.entry_key(db, fingerprint)
        with self._lock:
            prepared = self._entries.get(key)
            if prepared is not None and not _is_current(prepared, db):
                self._drop_entry(key)
                self.invalidations += 1
                stats_mod.emit("plan_cache_invalidations")
                prepared = None
            if prepared is None:
                self.misses += 1
                stats_mod.emit("plan_cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            stats_mod.emit("plan_cache_hits")
            return prepared

    def store(self, db: "Database", fingerprint: Hashable, prepared: "PreparedQuery") -> None:
        key = self.entry_key(db, fingerprint)
        with self._lock:
            self._entries[key] = prepared
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                evicted, _ = next(iter(self._entries.items()))
                self._drop_entry(evicted)
                self.evictions += 1
                stats_mod.emit("plan_cache_evictions")

    def lookup_alias(self, db: "Database", text: str, optimize: bool) -> Hashable | None:
        with self._lock:
            key = self.alias_key(db, text, optimize)
            fingerprint = self._aliases.get(key)
            if fingerprint is not None:
                self._aliases.move_to_end(key)
            return fingerprint

    def store_alias(self, db: "Database", text: str, optimize: bool, fingerprint: Hashable) -> None:
        with self._lock:
            key = self.alias_key(db, text, optimize)
            previous = self._aliases.get(key)
            if previous is not None and previous != fingerprint:
                self._unlink_alias(key, previous)
            self._aliases[key] = fingerprint
            self._aliases.move_to_end(key)
            self._alias_index.setdefault(
                self.entry_key(db, fingerprint), set()
            ).add(key)
            while len(self._aliases) > self.capacity:
                stale, target = self._aliases.popitem(last=False)
                self._unlink_alias(stale, target)

    def note_replan(self) -> None:
        """Record a binding-forced re-plan (see ``PreparedQuery.run``)."""
        with self._lock:
            self.replans += 1
        stats_mod.emit("plan_cache_replans")

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._aliases.clear()
            self._alias_index.clear()

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "aliases": len(self._aliases),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "alias_invalidations": self.alias_invalidations,
                "replans": self.replans,
                "evictions": self.evictions,
            }

    def __repr__(self) -> str:
        s = self.snapshot()
        return (
            f"PlanCache({s['entries']}/{s['capacity']} entries,"
            f" {s['hits']} hits, {s['misses']} misses,"
            f" {s['invalidations']} invalidations, {s['replans']} replans)"
        )


#: The process-wide cache behind :func:`repro.query.prepare.prepare` and
#: the default :class:`repro.api.Session`.
DEFAULT_CACHE = PlanCache()
