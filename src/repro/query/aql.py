"""AQL — a small user-level text language compiling to the algebra.

The paper deliberately stops below the user level ("We do not assume any
particular user-level language") and positions AQUA as "a standard input
language for query optimizers".  AQL plays the user-level role for this
reproduction: a pipeline syntax whose stages compile one-to-one onto the
expression nodes, so everything downstream (optimizer, EXPLAIN,
interpreter) applies unchanged.

Syntax::

    query    := source stage*
    source   := 'root' NAME | 'extent' NAME
    stage    := '|' op
    op       := 'select' '{' predicate '}'         -- tree select
              | 'sselect' '{' predicate '}'        -- set select
              | 'lselect' '{' predicate '}'        -- list select
              | 'sub_select' PATTERN resolver?     -- tree pattern
              | 'lsub_select' PATTERN resolver?    -- list pattern
              | 'all_anc' PATTERN resolver?        -- pairs ⟨ancestors, match⟩
              | 'all_desc' PATTERN resolver?       -- pairs ⟨match, descendants⟩
              | 'path' PATTERN                     -- document path query (docstore)
              | 'project' ATTR                     -- set apply of one attribute
    resolver := 'by' ATTR                          -- bare pattern symbols mean ATTR = symbol
    PATTERN  := a 'quoted' or "quoted" pattern in the §3 notation

Examples::

    root family | sub_select "Brazil(!?* USA !?*)" by citizen
    root song   | lsub_select "[A??F]" by pitch
    root site   | path "//article[@lang='en']//p"
    extent Person | sselect {age > 30 and city = "C3"} | project name

``parse_aql`` returns the :class:`~repro.query.expr.Expr`; ``run_aql``
optimizes and evaluates it in one call.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from ..errors import QueryError
from ..patterns.list_parser import parse_list_pattern
from ..patterns.tree_parser import parse_tree_pattern
from ..predicates.alphabet import AlphabetPredicate, Comparison
from ..predicates.parser import parse_predicate
from ..storage.database import Database
from . import expr as E

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<pipe>\|)
  | (?P<pred>\{[^}]*\})
  | (?P<pattern>"[^"]*"|'[^']*')
  | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise QueryError(f"cannot tokenize AQL at {text[index:]!r}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            tokens.append((kind, match.group()))
        index = match.end()
    return tokens


def attribute_resolver(attribute: str) -> Callable[[str], AlphabetPredicate]:
    """The ``by ATTR`` resolver: bare symbols mean ``ATTR = symbol``."""

    def resolve(symbol: str) -> AlphabetPredicate:
        return Comparison(attribute, "=", symbol)

    return resolve


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    def _peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise QueryError(f"unexpected end of AQL query {self._text!r}")
        self._index += 1
        return token

    def _expect_word(self, *allowed: str) -> str:
        kind, text = self._next()
        if kind != "word" or (allowed and text not in allowed):
            raise QueryError(
                f"expected {' or '.join(allowed) or 'a word'},"
                f" found {text!r} in {self._text!r}"
            )
        return text

    def parse(self) -> E.Expr:
        node = self._source()
        while self._peek() is not None:
            kind, _ = self._next()
            if kind != "pipe":
                raise QueryError(f"expected '|' between stages in {self._text!r}")
            node = self._stage(node)
        return node

    def _source(self) -> E.Expr:
        keyword = self._expect_word("root", "extent")
        name = self._expect_word()
        if keyword == "root":
            return E.Root(name)
        return E.Extent(name)

    def _stage(self, node: E.Expr) -> E.Expr:
        op = self._expect_word()
        if op in ("select", "sselect", "lselect"):
            predicate = self._predicate()
            if op == "select":
                return E.TreeSelect(node, predicate=predicate)
            if op == "sselect":
                return E.SetSelect(node, predicate=predicate)
            return E.ListSelect(node, predicate=predicate)
        if op in ("sub_select", "lsub_select", "all_anc", "all_desc"):
            pattern_text = self._pattern_text()
            resolver = self._optional_resolver()
            if op == "lsub_select":
                return E.ListSubSelect(
                    node, pattern=parse_list_pattern(pattern_text, resolver)
                )
            pattern = parse_tree_pattern(pattern_text, resolver)
            if op == "sub_select":
                return E.SubSelect(node, pattern=pattern)
            if op == "all_anc":
                from ..core.aqua_tuple import make_tuple

                return E.AllAnc(node, pattern=pattern, function=make_tuple)
            from ..core.aqua_tuple import make_tuple

            return E.AllDesc(node, pattern=pattern, function=make_tuple)
        if op == "path":
            # Document path queries: the docstore compiles the quoted
            # path text into stock split/apply/flatten algebra, so the
            # stage slots into any pipeline position a tree flows out of.
            from ..docstore.path import compile_path

            return compile_path(node, self._pattern_text())
        if op == "project":
            attribute = self._expect_word()

            def projector(obj: Any, _attribute: str = attribute) -> Any:
                return getattr(obj, _attribute)

            projector.__name__ = f"project_{attribute}"
            return E.SetApply(node, function=projector)
        raise QueryError(f"unknown AQL operator {op!r}")

    def _predicate(self) -> AlphabetPredicate:
        kind, text = self._next()
        if kind != "pred":
            raise QueryError(f"expected a {{predicate}}, found {text!r}")
        return parse_predicate(text[1:-1])

    def _pattern_text(self) -> str:
        kind, text = self._next()
        if kind != "pattern":
            raise QueryError(f"expected a quoted pattern, found {text!r}")
        return text[1:-1]

    def _optional_resolver(self) -> Callable[[str], AlphabetPredicate] | None:
        token = self._peek()
        if token is not None and token == ("word", "by"):
            self._next()
            return attribute_resolver(self._expect_word())
        return None


def parse_aql(text: str) -> E.Expr:
    """Parse AQL text into a logical query expression."""
    return _Parser(text).parse()


def run_aql(
    text: str,
    db: Database,
    optimize: bool = True,
    params: "Mapping[str, Any] | None" = None,
    **knobs: Any,
) -> Any:
    """Parse, (optionally) optimize, and evaluate an AQL query.

    A thin wrapper over the default :class:`repro.api.Session`: repeated
    text is served from the plan cache's alias table without even being
    re-parsed.  ``$name`` slots inside ``{...}`` predicates bind through
    ``params``.  Any :meth:`repro.api.Session.query` knob keyword
    (``budget=``, ``executor=``, ``engine=``, ``parallel=``,
    ``parallel_workers=``, ``cache=``) passes through to the shared
    resolver, same names and precedence as everywhere else.
    """
    from ..api import default_session

    return default_session(db).query(text, params, optimize=optimize, **knobs)
