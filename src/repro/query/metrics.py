"""Per-operator runtime metrics for plan execution (EXPLAIN ANALYZE).

A :class:`PlanMetrics` registry holds one :class:`OperatorMetrics` per
plan node, keyed by the node's *path* — the tuple of child indexes from
the plan root (``()`` is the root, ``(0,)`` its first child, …).  Paths
identify operators positionally, so two structurally equal nodes at
different places in the plan get separate metrics.

The interpreter opens one :meth:`PlanMetrics.operator` scope around each
node it evaluates.  While the scope is active:

* counter bumps on the database's
  :class:`~repro.storage.stats.Instrumentation` (index probes, predicate
  evaluations, engine counters flushed via
  :func:`~repro.storage.stats.emit_many`) are credited to that
  operator — exclusively, i.e. a parent does not re-count its
  children's work;
* wall time is measured (inclusive of children; :meth:`self_seconds`
  subtracts them back out);
* the operator's output cardinality is recorded when the scope closes.

The registry is thread-safe: the registration table is lock-guarded and
the evaluation stack is thread-local, so concurrent evaluations against
one database do not corrupt each other's attribution.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.stats import Instrumentation
    from . import expr as E

#: Path of a plan node: child indexes from the root (root = ``()``).
Path = tuple[int, ...]


def cardinality(value: Any) -> int:
    """How many "rows" a value contributes as an operator's output.

    Sets and lists count members, trees count nodes (the unit the §4
    narrowing argument is about), everything else is one row.
    """
    from ..core.aqua_list import AquaList
    from ..core.aqua_set import AquaMultiset, AquaSet
    from ..core.aqua_tree import AquaTree

    if isinstance(value, AquaTree):
        return value.size()
    if isinstance(value, (AquaSet, AquaMultiset, AquaList)):
        return len(value)
    return 1


@dataclass
class OperatorMetrics:
    """What one plan operator actually did during evaluation."""

    path: Path
    head: str
    counters: Counter = field(default_factory=Counter)
    rows_out: int | None = None
    wall_seconds: float = 0.0  # inclusive of children
    calls: int = 0
    #: Largest number of rows this operator held materialized at once.
    #: The eager executor materializes every operator's full output
    #: before its parent runs, so there this equals ``rows_out``; the
    #: streaming executor only records buffers it actually accumulates
    #: (materialize/intersect/difference buffers and the result sink).
    peak_buffered: int = 0
    #: Durable observations about this operator ("misestimate" when
    #: EXPLAIN ANALYZE flagged its row estimate).  OR-ed by :meth:`
    #: PlanMetrics.merge`, so a flag raised by any shard/run survives
    #: aggregation.
    flags: set = field(default_factory=set)
    #: Per-shard summaries when this operator ran as a parallel
    #: exchange: one dict per shard (id, members, rows, counters, wall,
    #: and ``tripped`` when that shard hit the budget).  ``None`` for
    #: operators that ran single-threaded.
    shards: list | None = None

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready record (benchmark harness output)."""
        record = {
            "path": list(self.path),
            "operator": self.head,
            "rows_out": self.rows_out,
            "wall_seconds": self.wall_seconds,
            "calls": self.calls,
            "peak_buffered": self.peak_buffered,
            "counters": dict(self.counters),
        }
        if self.flags:
            record["flags"] = sorted(self.flags)
        if self.shards is not None:
            record["shards"] = list(self.shards)
        return record


class PlanMetrics:
    """Registry of per-operator metrics for one plan evaluation."""

    def __init__(self) -> None:
        self.operators: dict[Path, OperatorMetrics] = {}
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- collection (interpreter side) -------------------------------------

    def _stack(self) -> list[list[Any]]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def operator(
        self, node: "E.Expr", stats: "Instrumentation"
    ) -> Iterator[OperatorMetrics]:
        """Scope one plan node's evaluation.

        The node's path is derived from the evaluation order, which the
        interpreter guarantees matches ``children()`` order; re-entering
        the same path (a re-evaluated plan) accumulates into the same
        record.
        """
        stack = self._stack()
        if stack:
            parent_frame = stack[-1]
            path: Path = (*parent_frame[0].path, parent_frame[1])
            parent_frame[1] += 1
        else:
            path = ()
        with self._lock:
            op = self.operators.get(path)
            if op is None:
                op = self.operators[path] = OperatorMetrics(path, node.head())
        op.calls += 1
        frame = [op, 0]
        stack.append(frame)
        started = time.perf_counter()
        try:
            with stats.attribute_to(op):
                yield op
        finally:
            op.wall_seconds += time.perf_counter() - started
            stack.pop()

    def record_output(self, op: OperatorMetrics, value: Any) -> None:
        op.rows_out = cardinality(value)
        # The eager executor hands its parent a fully materialized
        # value, so the output cardinality *is* a resident buffer.
        op.peak_buffered = max(op.peak_buffered, op.rows_out)

    # -- collection (streaming executor side) -------------------------------

    def register(self, path: Path, head: str) -> OperatorMetrics:
        """Get-or-create the record for a physical operator at ``path``.

        The streaming executor calls this once per ``open()`` (each call
        counts as one ``calls``); counters and wall time are then fed
        through :meth:`~repro.storage.stats.Instrumentation.attribute_to`
        frames and explicit accumulation in ``PhysicalOp.next()``.
        """
        with self._lock:
            op = self.operators.get(path)
            if op is None:
                op = self.operators[path] = OperatorMetrics(path, head)
        op.calls += 1
        return op

    @staticmethod
    def note_buffered(op: OperatorMetrics, buffered: int) -> None:
        """Record that ``op`` currently holds ``buffered`` rows in memory."""
        if buffered > op.peak_buffered:
            op.peak_buffered = buffered

    def merge(self, other: "PlanMetrics", *, wall: str = "sum") -> "PlanMetrics":
        """Fold another registry into this one, path by path.

        The exchange operator gives each shard worker its own private
        registry (attribution frames are thread-local, so a shared one
        would credit worker bumps to nothing) and folds them together
        afterwards; the serving layer uses the same fold for sequential
        re-runs.  The two differ in exactly one respect, the ``wall``
        semantics:

        * ``wall="sum"`` — sequential runs: wall times accumulate,
          matching what one thread actually spent;
        * ``wall="max"`` — parallel shards: the shards overlapped, so
          the rolled-up wall time is the slowest shard, not the sum —
          summing would report more time than the query took.

        Counters, ``rows_out`` and ``calls`` always sum (work done is
        work done, overlapped or not); ``peak_buffered`` takes the max
        (buffers coexist, but the registry tracks the largest single
        buffer); ``flags`` OR together so a misestimate observed by any
        shard survives; per-shard summary rows concatenate.
        """
        if wall not in ("sum", "max"):
            raise ValueError(f"wall must be 'sum' or 'max', got {wall!r}")
        with self._lock:
            for path, theirs in sorted(other.operators.items()):
                mine = self.operators.get(path)
                if mine is None:
                    mine = self.operators[path] = OperatorMetrics(path, theirs.head)
                mine.counters.update(theirs.counters)
                if theirs.rows_out is not None:
                    mine.rows_out = (mine.rows_out or 0) + theirs.rows_out
                mine.calls += theirs.calls
                mine.peak_buffered = max(mine.peak_buffered, theirs.peak_buffered)
                if wall == "sum":
                    mine.wall_seconds += theirs.wall_seconds
                else:
                    mine.wall_seconds = max(mine.wall_seconds, theirs.wall_seconds)
                mine.flags |= theirs.flags
                if theirs.shards:
                    mine.shards = [*(mine.shards or []), *theirs.shards]
        return self

    def peak_intermediate(self) -> int:
        """The largest per-operator resident buffer seen during the run.

        This is the quantity the §4 pipelining argument is about: the
        eager executor's peak is the largest operator output anywhere in
        the plan, while the streaming executor's is only what it truly
        accumulated (typically just the final result sink).
        """
        return max(
            (op.peak_buffered for op in self.operators.values()), default=0
        )

    # -- reporting ----------------------------------------------------------

    def __getitem__(self, path: Path) -> OperatorMetrics:
        return self.operators[path]

    def get(self, path: Path) -> OperatorMetrics | None:
        return self.operators.get(path)

    def children_of(self, path: Path) -> list[OperatorMetrics]:
        return [
            op
            for p, op in sorted(self.operators.items())
            if len(p) == len(path) + 1 and p[: len(path)] == path
        ]

    def self_seconds(self, path: Path) -> float:
        """Wall time spent in the operator itself, children excluded."""
        op = self.operators[path]
        return max(
            0.0,
            op.wall_seconds - sum(c.wall_seconds for c in self.children_of(path)),
        )

    def rows_in(self, path: Path) -> int | None:
        """Input cardinality: the children's combined output (None for sources)."""
        children = self.children_of(path)
        if not children:
            return None
        if any(c.rows_out is None for c in children):
            return None
        return sum(c.rows_out or 0 for c in children)

    def total(self, name: str) -> int:
        """A counter summed over all operators."""
        return sum(op.counters[name] for op in self.operators.values())

    def totals(self) -> dict[str, int]:
        merged: Counter = Counter()
        for op in self.operators.values():
            merged.update(op.counters)
        return dict(merged)

    def to_records(self) -> list[dict[str, Any]]:
        """JSON-ready per-operator records, root first."""
        return [op.to_dict() for _, op in sorted(self.operators.items())]

    def __repr__(self) -> str:
        return f"PlanMetrics({len(self.operators)} operators, {self.totals()})"
