"""Evaluator for logical/physical query expressions.

Gives semantics to :mod:`repro.query.expr` nodes against a
:class:`~repro.storage.Database`.  The physical (``Indexed*``) nodes
exercise the access paths; everything else routes to the algebra in
:mod:`repro.algebra`.  All predicate evaluations run through the
database's :class:`~repro.storage.Instrumentation` counters so plans can
be compared by work as well as by wall-clock.
"""

from __future__ import annotations

from typing import Any

from .. import guardrails
from ..algebra import (
    all_anc,
    all_desc,
    apply_list,
    apply_tree,
    select,
    select_list,
    split,
    split_list,
    sub_select,
    sub_select_list,
)
from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree, TreeNode
from ..errors import QueryError, ResourceExhaustedError
from ..guardrails import Budget
from ..storage.database import Database
from . import expr as E
from .metrics import PlanMetrics, cardinality


def evaluate(node: E.Expr, db: Database, budget: Budget | None = None) -> Any:
    """Evaluate a query expression against ``db``.

    The database's instrumentation sink is activated for the duration,
    so engine-level counters (DFA cache hits, backtrack steps) land in
    ``db.stats`` alongside the interpreter's own counts.  When a
    :class:`~repro.query.metrics.PlanMetrics` collector is installed
    (see :func:`evaluate_with_metrics`), every node additionally runs
    inside its own attribution scope — that is the instrumented
    executor behind ``EXPLAIN ANALYZE``.

    The outermost call arms an execution guard from ``budget`` (or the
    ``AQUA_*`` environment knobs when no budget is given); nested calls
    reuse it, so one guard covers the whole plan.  A tripped limit
    raises :class:`~repro.errors.ResourceExhaustedError` annotated with
    the operator being evaluated and, during an instrumented run, the
    partial :class:`~repro.query.metrics.PlanMetrics`.
    """
    method = _DISPATCH.get(type(node))
    if method is None:
        raise QueryError(f"no evaluation rule for {type(node).__name__}")
    stats = db.stats
    collector = stats.collector
    with guardrails.guarded(budget) as guard, stats.activated():
        if guard is not None:
            guard.tick(1, "interpreter dispatch")
        if collector is None:
            result = method(node, db)
        else:
            op = None
            try:
                with collector.operator(node, stats) as op:
                    result = method(node, db)
            except ResourceExhaustedError as exc:
                _annotate_trip(exc, collector, op)
                raise
            collector.record_output(op, result)
        if guard is not None and guard.budget.max_results is not None:
            guard.check_results(cardinality(result), node.head())
        return result


def _annotate_trip(exc: ResourceExhaustedError, collector: PlanMetrics, op) -> None:
    """Attach the partial metrics and the tripping operator to ``exc``.

    Only the innermost operator annotates (the one actually running when
    the budget tripped); outer frames see the fields already set and
    leave them alone.
    """
    if exc.metrics is None:
        exc.metrics = collector
    if exc.plan_path is None and op is not None:
        exc.plan_path = op.path
        exc.operator = op.head


def evaluate_with_metrics(
    expr: E.Expr,
    db: Database,
    metrics: PlanMetrics | None = None,
    budget: Budget | None = None,
) -> tuple[Any, PlanMetrics]:
    """Evaluate ``expr`` collecting per-operator runtime metrics.

    Returns ``(result, metrics)`` where ``metrics`` holds one
    :class:`~repro.query.metrics.OperatorMetrics` scope per plan node:
    output cardinality, wall time, and the counters (index probes,
    predicate evaluations, pattern-engine work) attributable to that
    operator alone.  On a budget trip the raised
    :class:`~repro.errors.ResourceExhaustedError` carries the same
    (partial) ``metrics`` object, so callers can render what ran.
    """
    metrics = metrics if metrics is not None else PlanMetrics()
    with db.stats.collecting(metrics):
        result = evaluate(expr, db, budget=budget)
    return result, metrics


def _as_tree(value: Any, node: E.Expr) -> AquaTree:
    if not isinstance(value, AquaTree):
        raise QueryError(f"{node.describe()} expects a tree input, got {type(value).__name__}")
    return value


def _as_list(value: Any, node: E.Expr) -> AquaList:
    if not isinstance(value, AquaList):
        raise QueryError(f"{node.describe()} expects a list input, got {type(value).__name__}")
    return value


def _as_set(value: Any, node: E.Expr) -> AquaSet:
    if not isinstance(value, AquaSet):
        raise QueryError(f"{node.describe()} expects a set input, got {type(value).__name__}")
    return value


# -- sources -------------------------------------------------------------------


def _eval_root(node: E.Root, db: Database) -> Any:
    return db.root(node.name)


def _eval_extent(node: E.Extent, db: Database) -> AquaSet:
    return db.extent(node.name)


def _eval_literal(node: E.Literal, db: Database) -> Any:
    del db
    return node.value


# -- tree operators ---------------------------------------------------------------


def _eval_tree_select(node: E.TreeSelect, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    return select(db.stats.counting(node.predicate), tree)


def _eval_tree_apply(node: E.TreeApply, db: Database) -> AquaTree:
    tree = _as_tree(evaluate(node.input, db), node)
    return apply_tree(node.function, tree)


def _eval_sub_select(node: E.SubSelect, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    size = tree.size()
    db.stats.bump("nodes_scanned", size)
    guard = guardrails.current_guard()
    if guard is not None:
        guard.charge_nodes(size, "tree scan")
    return sub_select(node.pattern, tree)


def _eval_indexed_sub_select(node: E.IndexedSubSelect, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    attributes: set[str] = set()
    for anchor in node.anchors:
        attributes |= anchor.attributes()
    index = db.tree_index(tree, attributes)
    roots: dict[int, TreeNode] = {}
    for anchor in node.anchors:
        candidates, used = index.candidate_nodes(anchor, db.stats)
        if not used:
            # The access path fell through (no servable term): behave
            # like the logical operator rather than re-scanning twice.
            return sub_select(node.pattern, tree)
        for candidate in candidates:
            if anchor(candidate.value):
                roots[id(candidate)] = candidate
    return sub_select(node.pattern, tree, roots=list(roots.values()))


def _eval_split(node: E.Split, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    return split(node.pattern, node.function, tree)


def _eval_indexed_split(node: E.IndexedSplit, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    attributes: set[str] = set()
    for anchor in node.anchors:
        attributes |= anchor.attributes()
    index = db.tree_index(tree, attributes)
    roots: dict[int, TreeNode] = {}
    for anchor in node.anchors:
        candidates, used = index.candidate_nodes(anchor, db.stats)
        if not used:
            return split(node.pattern, node.function, tree)
        for candidate in candidates:
            if anchor(candidate.value):
                roots[id(candidate)] = candidate
    return split(node.pattern, node.function, tree, roots=list(roots.values()))


def _eval_all_anc(node: E.AllAnc, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    return all_anc(node.pattern, node.function, tree)


def _eval_all_desc(node: E.AllDesc, db: Database) -> AquaSet:
    tree = _as_tree(evaluate(node.input, db), node)
    return all_desc(node.pattern, node.function, tree)


# -- list operators ------------------------------------------------------------------


def _eval_list_select(node: E.ListSelect, db: Database) -> AquaList:
    values = _as_list(evaluate(node.input, db), node)
    return select_list(db.stats.counting(node.predicate), values)


def _eval_list_apply(node: E.ListApply, db: Database) -> AquaList:
    values = _as_list(evaluate(node.input, db), node)
    return apply_list(node.function, values)


def _eval_list_sub_select(node: E.ListSubSelect, db: Database) -> AquaSet:
    values = _as_list(evaluate(node.input, db), node)
    db.stats.bump("positions_scanned", len(values) + 1)
    guard = guardrails.current_guard()
    if guard is not None:
        guard.charge_nodes(len(values) + 1, "list scan")
    return sub_select_list(node.pattern, values)


def _eval_indexed_list_sub_select(node: E.IndexedListSubSelect, db: Database) -> AquaSet:
    values = _as_list(evaluate(node.input, db), node)
    index = db.list_index(values, node.anchor.attributes())
    positions, used = index.positions_for(node.anchor, db.stats)
    if not used:
        return sub_select_list(node.pattern, values)
    starts = sorted(
        {p - offset for p in positions for offset in node.offsets if p - offset >= 0}
    )
    db.stats.bump("positions_scanned", len(starts))
    return sub_select_list(node.pattern, values, starts=starts)


def _eval_list_split(node: E.ListSplit, db: Database) -> AquaSet:
    values = _as_list(evaluate(node.input, db), node)
    return split_list(node.pattern, node.function, values)


# -- set operators --------------------------------------------------------------------


def _eval_set_select(node: E.SetSelect, db: Database) -> AquaSet:
    collection = _as_set(evaluate(node.input, db), node)
    return collection.select(db.stats.counting(node.predicate))


def _eval_indexed_set_select(node: E.IndexedSetSelect, db: Database) -> AquaSet:
    if isinstance(node.input, E.Extent):
        rows, _ = db.candidates(node.input.name, node.indexed)
        base = AquaSet(rows)
    else:
        base = _as_set(evaluate(node.input, db), node)
    checked = base.select(db.stats.counting(node.indexed))
    if node.residual is None:
        return checked
    return checked.select(db.stats.counting(node.residual))


def _eval_set_apply(node: E.SetApply, db: Database) -> AquaSet:
    collection = _as_set(evaluate(node.input, db), node)
    return collection.apply(node.function)


def _eval_set_flatten(node: E.SetFlatten, db: Database) -> AquaSet:
    collection = _as_set(evaluate(node.input, db), node)
    result: AquaSet = AquaSet()
    for member in collection:
        if not isinstance(member, AquaSet):
            raise QueryError("flatten expects a set of sets")
        for item in member:
            result.add(item)
    return result


def _eval_union(node: E.SetUnion, db: Database) -> AquaSet:
    return _as_set(evaluate(node.left, db), node).union(
        _as_set(evaluate(node.right, db), node)
    )


def _eval_intersection(node: E.SetIntersection, db: Database) -> AquaSet:
    return _as_set(evaluate(node.left, db), node).intersection(
        _as_set(evaluate(node.right, db), node)
    )


def _eval_difference(node: E.SetDifference, db: Database) -> AquaSet:
    return _as_set(evaluate(node.left, db), node).difference(
        _as_set(evaluate(node.right, db), node)
    )


_DISPATCH = {
    E.Root: _eval_root,
    E.Extent: _eval_extent,
    E.Literal: _eval_literal,
    E.TreeSelect: _eval_tree_select,
    E.TreeApply: _eval_tree_apply,
    E.SubSelect: _eval_sub_select,
    E.IndexedSubSelect: _eval_indexed_sub_select,
    E.Split: _eval_split,
    E.IndexedSplit: _eval_indexed_split,
    E.AllAnc: _eval_all_anc,
    E.AllDesc: _eval_all_desc,
    E.ListSelect: _eval_list_select,
    E.ListApply: _eval_list_apply,
    E.ListSubSelect: _eval_list_sub_select,
    E.IndexedListSubSelect: _eval_indexed_list_sub_select,
    E.ListSplit: _eval_list_split,
    E.SetSelect: _eval_set_select,
    E.IndexedSetSelect: _eval_indexed_set_select,
    E.SetApply: _eval_set_apply,
    E.SetFlatten: _eval_set_flatten,
    E.SetUnion: _eval_union,
    E.SetIntersection: _eval_intersection,
    E.SetDifference: _eval_difference,
}
