"""Query evaluation: a thin driver over two executors.

Gives semantics to :mod:`repro.query.expr` nodes against a
:class:`~repro.storage.Database` through two interchangeable executors:

* **streaming** (the default) — the expression is lowered to a
  Volcano-style physical plan (:mod:`repro.physical`) and rows are
  pulled through ``open()/next()/close()`` pipelines.  Budgets are
  ticked on every pull, so a ``max_nodes_scanned`` or ``max_results``
  limit trips mid-stream instead of after an operator materialized its
  whole output;
* **eager** — the original recursive interpreter, kept as the reference
  semantics the streaming executor is property-tested against.

Both run all predicate evaluations through the database's
:class:`~repro.storage.Instrumentation` counters, produce identical
values (order, deduplication, equality notions included) and identical
per-operator counter totals, so plans can be compared by work as well as
by wall-clock under either executor.

The executor is chosen per call (``executor=``) or process-wide via the
``AQUA_EXECUTOR`` environment knob (``streaming`` | ``eager``).
"""

from __future__ import annotations

from typing import Any, Mapping

from .. import config, params as params_mod
from ..algebra import (
    all_anc,
    all_desc,
    apply_list,
    apply_tree,
    select,
    select_list,
    split,
    split_list,
    sub_select,
    sub_select_list,
)
from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..errors import QueryError, ResourceExhaustedError
from ..guardrails import Budget, Guard
from ..storage.database import Database
from . import expr as E
from .metrics import PlanMetrics, cardinality

#: Environment knob selecting the default executor (see repro.config).
EXECUTOR_ENV = config.EXECUTOR_ENV
_EXECUTORS = config.EXECUTORS


def evaluate(
    node: E.Expr,
    db: Database,
    budget: Budget | None = None,
    executor: str | None = None,
    params: "Mapping[str, Any] | None" = None,
) -> Any:
    """Evaluate a query expression against ``db``.

    ``db`` may be a :class:`~repro.storage.Database` or a pinned
    :class:`~repro.storage.snapshot.DatabaseSnapshot` — operators resolve
    roots, extents and indexes through the view at runtime, so a snapshot
    evaluates exactly as the base did at pin time.

    Now a thin wrapper over the default :class:`repro.api.Session`: the
    expression is prepared (planned once, served from the process-wide
    plan cache on repeats — lazily invalidated when any of the plan's
    per-resource version counters move) and executed with semantics
    identical to the historical direct path.  The guard, the instrumentation sink and the tree-match
    registry are armed **once** per run and threaded through the chosen
    executor; when a :class:`~repro.query.metrics.PlanMetrics` collector
    is installed (see :func:`evaluate_with_metrics`), per-operator
    metrics are collected by attribution scopes in the eager executor
    and per-pull accounting in the streaming one — same paths, same
    totals.

    A tripped limit raises
    :class:`~repro.errors.ResourceExhaustedError` annotated with the
    operator being evaluated and, during an instrumented run, the
    partial :class:`~repro.query.metrics.PlanMetrics`.
    """
    from ..api import default_session

    return default_session(db).query(node, params, budget=budget, executor=executor)


def _annotate_trip(exc: ResourceExhaustedError, collector: PlanMetrics, op) -> None:
    """Attach the partial metrics and the tripping operator to ``exc``.

    Only the innermost operator annotates (the one actually running when
    the budget tripped); outer frames see the fields already set and
    leave them alone.
    """
    if exc.metrics is None:
        exc.metrics = collector
    if exc.plan_path is None and op is not None:
        exc.plan_path = op.path
        exc.operator = op.head


def evaluate_with_metrics(
    expr: E.Expr,
    db: Database,
    metrics: PlanMetrics | None = None,
    budget: Budget | None = None,
    executor: str | None = None,
    params: "Mapping[str, Any] | None" = None,
) -> tuple[Any, PlanMetrics]:
    """Evaluate ``expr`` collecting per-operator runtime metrics.

    Returns ``(result, metrics)`` where ``metrics`` holds one
    :class:`~repro.query.metrics.OperatorMetrics` scope per plan node:
    output cardinality, wall time, and the counters (index probes,
    predicate evaluations, pattern-engine work) attributable to that
    operator alone.  On a budget trip the raised
    :class:`~repro.errors.ResourceExhaustedError` carries the same
    (partial) ``metrics`` object, so callers can render what ran.
    """
    metrics = metrics if metrics is not None else PlanMetrics()
    with db.stats.collecting(metrics):
        result = evaluate(expr, db, budget=budget, executor=executor, params=params)
    return result, metrics


# -- the eager (reference) executor --------------------------------------------


def _eval(
    node: E.Expr, db: Database, guard: Guard | None, trail: tuple[str, ...]
) -> Any:
    """Recursively evaluate ``node`` with the already-armed ``guard``.

    ``trail`` is the chain of ancestor operator heads (root first); it
    rides along so input-coercion errors can say *where* in the plan the
    ill-shaped value showed up.
    """
    method = _DISPATCH.get(type(node))
    if method is None:
        raise QueryError(f"no evaluation rule for {type(node).__name__}")
    trail = (*trail, node.head())
    stats = db.stats
    collector = stats.collector
    if guard is not None:
        guard.tick(1, "interpreter dispatch")
    if collector is None:
        result = method(node, db, guard, trail)
    else:
        op = None
        try:
            with collector.operator(node, stats) as op:
                result = method(node, db, guard, trail)
        except ResourceExhaustedError as exc:
            _annotate_trip(exc, collector, op)
            raise
        collector.record_output(op, result)
    if guard is not None and guard.budget.max_results is not None:
        guard.check_results(cardinality(result), node.head())
    return result


def _coerce_message(
    node: E.Expr, expected: str, value: Any, trail: tuple[str, ...]
) -> str:
    message = (
        f"{node.describe()} expects a {expected} input, got {type(value).__name__}"
    )
    if trail:
        message += f" (plan path: {' → '.join(trail)})"
    return message


def _as_tree(value: Any, node: E.Expr, trail: tuple[str, ...] = ()) -> AquaTree:
    if not isinstance(value, AquaTree):
        raise QueryError(_coerce_message(node, "tree", value, trail))
    return value


def _as_list(value: Any, node: E.Expr, trail: tuple[str, ...] = ()) -> AquaList:
    if not isinstance(value, AquaList):
        raise QueryError(_coerce_message(node, "list", value, trail))
    return value


def _as_set(value: Any, node: E.Expr, trail: tuple[str, ...] = ()) -> AquaSet:
    if not isinstance(value, AquaSet):
        raise QueryError(_coerce_message(node, "set", value, trail))
    return value


# -- sources -------------------------------------------------------------------


def _eval_root(node: E.Root, db: Database, guard, trail) -> Any:
    del guard, trail
    return db.root(node.name)


def _eval_extent(node: E.Extent, db: Database, guard, trail) -> AquaSet:
    del guard, trail
    return db.extent(node.name)


def _eval_literal(node: E.Literal, db: Database, guard, trail) -> Any:
    del db, guard, trail
    return node.value


def _eval_param(node: E.Param, db: Database, guard, trail) -> Any:
    del db, guard, trail
    return params_mod.resolve(params_mod.Param(node.name))


# -- tree operators ---------------------------------------------------------------


def _eval_tree_select(node: E.TreeSelect, db: Database, guard, trail) -> AquaSet:
    tree = _as_tree(_eval(node.input, db, guard, trail), node, trail)
    return select(db.stats.counting(node.predicate), tree)


def _eval_tree_apply(node: E.TreeApply, db: Database, guard, trail) -> AquaTree:
    tree = _as_tree(_eval(node.input, db, guard, trail), node, trail)
    return apply_tree(node.function, tree)


def _eval_sub_select(node: E.SubSelect, db: Database, guard, trail) -> AquaSet:
    tree = _as_tree(_eval(node.input, db, guard, trail), node, trail)
    size = tree.size()
    db.stats.bump("nodes_scanned", size)
    if guard is not None:
        guard.charge_nodes(size, "tree scan")
    return sub_select(node.pattern, tree)


def _eval_split(node: E.Split, db: Database, guard, trail) -> AquaSet:
    tree = _as_tree(_eval(node.input, db, guard, trail), node, trail)
    return split(node.pattern, node.function, tree)


def _eval_all_anc(node: E.AllAnc, db: Database, guard, trail) -> AquaSet:
    tree = _as_tree(_eval(node.input, db, guard, trail), node, trail)
    return all_anc(node.pattern, node.function, tree)


def _eval_all_desc(node: E.AllDesc, db: Database, guard, trail) -> AquaSet:
    tree = _as_tree(_eval(node.input, db, guard, trail), node, trail)
    return all_desc(node.pattern, node.function, tree)


# -- list operators ------------------------------------------------------------------


def _eval_list_select(node: E.ListSelect, db: Database, guard, trail) -> AquaList:
    values = _as_list(_eval(node.input, db, guard, trail), node, trail)
    return select_list(db.stats.counting(node.predicate), values)


def _eval_list_apply(node: E.ListApply, db: Database, guard, trail) -> AquaList:
    values = _as_list(_eval(node.input, db, guard, trail), node, trail)
    return apply_list(node.function, values)


def _eval_list_sub_select(node: E.ListSubSelect, db: Database, guard, trail) -> AquaSet:
    values = _as_list(_eval(node.input, db, guard, trail), node, trail)
    db.stats.bump("positions_scanned", len(values) + 1)
    if guard is not None:
        guard.charge_nodes(len(values) + 1, "list scan")
    return sub_select_list(node.pattern, values)


def _eval_list_split(node: E.ListSplit, db: Database, guard, trail) -> AquaSet:
    values = _as_list(_eval(node.input, db, guard, trail), node, trail)
    return split_list(node.pattern, node.function, values)


# -- set operators --------------------------------------------------------------------


def _eval_set_select(node: E.SetSelect, db: Database, guard, trail) -> AquaSet:
    collection = _as_set(_eval(node.input, db, guard, trail), node, trail)
    return collection.select(db.stats.counting(node.predicate))


def _eval_set_apply(node: E.SetApply, db: Database, guard, trail) -> AquaSet:
    collection = _as_set(_eval(node.input, db, guard, trail), node, trail)
    return collection.apply(node.function)


def _eval_set_flatten(node: E.SetFlatten, db: Database, guard, trail) -> AquaSet:
    collection = _as_set(_eval(node.input, db, guard, trail), node, trail)
    result: AquaSet = AquaSet()
    for member in collection:
        if not isinstance(member, AquaSet):
            raise QueryError("flatten expects a set of sets")
        for item in member:
            result.add(item)
    return result


def _eval_union(node: E.SetUnion, db: Database, guard, trail) -> AquaSet:
    return _as_set(_eval(node.left, db, guard, trail), node, trail).union(
        _as_set(_eval(node.right, db, guard, trail), node, trail)
    )


def _eval_intersection(node: E.SetIntersection, db: Database, guard, trail) -> AquaSet:
    return _as_set(_eval(node.left, db, guard, trail), node, trail).intersection(
        _as_set(_eval(node.right, db, guard, trail), node, trail)
    )


def _eval_difference(node: E.SetDifference, db: Database, guard, trail) -> AquaSet:
    return _as_set(_eval(node.left, db, guard, trail), node, trail).difference(
        _as_set(_eval(node.right, db, guard, trail), node, trail)
    )


_DISPATCH = {
    E.Root: _eval_root,
    E.Extent: _eval_extent,
    E.Literal: _eval_literal,
    E.Param: _eval_param,
    E.TreeSelect: _eval_tree_select,
    E.TreeApply: _eval_tree_apply,
    E.SubSelect: _eval_sub_select,
    E.Split: _eval_split,
    E.AllAnc: _eval_all_anc,
    E.AllDesc: _eval_all_desc,
    E.ListSelect: _eval_list_select,
    E.ListApply: _eval_list_apply,
    E.ListSubSelect: _eval_list_sub_select,
    E.ListSplit: _eval_list_split,
    E.SetSelect: _eval_set_select,
    E.SetApply: _eval_set_apply,
    E.SetFlatten: _eval_set_flatten,
    E.SetUnion: _eval_union,
    E.SetIntersection: _eval_intersection,
    E.SetDifference: _eval_difference,
}
