"""Logical query expressions over the AQUA algebra.

AQUA is "a standard input language for query optimizers" (§1): queries
arrive as operator trees, get rewritten algebraically, and are then
evaluated.  This module defines that operator tree.  Each node is a
small immutable value object; the interpreter
(:mod:`repro.query.interpreter`) gives them semantics against a
:class:`~repro.storage.Database`, and the optimizer
(:mod:`repro.optimizer`) rewrites them.

Logical nodes mirror the paper's operators; *physical* nodes (the
``Indexed*`` variants) are the access-path-committed forms the optimizer
introduces — they make the §4 rewrites visible as plan shapes::

    SubSelect(tp, src)                      -- scan every node
    IndexedSubSelect(tp, anchor, src)       -- split-style: probe the
                                               anchor's index, match at
                                               the survivors only
"""

from __future__ import annotations

import dataclasses
import threading
import warnings
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..patterns.list_ast import ListPattern
from ..patterns.tree_ast import TreePattern
from ..predicates.alphabet import AlphabetPredicate

_shim_depth = threading.local()


@contextmanager
def internal_shims() -> Iterator[None]:
    """Suppress the ``Indexed*`` deprecation warning for internal rebuilds.

    The optimizer's rewrite rules still *produce* the shims (they are the
    serializable plan shapes of the §4 rewrites), and ``with_children``
    reconstructs them during passes; neither is a user choosing the
    deprecated API, so both wrap themselves in this scope.
    """
    depth = getattr(_shim_depth, "value", 0)
    _shim_depth.value = depth + 1
    try:
        yield
    finally:
        _shim_depth.value = depth


def _warn_shim(node: Expr) -> None:
    if getattr(_shim_depth, "value", 0):
        return
    warnings.warn(
        f"constructing {type(node).__name__} directly is deprecated; access-path"
        " choice lives in the lowering pass (physical.lower with"
        " choose_access_paths) and the optimizer now emits these nodes itself",
        DeprecationWarning,
        stacklevel=3,
    )


class Expr:
    """Base class for query expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def head(self) -> str:
        """The operator's own rendering with children elided.

        EXPLAIN prints one head per plan line (children are indented
        lines of their own); ``describe()`` composes the full one-line
        form structurally from heads, so a head can never be corrupted
        by a child's text appearing inside a pattern or predicate.
        """
        raise NotImplementedError

    def describe(self) -> str:
        children = self.children()
        if not children:
            return self.head()
        inner = ", ".join(child.describe() for child in children)
        return f"{self.head()}({inner})"

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return self.describe()


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Root(Expr):
    """A named database root (a tree, list or any bound object)."""

    name: str

    def head(self) -> str:
        return f"root({self.name})"


@dataclass(frozen=True, repr=False)
class Extent(Expr):
    """A class extent, as an AQUA set."""

    name: str

    def head(self) -> str:
        return f"extent({self.name})"


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    """An inline value (tree, list, set...)."""

    value: Any

    def head(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, repr=False)
class Param(Expr):
    """A named parameter slot, evaluated to its current binding.

    The slot — not the bound value — is part of the plan's structure, so
    one prepared plan (:mod:`repro.query.prepare`) serves every binding.
    """

    name: str

    def head(self) -> str:
        return f"${self.name}"


# ---------------------------------------------------------------------------
# Unary-input operator base
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class _Unary(Expr):
    input: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.input,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (child,) = children
        return dataclasses.replace(self, input=child)


# ---------------------------------------------------------------------------
# Tree operators (§4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class TreeSelect(_Unary):
    predicate: AlphabetPredicate = field(kw_only=True)

    def head(self) -> str:
        return f"select[{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class TreeApply(_Unary):
    function: Callable[[Any], Any] = field(kw_only=True)

    def head(self) -> str:
        name = getattr(self.function, "__name__", "f")
        return f"apply[{name}]"


@dataclass(frozen=True, repr=False)
class SubSelect(_Unary):
    pattern: TreePattern = field(kw_only=True)

    def head(self) -> str:
        return f"sub_select[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class IndexedSubSelect(_Unary):
    """Physical: probe the anchors' node indexes, then match only there.

    This is the plan shape of §4's rewrite
    ``apply(sub_select(⊤tp))(split(d, reassemble)(T))`` with the split
    fused away: the index probes play the role of ``split(d, ...)``.
    ``anchors`` is the set of root predicates — every match root must
    satisfy one of them, so their probes jointly cover all matches.

    .. deprecated:: Access-path choice now lives in the lowering pass
       (:func:`repro.physical.lower.lower` with ``choose_access_paths``,
       backed by :func:`repro.optimizer.anchors.tree_split_anchors`).
       This node remains as a shim so rewrite-engine plans stay
       serializable; it lowers to the same ``index_anchor_scan``
       operator the lowering pass would pick itself.
    """

    pattern: TreePattern = field(kw_only=True)
    anchors: tuple[AlphabetPredicate, ...] = field(kw_only=True)

    def __post_init__(self) -> None:
        _warn_shim(self)

    def head(self) -> str:
        anchors = " | ".join(a.describe() for a in self.anchors)
        return f"ix_sub_select[{self.pattern.describe()}; anchors={anchors}]"


@dataclass(frozen=True, repr=False)
class Split(_Unary):
    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"split[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class IndexedSplit(_Unary):
    """Physical: "the split operator uses the index on d" (§4) — probe
    the anchors' node indexes to find candidate match roots, then build
    the (x, y, z) pieces only there.

    .. deprecated:: Shim for the lowering pass's access-path choice
       (see :class:`IndexedSubSelect`); lowers to ``index_anchor_split``.
    """

    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)
    anchors: tuple[AlphabetPredicate, ...] = field(kw_only=True)

    def __post_init__(self) -> None:
        _warn_shim(self)

    def head(self) -> str:
        anchors = " | ".join(a.describe() for a in self.anchors)
        return f"ix_split[{self.pattern.describe()}; anchors={anchors}]"


@dataclass(frozen=True, repr=False)
class AllAnc(_Unary):
    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"all_anc[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class AllDesc(_Unary):
    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"all_desc[{self.pattern.describe()}]"


# ---------------------------------------------------------------------------
# List operators (§6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class ListSelect(_Unary):
    predicate: AlphabetPredicate = field(kw_only=True)

    def head(self) -> str:
        return f"lselect[{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class ListApply(_Unary):
    function: Callable[[Any], Any] = field(kw_only=True)

    def head(self) -> str:
        name = getattr(self.function, "__name__", "f")
        return f"lapply[{name}]"


@dataclass(frozen=True, repr=False)
class ListSubSelect(_Unary):
    pattern: ListPattern = field(kw_only=True)

    def head(self) -> str:
        return f"lsub_select[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class IndexedListSubSelect(_Unary):
    """Physical: use a position index on ``anchor`` to limit start
    positions; ``offsets`` are the possible distances from a match start
    to the anchor's position (computed by the optimizer).

    .. deprecated:: Shim for the lowering pass's access-path choice
       (backed by :func:`repro.optimizer.anchors.list_anchor_choice`);
       lowers to ``list_anchor_scan``.
    """

    pattern: ListPattern = field(kw_only=True)
    anchor: AlphabetPredicate = field(kw_only=True)
    offsets: tuple[int, ...] = field(kw_only=True)

    def __post_init__(self) -> None:
        _warn_shim(self)

    def head(self) -> str:
        return (
            f"ix_lsub_select[{self.pattern.describe()};"
            f" anchor={self.anchor.describe()} @-{list(self.offsets)}]"
        )


@dataclass(frozen=True, repr=False)
class ListSplit(_Unary):
    pattern: ListPattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"lsplit[{self.pattern.describe()}]"


# ---------------------------------------------------------------------------
# Set operators (§2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class SetSelect(_Unary):
    predicate: AlphabetPredicate = field(kw_only=True)

    def head(self) -> str:
        return f"sselect[{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class IndexedSetSelect(_Unary):
    """Physical: serve ``indexed`` from an extent index, re-check
    ``residual`` on the survivors (the relational-style decomposition of
    §4's "Why Split?" discussion).

    .. deprecated:: Shim for the lowering pass's access-path choice
       (backed by :func:`repro.optimizer.anchors.extent_conjunct_split`);
       lowers to ``indexed_select_filter``.
    """

    indexed: AlphabetPredicate = field(kw_only=True)
    residual: AlphabetPredicate | None = field(kw_only=True, default=None)

    def __post_init__(self) -> None:
        _warn_shim(self)

    def head(self) -> str:
        residual = self.residual.describe() if self.residual else "true"
        return f"ix_sselect[{self.indexed.describe()}; residual={residual}]"


@dataclass(frozen=True, repr=False)
class SetApply(_Unary):
    function: Callable[[Any], Any] = field(kw_only=True)

    def head(self) -> str:
        name = getattr(self.function, "__name__", "f")
        return f"sapply[{name}]"


@dataclass(frozen=True, repr=False)
class SetFlatten(_Unary):
    """Union of a set of sets — needed to express §4's literal rewrite
    ``apply(sub_select(⊤tp))(split(d, reassemble)(T))`` whose apply step
    produces a set of per-subtree result sets."""

    def head(self) -> str:
        return "flatten"


@dataclass(frozen=True, repr=False)
class _Binary(Expr):
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        left, right = children
        return type(self)(left, right)


@dataclass(frozen=True, repr=False)
class SetUnion(_Binary):
    def head(self) -> str:
        return "union"


@dataclass(frozen=True, repr=False)
class SetIntersection(_Binary):
    def head(self) -> str:
        return "intersect"


@dataclass(frozen=True, repr=False)
class SetDifference(_Binary):
    def head(self) -> str:
        return "difference"
