"""Logical query expressions over the AQUA algebra.

AQUA is "a standard input language for query optimizers" (§1): queries
arrive as operator trees, get rewritten algebraically, and are then
evaluated.  This module defines that operator tree.  Each node is a
small immutable value object; the interpreter
(:mod:`repro.query.interpreter`) gives them semantics against a
:class:`~repro.storage.Database`, and the optimizer
(:mod:`repro.optimizer`) rewrites them.

Every node here is *logical*: plans describe what to compute, never how.
Access-path choice (index anchors, conjunct decomposition, columnar
batch operators) lives entirely in the lowering pass
(:func:`repro.physical.lower.lower` with ``choose_access_paths``) — the
``Indexed*`` expression shims that used to make those choices visible as
plan nodes were removed after their deprecation cycle.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from ..patterns.list_ast import ListPattern
from ..patterns.tree_ast import TreePattern
from ..predicates.alphabet import AlphabetPredicate


class Expr:
    """Base class for query expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        return ()

    def with_children(self, children: tuple["Expr", ...]) -> "Expr":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    def head(self) -> str:
        """The operator's own rendering with children elided.

        EXPLAIN prints one head per plan line (children are indented
        lines of their own); ``describe()`` composes the full one-line
        form structurally from heads, so a head can never be corrupted
        by a child's text appearing inside a pattern or predicate.
        """
        raise NotImplementedError

    def describe(self) -> str:
        children = self.children()
        if not children:
            return self.head()
        inner = ", ".join(child.describe() for child in children)
        return f"{self.head()}({inner})"

    def walk(self) -> Iterator["Expr"]:
        yield self
        for child in self.children():
            yield from child.walk()

    def __repr__(self) -> str:
        return self.describe()


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class Root(Expr):
    """A named database root (a tree, list or any bound object)."""

    name: str

    def head(self) -> str:
        return f"root({self.name})"


@dataclass(frozen=True, repr=False)
class Extent(Expr):
    """A class extent, as an AQUA set."""

    name: str

    def head(self) -> str:
        return f"extent({self.name})"


@dataclass(frozen=True, repr=False)
class Literal(Expr):
    """An inline value (tree, list, set...)."""

    value: Any

    def head(self) -> str:
        return f"lit({self.value!r})"


@dataclass(frozen=True, repr=False)
class Param(Expr):
    """A named parameter slot, evaluated to its current binding.

    The slot — not the bound value — is part of the plan's structure, so
    one prepared plan (:mod:`repro.query.prepare`) serves every binding.
    """

    name: str

    def head(self) -> str:
        return f"${self.name}"


# ---------------------------------------------------------------------------
# Unary-input operator base
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class _Unary(Expr):
    input: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.input,)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        (child,) = children
        return dataclasses.replace(self, input=child)


# ---------------------------------------------------------------------------
# Tree operators (§4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class TreeSelect(_Unary):
    predicate: AlphabetPredicate = field(kw_only=True)

    def head(self) -> str:
        return f"select[{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class TreeApply(_Unary):
    function: Callable[[Any], Any] = field(kw_only=True)

    def head(self) -> str:
        name = getattr(self.function, "__name__", "f")
        return f"apply[{name}]"


@dataclass(frozen=True, repr=False)
class SubSelect(_Unary):
    pattern: TreePattern = field(kw_only=True)

    def head(self) -> str:
        return f"sub_select[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class Split(_Unary):
    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"split[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class AllAnc(_Unary):
    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"all_anc[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class AllDesc(_Unary):
    pattern: TreePattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"all_desc[{self.pattern.describe()}]"


# ---------------------------------------------------------------------------
# List operators (§6)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class ListSelect(_Unary):
    predicate: AlphabetPredicate = field(kw_only=True)

    def head(self) -> str:
        return f"lselect[{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class ListApply(_Unary):
    function: Callable[[Any], Any] = field(kw_only=True)

    def head(self) -> str:
        name = getattr(self.function, "__name__", "f")
        return f"lapply[{name}]"


@dataclass(frozen=True, repr=False)
class ListSubSelect(_Unary):
    pattern: ListPattern = field(kw_only=True)

    def head(self) -> str:
        return f"lsub_select[{self.pattern.describe()}]"


@dataclass(frozen=True, repr=False)
class ListSplit(_Unary):
    pattern: ListPattern = field(kw_only=True)
    function: Callable[..., Any] = field(kw_only=True)

    def head(self) -> str:
        return f"lsplit[{self.pattern.describe()}]"


# ---------------------------------------------------------------------------
# Set operators (§2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, repr=False)
class SetSelect(_Unary):
    predicate: AlphabetPredicate = field(kw_only=True)

    def head(self) -> str:
        return f"sselect[{self.predicate.describe()}]"


@dataclass(frozen=True, repr=False)
class SetApply(_Unary):
    function: Callable[[Any], Any] = field(kw_only=True)

    def head(self) -> str:
        name = getattr(self.function, "__name__", "f")
        return f"sapply[{name}]"


@dataclass(frozen=True, repr=False)
class SetFlatten(_Unary):
    """Union of a set of sets — needed to express §4's literal rewrite
    ``apply(sub_select(⊤tp))(split(d, reassemble)(T))`` whose apply step
    produces a set of per-subtree result sets."""

    def head(self) -> str:
        return "flatten"


@dataclass(frozen=True, repr=False)
class _Binary(Expr):
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def with_children(self, children: tuple[Expr, ...]) -> Expr:
        left, right = children
        return type(self)(left, right)


@dataclass(frozen=True, repr=False)
class SetUnion(_Binary):
    def head(self) -> str:
        return "union"


@dataclass(frozen=True, repr=False)
class SetIntersection(_Binary):
    def head(self) -> str:
        return "intersect"


@dataclass(frozen=True, repr=False)
class SetDifference(_Binary):
    def head(self) -> str:
        return "difference"
