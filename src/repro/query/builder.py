"""A small fluent builder for query expressions.

The algebra papers write ``sub_select(tp)(T)``; the builder writes::

    Q.root("family").sub_select("Brazil(!?* USA !?*)", resolver=by_name)

Patterns given as text are parsed eagerly (with an optional symbol
resolver), so builder-produced expressions carry ready
:class:`TreePattern` / :class:`ListPattern` objects the optimizer can
inspect.  ``.build()`` returns the underlying :class:`Expr`; the builder
also evaluates directly via ``.run(db)`` and ``.run_optimized(db)``.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from ..params import Param
from ..patterns.list_parser import SymbolResolver, list_pattern
from ..patterns.tree_parser import tree_pattern
from ..predicates.alphabet import AlphabetPredicate
from ..storage.database import Database
from . import expr as E


class Q:
    """Wrapper around an :class:`~repro.query.expr.Expr` under construction."""

    def __init__(self, node: E.Expr) -> None:
        self.node = node

    # -- sources -----------------------------------------------------------

    @classmethod
    def root(cls, name: str) -> "Q":
        return cls(E.Root(name))

    @classmethod
    def extent(cls, name: str) -> "Q":
        return cls(E.Extent(name))

    @classmethod
    def value(cls, value: Any) -> "Q":
        return cls(E.Literal(value))

    @staticmethod
    def param(name: str) -> Param:
        """A ``$name`` slot usable wherever a predicate constant is.

        ``attr("age") > Q.param("limit")`` builds a parameterized
        comparison; bind the slot at run time with
        ``session.query(q, params={"limit": 30})`` (see
        :mod:`repro.params`).
        """
        return Param(name)

    # -- tree operators -------------------------------------------------------

    def select(self, predicate: AlphabetPredicate) -> "Q":
        return Q(E.TreeSelect(self.node, predicate=predicate))

    def apply(self, function: Callable[[Any], Any]) -> "Q":
        return Q(E.TreeApply(self.node, function=function))

    def sub_select(self, pattern: Any, resolver: SymbolResolver | None = None) -> "Q":
        return Q(E.SubSelect(self.node, pattern=tree_pattern(pattern, resolver)))

    def split(
        self,
        pattern: Any,
        function: Callable[..., Any],
        resolver: SymbolResolver | None = None,
    ) -> "Q":
        return Q(
            E.Split(self.node, pattern=tree_pattern(pattern, resolver), function=function)
        )

    def all_anc(
        self,
        pattern: Any,
        function: Callable[..., Any],
        resolver: SymbolResolver | None = None,
    ) -> "Q":
        return Q(
            E.AllAnc(self.node, pattern=tree_pattern(pattern, resolver), function=function)
        )

    def all_desc(
        self,
        pattern: Any,
        function: Callable[..., Any],
        resolver: SymbolResolver | None = None,
    ) -> "Q":
        return Q(
            E.AllDesc(self.node, pattern=tree_pattern(pattern, resolver), function=function)
        )

    # -- list operators -----------------------------------------------------------

    def lselect(self, predicate: AlphabetPredicate) -> "Q":
        return Q(E.ListSelect(self.node, predicate=predicate))

    def lapply(self, function: Callable[[Any], Any]) -> "Q":
        return Q(E.ListApply(self.node, function=function))

    def lsub_select(self, pattern: Any, resolver: SymbolResolver | None = None) -> "Q":
        return Q(E.ListSubSelect(self.node, pattern=list_pattern(pattern, resolver)))

    def lsplit(
        self,
        pattern: Any,
        function: Callable[..., Any],
        resolver: SymbolResolver | None = None,
    ) -> "Q":
        return Q(
            E.ListSplit(
                self.node, pattern=list_pattern(pattern, resolver), function=function
            )
        )

    # -- set operators -----------------------------------------------------------

    def sselect(self, predicate: AlphabetPredicate) -> "Q":
        return Q(E.SetSelect(self.node, predicate=predicate))

    def sapply(self, function: Callable[[Any], Any]) -> "Q":
        return Q(E.SetApply(self.node, function=function))

    def union(self, other: "Q") -> "Q":
        return Q(E.SetUnion(self.node, other.node))

    def intersect(self, other: "Q") -> "Q":
        return Q(E.SetIntersection(self.node, other.node))

    def difference(self, other: "Q") -> "Q":
        return Q(E.SetDifference(self.node, other.node))

    # -- terminal operations ---------------------------------------------------------

    def build(self) -> E.Expr:
        return self.node

    def run(
        self,
        db: Database,
        params: "Mapping[str, Any] | None" = None,
        **knobs: Any,
    ) -> Any:
        """Evaluate via the default Session; accepts its knob keywords
        (``budget=``, ``executor=``, ``engine=``, ``optimize=``, ...)."""
        from ..api import default_session

        return default_session(db).query(self.node, params, **knobs)

    def run_optimized(
        self,
        db: Database,
        params: "Mapping[str, Any] | None" = None,
        **knobs: Any,
    ) -> Any:
        from ..api import default_session

        knobs.setdefault("optimize", True)
        return default_session(db).query(self.node, params, **knobs)

    def describe(self) -> str:
        return self.node.describe()

    def __repr__(self) -> str:
        return f"Q<{self.describe()}>"
