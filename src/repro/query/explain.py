"""EXPLAIN for query plans: estimates, and EXPLAIN ANALYZE: actuals.

``explain(expr, db)`` renders a plan the way database shells do::

    flatten  (cost≈12, total≈152)
      sapply[per_subtree]  (cost≈10, total≈140)
        split[d]  (cost≈120, total≈130)
          root(T)  (cost≈1, size≈15)

Costs come from the optimizer's :class:`~repro.optimizer.cost.CostModel`
(abstract predicate-evaluation units); sizes are the model's input-size
estimates, exact when the source is a bound root or literal.
``explain_diff`` renders the before/after story of an optimization run,
including the rewrite trace.

``explain_analyze(expr, db)`` *runs* the plan through the instrumented
executor and prints estimated vs. actual columns per operator — rows,
cost units and wall time — plus the counters each operator caused
(index probes, predicate evaluations, pattern-engine work).  Operators
whose row estimate is off by more than ``MISESTIMATE_FACTOR`` are
flagged, which is how a mispriced rewrite shows itself at runtime.

Plan lines render each node's :meth:`~repro.query.expr.Expr.head` —
built structurally from the node's own fields, never by excising child
text from ``describe()`` strings (the old string surgery silently
corrupted lines whenever a child's rendering occurred inside a pattern
or predicate).
"""

from __future__ import annotations

from typing import Iterator

from ..storage.database import Database
from . import expr as E
from .metrics import PlanMetrics

#: Estimate/actual row ratio beyond which an operator is flagged.
MISESTIMATE_FACTOR = 10.0


def _node_line(node: E.Expr, model) -> str:
    local = model.local_cost(node)
    total = model.cost(node)
    if isinstance(node, (E.Root, E.Extent, E.Literal)):
        size = model.input_size(node)
        return f"{node.head()}  (cost≈{local:.0f}, size≈{size:.0f})"
    return f"{node.head()}  (cost≈{local:.0f}, total≈{total:.0f})"


def explain(expr: E.Expr, db: Database, indent: int = 0) -> str:
    """Render ``expr`` as an indented plan tree with cost annotations."""
    from ..optimizer.cost import CostModel

    model = CostModel(db)
    lines: list[str] = []

    def walk(node: E.Expr, depth: int) -> None:
        lines.append("  " * depth + _node_line(node, model))
        for child in node.children():
            walk(child, depth + 1)

    walk(expr, indent)
    return "\n".join(lines)


def explain_physical(
    expr: E.Expr,
    db: Database,
    indent: int = 0,
    *,
    choose_access_paths: bool = True,
) -> str:
    """Render the lowered physical pipeline for ``expr``.

    One line per streaming operator — its physical name plus the access
    path the lowering chose (full scan, index probe, eager fallback) —
    indented to mirror the logical tree it was lowered from.  Access
    paths are chosen by default (that is what an optimized execution
    runs); pass ``choose_access_paths=False`` to see the plain
    structure-mirroring lowering instead.
    """
    from ..physical import lower

    plan = lower(expr, db, choose_access_paths=choose_access_paths)
    pad = "  " * indent
    return "\n".join(pad + line for line in plan.render().splitlines())


def explain_optimization(expr: E.Expr, db: Database) -> str:
    """The full before/after story: logical plan, rewrites, physical plan."""
    from ..optimizer.engine import Optimizer

    plan, trace = Optimizer(db).optimize(expr)
    parts = [
        "Logical plan:",
        explain(expr, db, indent=1),
        "",
        "Rewrites:",
    ]
    if trace.steps:
        parts.extend(f"  {step}" for step in trace.steps)
    else:
        parts.append("  (none applied)")
    parts.extend(
        [
            "",
            f"Physical plan (cost {trace.initial_cost:.0f} → {trace.final_cost:.0f}):",
            explain(plan, db, indent=1),
            "",
            "Lowered pipeline:",
            explain_physical(plan, db, indent=1),
        ]
    )
    return "\n".join(parts)


# -- EXPLAIN ANALYZE ----------------------------------------------------------


def _walk_paths(node: E.Expr, path: tuple[int, ...] = ()) -> Iterator[
    tuple[tuple[int, ...], E.Expr]
]:
    yield path, node
    for index, child in enumerate(node.children()):
        yield from _walk_paths(child, (*path, index))


def _flag(estimated: float, actual: int | None) -> str:
    if actual is None:
        return ""
    low, high = sorted((max(estimated, 1.0), float(max(actual, 1))))
    if high / low > MISESTIMATE_FACTOR:
        return f"  ⚠ rows {high / low:.0f}× off"
    return ""


def _shard_lines(op, indent: str, timings: bool) -> list[str]:
    """Per-shard rows under a parallel exchange operator.

    One line per worker shard — members it owned, rows it produced, its
    counters, and a trip marker when the shard hit the budget — so the
    rolled-up operator line above stays comparable with a sequential
    run while the fan-out detail remains auditable.
    """
    lines: list[str] = []
    for shard in op.shards or []:
        parts = [
            f"members={shard.get('members', '?')}",
            f"rows={shard.get('rows', '?')}",
        ]
        if timings and shard.get("wall_seconds") is not None:
            parts.append(f"wall={shard['wall_seconds'] * 1e3:.1f}ms")
        counters = ", ".join(
            f"{name}={value}"
            for name, value in sorted((shard.get("counters") or {}).items())
            if value
        )
        if counters:
            parts.append(counters)
        if shard.get("tripped"):
            parts.append(f"⚠ tripped ({shard.get('trip')})")
        lines.append(
            f"{indent}  · shard {shard.get('shard')}"
            f" [{shard.get('mode', 'threads')}]: {', '.join(parts)}"
        )
    return lines


def render_analysis(
    expr: E.Expr,
    db: Database,
    metrics: PlanMetrics,
    *,
    timings: bool = True,
) -> str:
    """Render the estimated-vs-actual plan tree for collected metrics.

    Split from :func:`explain_analyze` so tests can render
    deterministically (``timings=False`` drops the wall-time column) and
    so callers that already ran :func:`~repro.query.interpreter
    .evaluate_with_metrics` need not evaluate twice.
    """
    from ..optimizer.cost import CostModel, actual_cost_units

    model = CostModel(db)
    lines: list[str] = []
    for path, node in _walk_paths(expr):
        op = metrics.get(path)
        estimated_rows = model.estimated_rows(node)
        estimated_cost = model.local_cost(node)
        indent = "  " * len(path)
        if op is None:
            lines.append(
                f"{indent}{node.head()}  (est rows≈{estimated_rows:.0f},"
                f" cost≈{estimated_cost:.0f} | never executed)"
            )
            continue
        actual = f"act rows={op.rows_out}" if op.rows_out is not None else "act rows=?"
        units = actual_cost_units(op.counters)
        time_part = (
            f", time={metrics.self_seconds(path) * 1e3:.1f}ms" if timings else ""
        )
        flag = _flag(estimated_rows, op.rows_out)
        if flag:
            # Persist the observation on the record itself so merges
            # (per-shard roll-ups, repeated runs) OR it forward.
            op.flags.add("misestimate")
        lines.append(
            f"{indent}{node.head()}  (est rows≈{estimated_rows:.0f},"
            f" cost≈{estimated_cost:.0f} | {actual},"
            f" units={units:.0f}{time_part})"
            f"{flag}"
        )
        counters = ", ".join(
            f"{name}={value}" for name, value in sorted(op.counters.items()) if value
        )
        if counters:
            lines.append(f"{indent}  · {counters}")
        if op.shards:
            lines.extend(_shard_lines(op, indent, timings))
    return "\n".join(lines)


def explain_analyze(
    expr: E.Expr, db: Database, *, timings: bool = True
) -> str:
    """Run ``expr`` through the instrumented executor and render the plan
    with estimated vs. actual rows, cost units and per-operator time."""
    from .interpreter import evaluate_with_metrics

    _, metrics = evaluate_with_metrics(expr, db)
    return render_analysis(expr, db, metrics, timings=timings)


#: The planning-side counters the footer renders, in display order.
PLANNING_COUNTERS = (
    "plan_cache_hits",
    "plan_cache_misses",
    "plan_cache_invalidations",
    "plan_cache_replans",
    "optimizer_rewrites",
    "pattern_compilations",
)


def render_planning(planning) -> str:
    """The one-line planning footer for EXPLAIN ANALYZE.

    ``planning`` is the :class:`~repro.storage.stats.Instrumentation`
    sink that was activated around ``prepare()`` — a warm plan cache
    renders ``plan_cache_hits=1`` with every other counter at zero.
    """
    parts = " ".join(f"{name}={planning[name]}" for name in PLANNING_COUNTERS)
    return f"planning: {parts}"
