"""EXPLAIN for query plans: the expression tree with cost estimates.

``explain(expr, db)`` renders a plan the way database shells do::

    flatten  (cost≈12, total≈152)
      sapply[per_subtree]  (cost≈10, total≈140)
        split[d]  (cost≈120, total≈130)
          root(T)  (cost≈1, size≈15)

Costs come from the optimizer's :class:`~repro.optimizer.cost.CostModel`
(abstract predicate-evaluation units); sizes are the model's input-size
estimates, exact when the source is a bound root or literal.
``explain_diff`` renders the before/after story of an optimization run,
including the rewrite trace.
"""

from __future__ import annotations

from ..storage.database import Database
from . import expr as E


def _node_line(node: E.Expr, model) -> str:
    local = model._local_cost(node)
    total = model.cost(node)
    if isinstance(node, (E.Root, E.Extent, E.Literal)):
        size = model.input_size(node)
        return f"{node.describe()}  (cost≈{local:.0f}, size≈{size:.0f})"
    return f"{_head(node)}  (cost≈{local:.0f}, total≈{total:.0f})"


def _head(node: E.Expr) -> str:
    """The node's describe() with the input elided (children are shown
    as indented lines instead)."""
    text = node.describe()
    for child in node.children():
        child_text = f"({child.describe()})"
        if text.endswith(child_text):
            return text[: -len(child_text)]
        text = text.replace(child.describe(), "…", 1)
    return text


def explain(expr: E.Expr, db: Database, indent: int = 0) -> str:
    """Render ``expr`` as an indented plan tree with cost annotations."""
    from ..optimizer.cost import CostModel

    model = CostModel(db)
    lines: list[str] = []

    def walk(node: E.Expr, depth: int) -> None:
        lines.append("  " * depth + _node_line(node, model))
        for child in node.children():
            walk(child, depth + 1)

    walk(expr, indent)
    return "\n".join(lines)


def explain_optimization(expr: E.Expr, db: Database) -> str:
    """The full before/after story: logical plan, rewrites, physical plan."""
    from ..optimizer.engine import Optimizer

    plan, trace = Optimizer(db).optimize(expr)
    parts = [
        "Logical plan:",
        explain(expr, db, indent=1),
        "",
        "Rewrites:",
    ]
    if trace.steps:
        parts.extend(f"  {step}" for step in trace.steps)
    else:
        parts.append("  (none applied)")
    parts.extend(
        [
            "",
            f"Physical plan (cost {trace.initial_cost:.0f} → {trace.final_cost:.0f}):",
            explain(plan, db, indent=1),
        ]
    )
    return "\n".join(parts)
