"""Logical query expressions, their evaluator, EXPLAIN / EXPLAIN
ANALYZE, and the AQL user-level text language."""

from . import expr
from .aql import parse_aql, run_aql
from .builder import Q
from .explain import (
    explain,
    explain_analyze,
    explain_optimization,
    explain_physical,
    render_analysis,
)
from .interpreter import evaluate, evaluate_with_metrics
from .metrics import OperatorMetrics, PlanMetrics

__all__ = [
    "OperatorMetrics",
    "PlanMetrics",
    "Q",
    "evaluate",
    "evaluate_with_metrics",
    "explain",
    "explain_analyze",
    "explain_optimization",
    "explain_physical",
    "expr",
    "parse_aql",
    "render_analysis",
    "run_aql",
]
