"""Logical query expressions, their evaluator, EXPLAIN, and the AQL
user-level text language."""

from . import expr
from .aql import parse_aql, run_aql
from .builder import Q
from .explain import explain, explain_optimization
from .interpreter import evaluate

__all__ = [
    "Q",
    "evaluate",
    "explain",
    "explain_optimization",
    "expr",
    "parse_aql",
    "run_aql",
]
