"""Logical query expressions, their evaluator, EXPLAIN / EXPLAIN
ANALYZE, prepared queries with a plan cache, and the AQL user-level
text language."""

from . import expr
from .aql import parse_aql, run_aql
from .builder import Q
from .explain import (
    explain,
    explain_analyze,
    explain_optimization,
    explain_physical,
    render_analysis,
    render_planning,
)
from .interpreter import evaluate, evaluate_with_metrics
from .metrics import OperatorMetrics, PlanMetrics
from .plan_cache import DEFAULT_CACHE, PlanCache, plan_fingerprint
from .prepare import PreparedQuery, prepare

__all__ = [
    "DEFAULT_CACHE",
    "OperatorMetrics",
    "PlanCache",
    "PlanMetrics",
    "PreparedQuery",
    "Q",
    "evaluate",
    "evaluate_with_metrics",
    "explain",
    "explain_analyze",
    "explain_optimization",
    "explain_physical",
    "expr",
    "parse_aql",
    "plan_fingerprint",
    "prepare",
    "render_analysis",
    "render_planning",
    "run_aql",
]
