"""Volcano-style streaming physical layer (logical → physical split).

``lower()`` turns a logical expression into a :class:`PhysicalPlan` of
``open()/next()/close()`` operators; the interpreter's streaming mode
drives that plan instead of recursing eagerly.  See
:mod:`repro.physical.base` for the execution model and parity rules.
"""

from .base import ExecutionContext, PhysicalOp, PhysicalPlan
from .lower import PipelineFactory, lower, lower_factory
from . import exchange, operators

__all__ = [
    "ExecutionContext",
    "PhysicalOp",
    "PhysicalPlan",
    "PipelineFactory",
    "exchange",
    "lower",
    "lower_factory",
    "operators",
]
