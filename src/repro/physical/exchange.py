"""Sharded, parallel physical execution: exchange + ordered merge.

ROADMAP item 3.  The Volcano layer (PR 3) is single-threaded; this
module fans the per-member work of set-shaped operators out to a worker
pool and re-interleaves the shard streams so the output is
**bit-identical** to the sequential pipeline — the paper's stability
guarantee for ordered bulk types is what makes that contract precise
(§3: ``select``/``split`` preserve source order, so a parallel merge
must too).

Pieces:

* :class:`ShardPlanner` — partitions the staged input into shards
  (``hash`` on root OID or ``range`` on pre-order position, via
  :mod:`repro.storage.sharding`).  Members are never split, so each
  stored tree's cached :class:`~repro.storage.columnar.ColumnarExtent`
  cut is reused by whichever worker owns it.
* :class:`ExchangeOp` — the fan-out base grafted onto a sequential
  operator (:class:`ParallelSelectFilter`, :class:`ParallelApplyMap`).
  It *gates itself per execution*, exactly like the columnar operators:
  ``AQUA_PARALLEL=off``, an input under ``AQUA_PARALLEL_MIN_ROWS``, or
  an exhausted worker budget all degrade to the inherited
  single-threaded loop bit-identically.
* :class:`OrderedMergeOp` — re-interleaves shard result streams by
  source position.  Workers emit positions in ascending order within
  their shard, so the merge buffers only the out-of-order frontier
  (reported honestly via ``note_buffered``).
* :class:`ShardGuard` / :class:`SharedSpend` — budget propagation.
  Each worker re-arms the thread-local guard
  (:func:`repro.guardrails.armed`) with a guard built from the parent
  budget's :meth:`~repro.guardrails.Budget.carve` (the deadline keeps
  its absolute end) whose cumulative counters (``max_steps``,
  ``max_nodes_scanned``) flow through one lock-guarded ledger shared by
  every sibling — a trip anywhere stops all shards, and the tripping
  shard is attributed in the partial EXPLAIN ANALYZE.
* :class:`WorkerBudget` — the process-wide cap on live exchange
  workers.  A pooled session's query may itself fan out; both layers
  draw from this one budget, so concurrency × parallelism never
  multiplies past ``AQUA_PARALLEL_WORKERS``.  An exchange that is
  granted fewer than two slots simply runs inline.

Worker threads re-arm *all* the thread-local execution scopes the
query thread had: the guard (:func:`~repro.guardrails.armed`), the
parameter bindings, the stats activation + a private attribution frame,
and :func:`~repro.patterns.tree_memo.match_scope` — without this a bare
thread silently escaped budgets, counters and memo sharing.

``AQUA_PARALLEL_MODE=processes`` runs shards on fork-based worker
processes instead (CPU-bound matching on multi-core machines; the GIL
caps thread-mode speedups at whatever share of per-member work releases
it).  Process mode is a barrier (results return when every shard is
done), enforces the carved deadline per shard rather than a shared
cumulative ledger, and falls back to threads — counted as
``parallel_process_fallbacks`` — when fork or result pickling is
unavailable.
"""

from __future__ import annotations

import queue
import sys
import threading
import time
from contextlib import ExitStack
from typing import Any, Callable, Iterator

from .. import config, guardrails, params
from ..errors import QueryCancelledError, ResourceExhaustedError
from ..guardrails import Budget, Guard
from ..patterns.tree_memo import match_scope
from ..query.metrics import PlanMetrics
from ..storage.sharding import Shard, plan_shards
from .operators import ApplyMap, SelectFilter

#: Worker guards flush their locally-batched step count to the shared
#: ledger every this many ticks — a lock acquisition per step would tax
#: the matcher's hot loop, so trips may be noticed up to
#: ``interval × workers`` steps late (the deadline already has the same
#: granularity via ``TIME_CHECK_INTERVAL``).
SHARD_FLUSH_INTERVAL = 64


class SharedSpend:
    """The cumulative budget ledger one exchange's workers share."""

    __slots__ = ("_lock", "steps", "nodes")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.steps = 0
        self.nodes = 0

    def add_steps(self, amount: int) -> int:
        with self._lock:
            self.steps += amount
            return self.steps

    def add_nodes(self, amount: int) -> int:
        with self._lock:
            self.nodes += amount
            return self.nodes


class ShardGuard(Guard):
    """A worker-side :class:`~repro.guardrails.Guard` with shared spend.

    ``max_steps`` and ``max_nodes_scanned`` are *query*-cumulative
    limits, so each worker checks the sibling-shared ledger plus
    whatever the query thread itself has spent — N shards never get N
    budgets.  The deadline comes from the carved budget (absolute end
    preserved); the cancellation token is the parent's own object, so a
    cancel fires in every worker at its next periodic check.
    """

    __slots__ = ("_shared", "_parent", "_pending")

    def __init__(
        self, budget: Budget, shared: SharedSpend, parent: Guard | None
    ) -> None:
        super().__init__(budget)
        self._shared = shared
        self._parent = parent
        self._pending = 0

    def tick(self, amount: int = 1, seam: str = "matcher step") -> None:
        self._pending += amount
        if self._pending >= SHARD_FLUSH_INTERVAL:
            self.flush(seam)

    def flush(self, seam: str = "shard flush") -> None:
        """Publish batched steps to the ledger and run the full checks."""
        pending, self._pending = self._pending, 0
        total = self._shared.add_steps(pending) if pending else self._shared.steps
        self.steps = total + (self._parent.steps if self._parent is not None else 0)
        budget = self.budget
        if budget.max_steps is not None and self.steps > budget.max_steps:
            self._trip("max_steps", budget.max_steps, self.steps, seam)
        self.check_now(seam)

    def charge_nodes(self, amount: int, seam: str = "storage scan") -> None:
        total = self._shared.add_nodes(amount)
        self.nodes_scanned = total + (
            self._parent.nodes_scanned if self._parent is not None else 0
        )
        limit = self.budget.max_nodes_scanned
        if limit is not None and self.nodes_scanned > limit:
            self._trip("max_nodes_scanned", limit, self.nodes_scanned, seam)


class WorkerBudget:
    """Process-wide cap on concurrently live exchange workers.

    ``acquire`` grants what is available (possibly zero) rather than
    blocking — an exchange that cannot get at least two slots runs its
    members inline, so progress never waits on another query's fan-out.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._outstanding = 0

    def acquire(self, requested: int, capacity: int) -> int:
        with self._lock:
            granted = max(0, min(requested, capacity - self._outstanding))
            self._outstanding += granted
            return granted

    def release(self, granted: int) -> None:
        with self._lock:
            self._outstanding -= granted

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding


#: The shared budget every exchange draws from (SessionPool composition:
#: pooled queries fanning out all land here, so the two layers are
#: jointly bounded by ``AQUA_PARALLEL_WORKERS``).
WORKER_BUDGET = WorkerBudget()


class ShardPlanner:
    """Decides the shard count and which members land in each shard."""

    def __init__(self, workers: int, strategy: str = "hash") -> None:
        self.workers = workers
        self.strategy = strategy

    def plan(self, members: list[Any]) -> list[Shard]:
        """Partition the staged members, one shard per granted worker.

        Whole members only — a stored tree's columnar cut
        (``db.columnar_extent``, cached by tree identity) is therefore
        built at most once regardless of which worker evaluates it.
        """
        count = min(self.workers, len(members))
        return plan_shards(members, count, self.strategy)


class OrderedMergeOp:
    """Re-interleaves shard result streams by source position.

    Not a plan node: it runs *inside* the exchange operator at the
    exchange's plan path, so EXPLAIN paths keep mirroring the logical
    tree one-to-one.  Workers post ``("row", position, payload)``
    messages in ascending position order within their shard;
    :meth:`merged` yields ``(position, payload)`` in globally ascending
    order, buffering only the out-of-order frontier.  A worker error is
    re-raised here — after every worker has parked, so no thread is
    still producing while the exception unwinds.
    """

    def __init__(
        self,
        shard_count: int,
        on_buffered: Callable[[int], None] | None = None,
    ) -> None:
        self.shard_count = shard_count
        self.on_buffered = on_buffered
        self.registries: list[PlanMetrics] = []
        self.summaries: list[dict[str, Any]] = []
        self.error: BaseException | None = None

    def merged(self, results: "queue.Queue[tuple]") -> Iterator[tuple[int, Any]]:
        next_position = 0
        pending: dict[int, Any] = {}
        finished = 0
        while finished < self.shard_count:
            message = results.get()
            kind = message[0]
            if kind == "row":
                _, position, payload = message
                pending[position] = payload
                if self.on_buffered is not None:
                    self.on_buffered(len(pending))
                while next_position in pending:
                    yield next_position, pending.pop(next_position)
                    next_position += 1
                continue
            if kind == "done":
                _, _index, registry, summary = message
            else:  # "error"
                _, _index, exc, registry, summary = message
                if self.error is None:
                    self.error = exc
            finished += 1
            self.registries.append(registry)
            self.summaries.append(summary)
        self.summaries.sort(key=lambda summary: summary["shard"])
        if self.error is not None:
            raise self.error
        while next_position in pending:
            yield next_position, pending.pop(next_position)
            next_position += 1


# -- process-mode plumbing -----------------------------------------------------
#
# Fork-based workers inherit the staged shards through this module
# global (set immediately before the pool is created, cleared right
# after), so nothing but the *results* ever crosses a pickle boundary —
# member payload functions are ordinary closures.

_PROCESS_STATE: tuple | None = None


def _process_entry(index: int) -> tuple:
    """Run one shard inside a forked worker process."""
    from ..storage.stats import Instrumentation

    member_fn, counter_name, shards, budget, stats_active = _PROCESS_STATE  # type: ignore[misc]
    sink = Instrumentation()
    produced: list[tuple[int, Any]] = []
    members = 0
    usage: dict[str, Any] = {}
    try:
        with ExitStack() as scopes:
            guard = scopes.enter_context(guardrails.guarded(budget))
            # Mirror the parent's activation: engine emits are only
            # captured (and folded parent-side) when the query thread's
            # sink would have captured them too.
            if stats_active:
                scopes.enter_context(sink.activated())
            for position, row in shards[index]:
                if counter_name is not None:
                    sink.bump(counter_name)
                produced.append((position, member_fn(row)))
                members += 1
            if guard is not None:
                usage = guard.usage()
    except ResourceExhaustedError as exc:
        # Exceptions with keyword-only constructors don't survive
        # pickling; ship the fields and rebuild parent-side.
        return (
            "tripped",
            index,
            {
                "message": str(exc),
                "limit_name": exc.limit_name,
                "limit": exc.limit,
                "spent": exc.spent,
                "seam": exc.seam,
            },
            members,
            sink.snapshot(),
        )
    except QueryCancelledError as exc:
        return ("cancelled", index, str(exc), members, sink.snapshot())
    return ("ok", index, produced, members, sink.snapshot(), usage)


class ExchangeOp:
    """Fan-out mixin grafted onto a sequential set operator.

    Subclasses pair this with the operator whose per-member loop they
    parallelize and provide three hooks: :meth:`member_payload_fn` (the
    worker-side per-member callable), :meth:`payload_cardinality` (how
    many output rows a payload contributes, for shard summaries) and
    :meth:`emit` (the main-thread, in-order reduction from payloads to
    output rows — where set dedup happens, globally, in first-seen
    source order).
    """

    #: ``hash`` (root-OID) or ``range`` (pre-order position blocks).
    shard_strategy = "hash"

    # -- subclass hooks ------------------------------------------------------

    def member_payload_fn(self) -> Callable[[Any], Any]:
        raise NotImplementedError

    def process_payload_fn(self) -> tuple[Callable[[Any], Any], str | None]:
        """Worker-process variant: (raw callable, counter to bump per member)."""
        return self.member_payload_fn(), None

    def payload_cardinality(self, payload: Any) -> int:
        return 1

    def emit(
        self, staged: list[Any], merged: Iterator[tuple[int, Any]], equality
    ) -> Iterator[Any]:
        raise NotImplementedError

    # -- the gated fan-out ---------------------------------------------------

    def rows(self) -> Iterator[Any]:
        if not config.parallel_enabled():
            # Bit-identical off switch: the inherited operator runs with
            # zero buffering, exactly as if the lowering had picked it.
            yield from super().rows()
            return
        source, equality = self.set_source(self.children[0])
        self.result_equality = equality
        min_rows = max(1, config.validated_parallel_min_rows())
        staged: list[Any] = []
        for row in source:
            staged.append(row)
            if len(staged) >= min_rows:
                break
        if len(staged) < min_rows:
            # Undersized: run the inherited per-member loop over the
            # bounded peek buffer (≤ min_rows references, not counted as
            # a materialized buffer).
            yield from self._member_rows(iter(staged), equality)
            return
        workers = config.validated_parallel_workers()
        requested = min(workers, len(staged) + 1)
        granted = WORKER_BUDGET.acquire(requested, capacity=workers)
        try:
            if granted < 2:
                yield from self._member_rows(
                    self._chain(staged, source), equality
                )
                return
            for row in source:  # the planner needs the whole input
                staged.append(row)
            self.note_buffered(len(staged))
            shards = ShardPlanner(granted, self.shard_strategy).plan(staged)
            stats = self.ctx.stats
            stats.bump("exchange_fanouts")
            stats.bump("exchange_shards", len(shards))
            if config.validated_parallel_worker_kind() == "processes":
                produced = self._run_shards_processes(shards, staged, equality)
                if produced is not None:
                    yield from produced
                    return
                stats.bump("parallel_process_fallbacks")
            yield from self._run_shards_threads(shards, staged, equality)
        finally:
            WORKER_BUDGET.release(granted)

    @staticmethod
    def _chain(staged: list[Any], rest: Iterator[Any]) -> Iterator[Any]:
        yield from staged
        yield from rest

    # -- thread workers ------------------------------------------------------

    def _run_shards_threads(
        self, shards: list[Shard], staged: list[Any], equality
    ) -> Iterator[Any]:
        ctx = self.ctx
        parent_guard = ctx.guard
        shared = SharedSpend()
        shard_budget = (
            parent_guard.budget.carve(parent_guard.elapsed())
            if parent_guard is not None
            else None
        )
        bindings = params.current_bindings()
        stats_active = ctx.stats.is_activated
        results: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()
        workers = [
            threading.Thread(
                target=self._thread_worker,
                args=(
                    index,
                    shard,
                    shard_budget,
                    shared,
                    results,
                    stop,
                    bindings,
                    stats_active,
                ),
                name=f"aqua-exchange-{index}",
                daemon=True,
            )
            for index, shard in enumerate(shards)
        ]
        merge = OrderedMergeOp(
            len(shards),
            on_buffered=lambda frontier: self.note_buffered(len(staged) + frontier),
        )
        try:
            for worker in workers:
                worker.start()
            yield from self.emit(staged, merge.merged(results), equality)
        finally:
            stop.set()
            for worker in workers:
                worker.join()
            # In-flight exception (a worker trip, a main-thread trip, or
            # the consumer closing us early): write the workers' spend
            # back unchecked so the original error isn't masked by a
            # second trip raised from a finally block.
            checked = sys.exc_info()[0] is None
            self._write_back_spend(shared, parent_guard, checked=checked)
            self._record_shards(merge.registries, merge.summaries, "threads")

    def _thread_worker(
        self,
        index: int,
        shard: Shard,
        shard_budget: Budget | None,
        shared: SharedSpend,
        results: "queue.Queue[tuple]",
        stop: threading.Event,
        bindings,
        stats_active: bool,
    ) -> None:
        ctx = self.ctx
        registry = PlanMetrics()
        record = registry.register(self.path, self.logical.head())
        summary: dict[str, Any] = {
            "shard": index,
            "mode": "threads",
            "members": 0,
            "rows": 0,
            "tripped": False,
            "trip": None,
        }
        guard = (
            ShardGuard(shard_budget, shared, ctx.guard)
            if shard_budget is not None
            else None
        )
        payload_fn = self.member_payload_fn()
        started = time.perf_counter()
        try:
            with ExitStack() as scopes:
                # Re-arm every thread-local execution scope the query
                # thread had — a bare thread has none of them.  The
                # stats sink activates only when the query thread's was
                # (an uninstrumented run must not start recording
                # engine events just because it went parallel).
                scopes.enter_context(params.bound_params(bindings))
                scopes.enter_context(guardrails.armed(guard))
                if stats_active:
                    scopes.enter_context(ctx.stats.activated())
                scopes.enter_context(ctx.stats.attribute_to(record))
                scopes.enter_context(match_scope(ctx.db))
                for position, row in shard:
                    if stop.is_set():
                        break
                    payload = payload_fn(row)
                    summary["members"] += 1
                    summary["rows"] += self.payload_cardinality(payload)
                    results.put(("row", position, payload))
                if guard is not None:
                    guard.flush("shard exit")
        except BaseException as exc:  # noqa: BLE001 - forwarded to the merge
            stop.set()
            if isinstance(exc, ResourceExhaustedError):
                summary["tripped"] = True
                summary["trip"] = exc.limit_name
                exc.tripping_shard = index
            elif isinstance(exc, QueryCancelledError):
                summary["tripped"] = True
                summary["trip"] = "cancelled"
                exc.tripping_shard = index
            self._seal_summary(summary, record, started)
            results.put(("error", index, exc, registry, summary))
            return
        self._seal_summary(summary, record, started)
        results.put(("done", index, registry, summary))

    @staticmethod
    def _seal_summary(summary: dict[str, Any], record, started: float) -> None:
        record.wall_seconds = time.perf_counter() - started
        record.rows_out = summary["rows"]
        summary["wall_seconds"] = record.wall_seconds
        summary["counters"] = dict(record.counters)

    def _write_back_spend(
        self, shared: SharedSpend, parent_guard: Guard | None, *, checked: bool
    ) -> None:
        """Fold the workers' spend into the query guard's counters.

        Checked on the success path (a batched overshoot must still
        trip, as the sequential run would have); unchecked while an
        exception is already unwinding.
        """
        if parent_guard is None or (shared.steps == 0 and shared.nodes == 0):
            return
        if checked:
            if shared.nodes:
                parent_guard.charge_nodes(shared.nodes, "exchange write-back")
            if shared.steps:
                parent_guard.tick(shared.steps, "exchange write-back")
        else:
            parent_guard.steps += shared.steps
            parent_guard.nodes_scanned += shared.nodes

    def _record_shards(
        self,
        registries: list[PlanMetrics],
        summaries: list[dict[str, Any]],
        mode: str,
    ) -> None:
        """Aggregate per-shard metrics into this operator's record.

        Counters roll up through :meth:`PlanMetrics.merge` with
        ``wall="max"`` — shard walls overlapped, so the rolled-up wall
        is the slowest shard — and the per-shard summaries are kept for
        EXPLAIN ANALYZE's shard rows.
        """
        del mode
        if self.op_metrics is None or not registries:
            if self.op_metrics is not None and summaries:
                self.op_metrics.shards = summaries
            return
        rollup = PlanMetrics()
        for registry in registries:
            rollup.merge(registry, wall="max")
        aggregated = rollup.get(self.path)
        if aggregated is not None:
            self.op_metrics.counters.update(aggregated.counters)
        self.op_metrics.shards = summaries

    # -- process workers -----------------------------------------------------

    def _run_shards_processes(
        self, shards: list[Shard], staged: list[Any], equality
    ) -> Iterator[Any] | None:
        """Run the shards on forked worker processes, or ``None`` to
        fall back to threads (no fork, pickling failure, …)."""
        global _PROCESS_STATE
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            return None
        ctx = self.ctx
        parent_guard = ctx.guard
        shard_budget = None
        if parent_guard is not None:
            # Processes can't share the spend ledger, and the parent's
            # cancellation token is a forked copy the parent can't flip;
            # each shard gets the carved budget (absolute deadline
            # preserved, per-shard counter limits) — documented in the
            # README knob table.
            shard_budget = parent_guard.budget.carve(parent_guard.elapsed())
        member_fn, counter_name = self.process_payload_fn()
        outcomes = None
        try:
            _PROCESS_STATE = (
                member_fn,
                counter_name,
                shards,
                shard_budget,
                ctx.stats.is_activated,
            )
            with multiprocessing.get_context("fork").Pool(len(shards)) as pool:
                outcomes = pool.map(_process_entry, range(len(shards)))
        except Exception:
            return None
        finally:
            _PROCESS_STATE = None
        produced: dict[int, Any] = {}
        summaries: list[dict[str, Any]] = []
        error: ResourceExhaustedError | QueryCancelledError | None = None
        for outcome in outcomes:
            kind, index = outcome[0], outcome[1]
            summary: dict[str, Any] = {
                "shard": index,
                "mode": "processes",
                "tripped": kind != "ok",
                "trip": None,
            }
            if kind == "ok":
                _, _, pairs, members, counters, usage = outcome
                for position, payload in pairs:
                    produced[position] = payload
                summary.update(
                    members=members,
                    rows=sum(self.payload_cardinality(p) for _, p in pairs),
                    counters=counters,
                )
                self._fold_process_counters(counters)
                if parent_guard is not None and usage:
                    parent_guard.steps += int(usage.get("steps", 0))
                    parent_guard.nodes_scanned += int(usage.get("nodes_scanned", 0))
            elif kind == "tripped":
                _, _, fields, members, counters = outcome
                summary.update(members=members, rows=0, counters=counters, trip=fields["limit_name"])
                self._fold_process_counters(counters)
                if error is None:
                    error = ResourceExhaustedError(
                        fields["message"],
                        limit_name=fields["limit_name"],
                        limit=fields["limit"],
                        spent=fields["spent"],
                        seam=fields["seam"],
                    )
                    error.tripping_shard = index
            else:  # cancelled
                _, _, message, members, counters = outcome
                summary.update(members=members, rows=0, counters=counters, trip="cancelled")
                self._fold_process_counters(counters)
                if error is None:
                    error = QueryCancelledError(message)
                    error.tripping_shard = index
            summaries.append(summary)
        summaries.sort(key=lambda summary: summary["shard"])
        if self.op_metrics is not None:
            self.op_metrics.shards = summaries
        if error is not None:
            raise error
        ordered = ((position, produced[position]) for position in sorted(produced))
        return self.emit(staged, ordered, equality)

    def _fold_process_counters(self, counters: dict[str, int]) -> None:
        """Credit a forked worker's counters parent-side.

        The child bumped a *forked copy* of the bag, so folding here is
        the only copy — and running inside ``next()``'s attribution
        frame credits this operator, exactly as sequential would.
        """
        for name, amount in counters.items():
            if amount:
                self.ctx.stats.bump(name, amount)

    def access_path(self) -> str:
        return (
            f"exchange-capable: {self.shard_strategy} shards + ordered merge,"
            " gated per execution"
        )


class ParallelSelectFilter(ExchangeOp, SelectFilter):
    """``select(p)(S)`` with the predicate fanned out across shards."""

    name = "parallel_select_filter"

    def member_payload_fn(self) -> Callable[[Any], Any]:
        return self.ctx.stats.counting(self.logical.predicate)

    def process_payload_fn(self) -> tuple[Callable[[Any], Any], str | None]:
        # The counting wrapper would bump the forked bag; count in the
        # child sink instead and fold parent-side.
        return self.logical.predicate, "predicate_evals"

    def payload_cardinality(self, payload: Any) -> int:
        return 1 if payload else 0

    def emit(self, staged, merged, equality) -> Iterator[Any]:
        del equality  # input already deduplicated under it
        for position, keep in merged:
            if keep:
                yield staged[position]


class ParallelApplyMap(ExchangeOp, ApplyMap):
    """``apply(f)(S)`` with the images computed across shards.

    Dedup happens at the merge (main thread, global, first-seen in
    source order) — per-shard dedup would be wrong whenever two shards
    produce equal images.
    """

    name = "parallel_apply_map"

    def member_payload_fn(self) -> Callable[[Any], Any]:
        return self.logical.function

    def emit(self, staged, merged, equality) -> Iterator[Any]:
        del staged
        seen: set[Any] = set()
        for _position, image in merged:
            key = equality.key(image)
            if key in seen:
                continue
            seen.add(key)
            yield image
