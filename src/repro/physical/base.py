"""The physical-operator substrate: Volcano-style streaming execution.

The logical algebra (:mod:`repro.query.expr`) says *what* a query means;
this layer says *how* it runs.  Each logical node lowers
(:mod:`repro.physical.lower`) to one :class:`PhysicalOp` — an iterator
with the classic ``open() / next() / close()`` lifecycle, backed by a
Python generator — and the driver pulls rows from the plan root.  The
payoff is the paper's §4 pipelining argument made concrete: a
``sub_select`` no longer materializes its full result set before its
parent sees the first subtree, so peak intermediate cardinality drops
from "largest operator output anywhere in the plan" to "what the plan
truly buffers" (the final result sink, plus the explicit buffers of
:class:`~repro.physical.operators.IntersectPipe` /
:class:`~repro.physical.operators.DiffPipe` /
:class:`~repro.physical.operators.Materialize`).

Execution semantics are **bit-identical** to the eager interpreter:

* row order and deduplication follow the AQUA collection types exactly —
  set-shaped streams are deduplicated *at the producer* under the same
  :class:`~repro.core.equality.Equality` notion the eager operator's
  ``AquaSet`` would use, and the notion is threaded through
  select/apply/union/… with the same inheritance rules;
* instrumentation counters land on the same operators in the same
  totals (the matchers flush their counters per candidate so mid-stream
  attribution credits the pulling operator);
* the active :class:`~repro.guardrails.Guard` is ticked on every
  ``next()`` pull and storage scans charge it row by row, so budgets
  trip *mid-stream* — before the eager executor would even have finished
  materializing the operator's input.

Shapes: every operator declares how its rows relate to its AQUA value —
``"set"`` streams members (reassembled as ``AquaSet(rows, equality)``),
``"list"`` streams cells (reassembled as ``AquaList(cells)``), and
``"value"`` yields exactly one row (trees, roots, literals).  Sources
yield *references* to stored values, which is why they do not count as
buffers; operators that construct a materialized value record it via
:meth:`~repro.query.metrics.PlanMetrics.note_buffered`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from itertools import chain
from typing import TYPE_CHECKING, Any, Iterator

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..core.equality import DEFAULT, Equality
from ..errors import QueryError, ResourceExhaustedError
from ..query.metrics import cardinality

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ..guardrails import Guard
    from ..query import expr as E
    from ..query.metrics import OperatorMetrics, PlanMetrics
    from ..storage.database import Database
    from ..storage.stats import Instrumentation

#: Sentinel distinguishing "stream exhausted" from a legitimate row.
_EXHAUSTED = object()


@dataclass
class ExecutionContext:
    """Everything one plan execution shares across its operators.

    Armed once by the driver (:func:`repro.query.interpreter.evaluate`)
    and handed to every operator at ``open()`` — the fix for the old
    per-node re-entry of ``guarded()`` / ``stats.activated()`` on every
    recursive dispatch.
    """

    db: "Database"
    guard: "Guard | None" = None
    metrics: "PlanMetrics | None" = None
    stats: "Instrumentation | None" = None

    def __post_init__(self) -> None:
        if self.stats is None:
            self.stats = self.db.stats


class PhysicalOp:
    """One streaming operator: ``open() / next() / close()``.

    Subclasses implement :meth:`rows` — a generator producing the
    operator's output rows — and declare :attr:`shape`.  The base class
    wraps each generator resume with the per-pull bookkeeping: guard
    ticks, counter-attribution frames, wall-time and ``rows_out``
    accumulation, incremental ``max_results`` checks, and budget-trip
    annotation (innermost operator wins, like the eager interpreter).

    **Contract for set-shaped subclasses**: ``rows()`` must assign
    ``self.result_equality`` before its first ``yield`` (and before
    returning when it yields nothing), and must deduplicate its own
    output under that notion — consumers rely on set streams being
    duplicate-free, exactly as eager consumers rely on ``AquaSet``.
    """

    #: Physical operator name (rendered in the lowered-pipeline view).
    name = "op"
    #: "set" | "list" | "value" — how rows relate to the AQUA value.
    shape = "set"

    def __init__(self, logical: "E.Expr", children: tuple["PhysicalOp", ...] = ()) -> None:
        self.logical = logical
        self.children = tuple(children)
        self.path: tuple[int, ...] = ()
        self.trail: tuple[str, ...] = (logical.head(),)
        self.ctx: ExecutionContext | None = None
        self.op_metrics: "OperatorMetrics | None" = None
        self.result_equality: Equality = DEFAULT
        self._gen: Iterator[Any] | None = None
        self._count = 0

    # -- plan wiring --------------------------------------------------------

    def assign_positions(
        self, path: tuple[int, ...] = (), trail: tuple[str, ...] = ()
    ) -> None:
        """Derive each operator's plan path and head-chain from the root."""
        self.path = path
        self.trail = (*trail, self.logical.head())
        for index, child in enumerate(self.children):
            child.assign_positions((*path, index), self.trail)

    # -- lifecycle ----------------------------------------------------------

    def open(self, ctx: ExecutionContext) -> None:
        self.ctx = ctx
        self.result_equality = DEFAULT
        self._count = 0
        if ctx.metrics is not None:
            self.op_metrics = ctx.metrics.register(self.path, self.logical.head())
        for child in self.children:
            child.open(ctx)
        self._gen = self.rows()

    def next(self) -> Any:
        """Pull one row; raises ``StopIteration`` when exhausted."""
        ctx = self.ctx
        assert ctx is not None and self._gen is not None, "next() before open()"
        try:
            if ctx.guard is not None:
                ctx.guard.tick(1, "executor pull")
            op = self.op_metrics
            if op is None:
                try:
                    row = next(self._gen)
                except StopIteration:
                    raise
            else:
                started = time.perf_counter()
                try:
                    with ctx.stats.attribute_to(op):
                        row = next(self._gen)
                except StopIteration:
                    op.wall_seconds += time.perf_counter() - started
                    op.rows_out = self._count
                    raise
                except BaseException:
                    op.wall_seconds += time.perf_counter() - started
                    raise
                op.wall_seconds += time.perf_counter() - started
            self._count += cardinality(row) if self.shape == "value" else 1
            if op is not None:
                op.rows_out = self._count
            guard = ctx.guard
            if guard is not None and guard.budget.max_results is not None:
                guard.check_results(self._count, self.logical.head())
            return row
        except ResourceExhaustedError as exc:
            self._annotate_trip(exc)
            raise

    def close(self) -> None:
        gen, self._gen = self._gen, None
        if gen is not None:
            gen.close()
        for child in self.children:
            child.close()

    def rows(self) -> Iterator[Any]:
        raise NotImplementedError

    # -- pulling helpers (for subclasses) ------------------------------------

    def stream(self) -> Iterator[Any]:
        """Iterate this operator's rows through the instrumented ``next()``."""
        while True:
            try:
                row = self.next()
            except StopIteration:
                return
            yield row

    def collect(self) -> Any:
        """Fully drain this operator into its natural AQUA value."""
        if self.shape == "value":
            rows = list(self.stream())
            if not rows:
                raise QueryError(
                    f"{self.logical.describe()} produced no value"
                    f" (plan path: {self._trail_text()})"
                )
            return rows[0]
        if self.shape == "list":
            return AquaList(list(self.stream()))
        rows = list(self.stream())
        return AquaSet(rows, self.result_equality)

    def set_source(self, child: "PhysicalOp") -> tuple[Iterator[Any], Equality]:
        """``child`` as a deduplicated member stream plus its equality.

        A set-shaped child streams directly (its first row is primed so
        the equality notion — assigned by the child's setup — is known
        even for empty streams).  A value- or list-shaped child is fully
        collected and coerced, reproducing the eager ``_as_set`` check.
        """
        if child.shape == "set":
            rows = child.stream()
            first = next(rows, _EXHAUSTED)
            equality = child.result_equality
            if first is _EXHAUSTED:
                return iter(()), equality
            return chain((first,), rows), equality
        value = child.collect()
        collection = self.as_set(value)
        return iter(collection), collection.equality

    # -- input coercion (satellite: errors carry the plan path) --------------

    def _trail_text(self) -> str:
        return " → ".join(self.trail)

    def _coerce_error(self, expected: str, value: Any) -> QueryError:
        return QueryError(
            f"{self.logical.describe()} expects a {expected} input,"
            f" got {type(value).__name__} (plan path: {self._trail_text()})"
        )

    def as_tree(self, value: Any) -> AquaTree:
        if not isinstance(value, AquaTree):
            raise self._coerce_error("tree", value)
        return value

    def as_list(self, value: Any) -> AquaList:
        if not isinstance(value, AquaList):
            raise self._coerce_error("list", value)
        return value

    def as_set(self, value: Any) -> AquaSet:
        if not isinstance(value, AquaSet):
            raise self._coerce_error("set", value)
        return value

    def input_tree(self) -> AquaTree:
        return self.as_tree(self.children[0].collect())

    def input_list(self) -> AquaList:
        return self.as_list(self.children[0].collect())

    # -- bookkeeping helpers -------------------------------------------------

    def note_buffered(self, buffered: int) -> None:
        """Record a real resident buffer (see ``OperatorMetrics.peak_buffered``)."""
        ctx = self.ctx
        if ctx is not None and ctx.metrics is not None and self.op_metrics is not None:
            ctx.metrics.note_buffered(self.op_metrics, buffered)

    def _annotate_trip(self, exc: ResourceExhaustedError) -> None:
        ctx = self.ctx
        if ctx is not None and ctx.metrics is not None and exc.metrics is None:
            exc.metrics = ctx.metrics
        if exc.plan_path is None:
            exc.plan_path = self.path
            exc.operator = self.logical.head()

    # -- rendering -----------------------------------------------------------

    def access_path(self) -> str:
        """One-line description of the chosen access path, or ''."""
        return ""

    def describe_physical(self) -> str:
        access = self.access_path()
        return f"{self.name}  [{access}]" if access else self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.logical.head()}>"


def dedup(rows: Iterator[Any], equality: Equality) -> Iterator[Any]:
    """Stream ``rows`` keeping the first occurrence under ``equality``.

    This is ``AquaSet.add`` as a pipeline stage: set-shaped producers run
    their output through it so consumers see exactly the members the
    eager operator's result set would hold, in the same order.
    """
    seen: set[Any] = set()
    for row in rows:
        key = equality.key(row)
        if key in seen:
            continue
        seen.add(key)
        yield row


class PhysicalPlan:
    """A lowered plan: the physical operator tree plus its logical source."""

    def __init__(self, root: PhysicalOp, logical: "E.Expr") -> None:
        self.root = root
        self.logical = logical
        root.assign_positions()

    def execute(self, ctx: ExecutionContext) -> Any:
        """Drive the plan to completion and assemble the result value.

        The result sink's accumulation is the one buffer a fully
        pipelined plan cannot avoid; it is charged to the root operator
        so ``PlanMetrics.peak_intermediate()`` reflects it.
        """
        root = self.root
        root.open(ctx)
        try:
            if root.shape == "value":
                rows = list(root.stream())
                if not rows:
                    raise QueryError(
                        f"{root.logical.describe()} produced no value"
                    )
                return rows[0]
            collected: list[Any] = []
            for row in root.stream():
                collected.append(row)
                root.note_buffered(len(collected))
            if root.shape == "list":
                return AquaList(collected)
            return AquaSet(collected, root.result_equality)
        finally:
            root.close()

    def render(self) -> str:
        """The lowered pipeline as an indented operator tree."""
        lines: list[str] = []

        def walk(op: PhysicalOp, depth: int) -> None:
            lines.append("  " * depth + op.describe_physical())
            for child in op.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def operators(self) -> Iterator[PhysicalOp]:
        stack = [self.root]
        while stack:
            op = stack.pop()
            yield op
            stack.extend(op.children)

    def __repr__(self) -> str:
        return f"PhysicalPlan({self.root.describe_physical()})"
