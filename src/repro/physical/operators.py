"""The physical operators: one streaming implementation per logical node.

Each class realizes one logical operator from :mod:`repro.query.expr`
as a generator over rows (see :class:`~repro.physical.base.PhysicalOp`
for the pull protocol).  The mapping is chosen by
:func:`repro.physical.lower.lower`; operators that need more than the
logical node carries (anchors, conjunct splits) take it as constructor
configuration, so the same classes serve both the deprecated ``Indexed*``
shim nodes and lowering-time access-path selection.

Parity notes, because they are the whole game:

* scan charging mirrors the eager interpreter *exactly* — ``sub_select``
  charges one node per match candidate and tops up to ``tree.size()`` at
  exhaustion (the eager path charges the full size up front), list
  ``sub_select`` does the same against ``len + 1`` start positions, and
  the indexed variants charge nothing beyond their probes;
* matcher counters are flushed per candidate
  (``flush_per_candidate`` / ``flush_per_start``) so they are credited
  to this operator's attribution frame at pull time, landing in the same
  per-operator totals the eager scopes produce;
* set-shaped streams are deduplicated at the producer under the same
  equality their eager ``AquaSet`` would use, in first-seen order.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from .. import params
from ..algebra.tree_ops import (
    _context_tree,
    all_anc,
    all_desc,
    apply_tree,
    select,
)
from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import TreeNode, subtree_at
from ..core.equality import DEFAULT
from ..core.identity import as_cell
from ..errors import QueryError
from ..optimizer.anchors import probe_anchor_roots
from ..storage.columnar import columnar_candidate_roots, columnar_list_for
from ..patterns.list_match import iter_list_matches
from ..patterns.list_parser import list_pattern
from ..patterns.tree_match import iter_tree_matches
from ..patterns.tree_memo import prime_match_context
from ..patterns.tree_parser import tree_pattern
from .base import PhysicalOp, dedup

# -- sources -------------------------------------------------------------------


class ScanRoot(PhysicalOp):
    """Fetch a named persistent root (a stored reference, not a buffer)."""

    name = "scan_root"
    shape = "value"

    def rows(self) -> Iterator[Any]:
        yield self.ctx.db.root(self.logical.name)

    def access_path(self) -> str:
        return f"named root {self.logical.name!r}"


class ScanExtent(PhysicalOp):
    """Lazily scan a class extent, charging the guard row by row."""

    name = "scan_extent"
    shape = "set"

    def rows(self) -> Iterator[Any]:
        self.result_equality = DEFAULT
        yield from dedup(self.ctx.db.iter_extent(self.logical.name), DEFAULT)

    def access_path(self) -> str:
        return f"lazy scan of extent {self.logical.name!r}"


class LiteralSource(PhysicalOp):
    """A constant handed to the plan (a reference, not a buffer)."""

    name = "literal"
    shape = "value"

    def rows(self) -> Iterator[Any]:
        yield self.logical.value


class ParamSource(PhysicalOp):
    """A ``$name`` slot read from the bindings armed for this execution.

    The slot is resolved per pull, not at lowering, so one prepared plan
    (see :mod:`repro.query.prepare`) serves every binding.
    """

    name = "param"
    shape = "value"

    def rows(self) -> Iterator[Any]:
        yield params.resolve(params.Param(self.logical.name))


# -- tree operators ------------------------------------------------------------


class TreeSelectOp(PhysicalOp):
    """Order-preserving tree select.

    The algorithm is inherently bottom-up (surviving forests propagate
    from the leaves), so the forest is built eagerly and recorded as a
    resident buffer; the members still stream to the parent.
    """

    name = "tree_select"
    shape = "set"

    def rows(self) -> Iterator[Any]:
        tree = self.input_tree()
        result = select(self.ctx.stats.counting(self.logical.predicate), tree)
        self.result_equality = result.equality
        self.note_buffered(len(result))
        yield from result

    def access_path(self) -> str:
        return "bottom-up forest build (buffers survivors)"


class TreeApplyOp(PhysicalOp):
    """``apply(f)(T)``: constructs the isomorphic image tree."""

    name = "tree_apply"
    shape = "value"

    def rows(self) -> Iterator[Any]:
        tree = self.input_tree()
        result = apply_tree(self.logical.function, tree)
        self.note_buffered(result.size())
        yield result


class SubSelectPipe(PhysicalOp):
    """``sub_select(tp)(T)`` streamed match by match (full tree scan).

    Charges one node per match candidate as candidates are tried — so a
    ``max_nodes_scanned`` budget trips mid-scan — and tops up to the
    tree's full size at exhaustion, matching the eager interpreter's
    up-front charge to the node.
    """

    name = "sub_select_pipe"
    shape = "set"

    def __init__(self, logical, child: PhysicalOp, pattern) -> None:
        super().__init__(logical, (child,))
        self.pattern = pattern

    def _candidate_roots(self, tree, tp) -> "list[TreeNode] | None":
        """Access-path hook: restricted candidate roots, or ``None`` (scan
        everything).  Overridden by :class:`ColumnarAnchorScan`."""
        del tree, tp
        return None

    def rows(self) -> Iterator[Any]:
        ctx = self.ctx
        tree = self.input_tree()
        tp = tree_pattern(self.pattern)
        self.result_equality = DEFAULT
        size = tree.size()
        stats = ctx.stats
        guard = ctx.guard
        charged = 0
        roots = self._candidate_roots(tree, tp)

        def on_candidate(node: TreeNode) -> None:
            nonlocal charged
            if node.is_concat_point:
                return
            charged += 1
            stats.bump("nodes_scanned", 1)
            if guard is not None:
                guard.charge_nodes(1, "tree scan")

        seen: set[Any] = set()
        for match in iter_tree_matches(
            tp,
            tree,
            roots=roots,
            roots_in_preorder=roots is not None,
            on_candidate=on_candidate,
            flush_per_candidate=True,
        ):
            y, points = match.match_tree()
            row = y.close_points(points)
            key = DEFAULT.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row
        remainder = size - charged
        if remainder > 0:
            # Anchored patterns visit fewer candidates than the eager
            # executor charges for; keep the totals bit-identical.
            stats.bump("nodes_scanned", remainder)
            if guard is not None:
                guard.charge_nodes(remainder, "tree scan")

    def access_path(self) -> str:
        return "full tree scan"


class IndexAnchorScan(PhysicalOp):
    """``sub_select`` served by node-index probes on the root predicates.

    The paper's §4 rewrite: every match roots at a node satisfying one
    of the pattern's root predicates, so probe those predicates' indexes
    and only try the matcher there.  Falls back to the full scan when a
    probe cannot be served (charging nothing extra).
    """

    name = "index_anchor_scan"
    shape = "set"

    def __init__(self, logical, child: PhysicalOp, pattern, anchors) -> None:
        super().__init__(logical, (child,))
        self.pattern = pattern
        self.anchors = tuple(anchors)

    def rows(self) -> Iterator[Any]:
        tree = self.input_tree()
        tp = tree_pattern(self.pattern)
        self.result_equality = DEFAULT
        db = self.ctx.db
        roots, index = probe_anchor_roots(db, tree, self.anchors, db.stats)
        # Batched candidate evaluation: one memo context + the index's
        # own predicate bitmap serve the entire candidate stream.  The
        # index also donates its preorder position maps, so the context
        # skips its own O(n) interning walk.
        prime_match_context(tp, tree, index.bitmap, index.position_maps())
        seen: set[Any] = set()
        for match in iter_tree_matches(
            tp,
            tree,
            roots=roots,
            roots_in_preorder=roots is not None,
            flush_per_candidate=True,
        ):
            y, points = match.match_tree()
            row = y.close_points(points)
            key = DEFAULT.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def access_path(self) -> str:
        probes = ", ".join(anchor.describe() for anchor in self.anchors)
        return f"node-index probe on {probes}"


class ColumnarAnchorScan(SubSelectPipe):
    """``sub_select`` served by shared predicate columns (batch mode).

    The columnar kernel's scan operator: each root-predicate anchor is
    evaluated once over the whole extent as a bitset column, the columns
    are OR-ed, and the matcher runs only where bits are set — covering
    anchors a node index cannot serve (ordering comparisons, ``OR``
    combinations) and skipping the per-candidate dispatch entirely.
    Charging is identical to :class:`SubSelectPipe` (one node per
    surviving candidate, topped up to the tree size), so budgets and
    EXPLAIN totals stay bit-identical with the eager interpreter.
    Falls back to the inherited full scan when the kernel is gated off
    (``AQUA_COLUMNAR=off``, an undersized tree, or a bare snapshot-less
    context).
    """

    name = "columnar_anchor_scan"

    def __init__(self, logical, child: PhysicalOp, pattern, anchors) -> None:
        super().__init__(logical, child, pattern)
        self.anchors = tuple(anchors)

    def _candidate_roots(self, tree, tp) -> "list[TreeNode] | None":
        del tp
        return columnar_candidate_roots(self.ctx.db, self.anchors, tree)

    def access_path(self) -> str:
        columns = ", ".join(anchor.describe() for anchor in self.anchors)
        return f"columnar bitset filter on {columns}"


class SplitPipe(PhysicalOp):
    """``split(tp, f)(T)`` streamed piece by piece (full tree scan).

    Each match yields ``f(x, y, z)`` as soon as the matcher produces it —
    the context/match/descendants trio never piles up in an intermediate
    set, which is exactly the §4 pipelining win the acceptance benchmark
    measures.
    """

    name = "split_pipe"
    shape = "set"

    def __init__(self, logical, child: PhysicalOp, pattern, function) -> None:
        super().__init__(logical, (child,))
        self.pattern = pattern
        self.function = function

    def _piece_rows(self, tree, matches) -> Iterator[Any]:
        seen: set[Any] = set()
        # ``returns_match_subtree = True`` functions are the §4 identity
        # reassembly ``y ∘α1..αn z`` — the full subtree at the match
        # root, which the source tree already holds.  Serve it by
        # structure sharing (value-identical to the rebuilt form) and
        # skip the prune/rebuild machinery entirely.
        if getattr(self.function, "returns_match_subtree", False):
            for match in matches:
                row = subtree_at(match.root)
                key = DEFAULT.key(row)
                if key in seen:
                    continue
                seen.add(key)
                yield row
            return
        # ``needs_context = False`` functions never read x, so the
        # per-match full-tree context rebuild is skipped (the same
        # contract as algebra.tree_ops.invoke_split_function).
        wants_context = getattr(self.function, "needs_context", True)
        for match in matches:
            y, points = match.match_tree()
            z = match.pruned_subtrees()
            x = _context_tree(tree, match.root) if wants_context else None
            row = self.function(x, y, AquaList.from_values(z))
            key = DEFAULT.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def rows(self) -> Iterator[Any]:
        tree = self.input_tree()
        tp = tree_pattern(self.pattern)
        self.result_equality = DEFAULT
        yield from self._piece_rows(
            tree, iter_tree_matches(tp, tree, flush_per_candidate=True)
        )

    def access_path(self) -> str:
        return "full tree scan"


class IndexAnchorSplit(SplitPipe):
    """``split`` with index-probed candidate roots (§4's literal example:
    "the split operator uses the index on d to pick all the subtrees of
    T that are rooted at d")."""

    name = "index_anchor_split"

    def __init__(self, logical, child: PhysicalOp, pattern, function, anchors) -> None:
        super().__init__(logical, child, pattern, function)
        self.anchors = tuple(anchors)

    def rows(self) -> Iterator[Any]:
        tree = self.input_tree()
        tp = tree_pattern(self.pattern)
        self.result_equality = DEFAULT
        db = self.ctx.db
        roots, index = probe_anchor_roots(db, tree, self.anchors, db.stats)
        prime_match_context(tp, tree, index.bitmap, index.position_maps())
        yield from self._piece_rows(
            tree,
            iter_tree_matches(
                tp,
                tree,
                roots=roots,
                roots_in_preorder=roots is not None,
                flush_per_candidate=True,
            ),
        )

    def access_path(self) -> str:
        probes = ", ".join(anchor.describe() for anchor in self.anchors)
        return f"node-index probe on {probes}"


class ColumnarAnchorSplit(SplitPipe):
    """``split`` with column-filtered candidate roots — the batch-mode
    counterpart of :class:`IndexAnchorSplit` for anchors only the
    predicate columns can serve."""

    name = "columnar_anchor_split"

    def __init__(self, logical, child: PhysicalOp, pattern, function, anchors) -> None:
        super().__init__(logical, child, pattern, function)
        self.anchors = tuple(anchors)

    def rows(self) -> Iterator[Any]:
        tree = self.input_tree()
        tp = tree_pattern(self.pattern)
        self.result_equality = DEFAULT
        roots = columnar_candidate_roots(self.ctx.db, self.anchors, tree)
        yield from self._piece_rows(
            tree,
            iter_tree_matches(
                tp,
                tree,
                roots=roots,
                roots_in_preorder=roots is not None,
                flush_per_candidate=True,
            ),
        )

    def access_path(self) -> str:
        columns = ", ".join(anchor.describe() for anchor in self.anchors)
        return f"columnar bitset filter on {columns}"


class MaterializeOp(PhysicalOp):
    """Explicit eager fallback: run a whole-value algebra function.

    Used for the operators whose semantics need the complete match set
    at once (``all_anc`` / ``all_desc`` context construction, list
    ``split``).  The result is recorded as a resident buffer — this is
    the executor saying, out loud, that it could not pipeline here.
    """

    name = "materialize"
    shape = "set"

    def __init__(
        self,
        logical,
        child: PhysicalOp,
        producer: Callable[[Any], AquaSet],
        input_shape: str,
        kind: str,
    ) -> None:
        super().__init__(logical, (child,))
        self.producer = producer
        self.input_shape = input_shape
        self.kind = kind

    def rows(self) -> Iterator[Any]:
        value = self.input_tree() if self.input_shape == "tree" else self.input_list()
        result = self.producer(value)
        self.result_equality = result.equality
        self.note_buffered(len(result))
        yield from result

    def access_path(self) -> str:
        return f"eager {self.kind} (buffers full result)"


# -- list operators ------------------------------------------------------------


class ListSelectPipe(PhysicalOp):
    """Order-preserving list select: streams the surviving cells."""

    name = "list_select_pipe"
    shape = "list"

    def rows(self) -> Iterator[Any]:
        aqua_list = self.input_list()
        counted = self.ctx.stats.counting(self.logical.predicate)
        for cell in aqua_list.cells():
            if counted(cell.contents):
                yield cell


class ListApplyPipe(PhysicalOp):
    """``apply(f)(L)``: streams fresh cells holding the images."""

    name = "list_apply_pipe"
    shape = "list"

    def rows(self) -> Iterator[Any]:
        aqua_list = self.input_list()
        function = self.logical.function
        for cell in aqua_list.cells():
            yield as_cell(function(cell.contents))


class ListSubSelectPipe(PhysicalOp):
    """List ``sub_select`` streamed match by match (all start positions).

    Charges one position per candidate start and tops up to ``len + 1``
    at exhaustion — the eager interpreter's up-front charge.
    """

    name = "list_sub_select_pipe"
    shape = "set"

    def __init__(self, logical, child: PhysicalOp, pattern) -> None:
        super().__init__(logical, (child,))
        self.pattern = pattern

    def rows(self) -> Iterator[Any]:
        yield from self._scan_rows(self.input_list())

    def _scan_rows(self, aqua_list: AquaList) -> Iterator[Any]:
        ctx = self.ctx
        lp = list_pattern(self.pattern)
        self.result_equality = DEFAULT
        cells = list(aqua_list.cells())
        values = aqua_list.values()
        total = len(values) + 1
        stats = ctx.stats
        guard = ctx.guard
        charged = 0

        def on_start(start: int) -> None:
            nonlocal charged
            del start
            charged += 1
            stats.bump("positions_scanned", 1)
            if guard is not None:
                guard.charge_nodes(1, "list scan")

        seen: set[Any] = set()
        for match in iter_list_matches(
            lp, values, on_start=on_start, flush_per_start=True
        ):
            row = AquaList([cells[i] for i in match.kept])
            key = DEFAULT.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row
        remainder = total - charged
        if remainder > 0:
            stats.bump("positions_scanned", remainder)
            if guard is not None:
                guard.charge_nodes(remainder, "list scan")

    def access_path(self) -> str:
        return "scan of all start positions"


class ColumnarListScan(ListSubSelectPipe):
    """List ``sub_select`` whose start positions come from a shift-AND
    pass over the list's predicate columns.

    The batch-mode list operator the ROADMAP asks for: instead of
    running the pattern automaton from every start (or probing one
    equality anchor), every column-servable required atom is evaluated
    once over the whole label array, each column is shifted by the
    atom's feasible offsets and the results are AND-ed — one bitwise
    pass yielding exactly the starts any match could begin at.  Charging
    mirrors :class:`ListAnchorScan` (one position per surviving start);
    falls back to the inherited full scan when the kernel is gated off.
    """

    name = "columnar_list_scan"

    def __init__(self, logical, child: PhysicalOp, pattern, choices) -> None:
        super().__init__(logical, child, pattern)
        self.choices = tuple(choices)

    def rows(self) -> Iterator[Any]:
        ctx = self.ctx
        aqua_list = self.input_list()
        columns = columnar_list_for(ctx.db, aqua_list)
        if columns is None:
            # Kernel gated off (knob, threshold): behave exactly like
            # the plain pipe, charges included.
            yield from self._scan_rows(aqua_list)
            return
        lp = list_pattern(self.pattern)
        self.result_equality = DEFAULT
        starts = columns.candidate_starts(self.choices)
        ctx.stats.bump("positions_scanned", len(starts))
        if ctx.guard is not None:
            ctx.guard.charge_nodes(len(starts), "columnar candidates")
        cells = list(aqua_list.cells())
        values = aqua_list.values()
        seen: set[Any] = set()
        for match in iter_list_matches(
            lp, values, starts=starts, flush_per_start=True
        ):
            row = AquaList([cells[i] for i in match.kept])
            key = DEFAULT.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def access_path(self) -> str:
        passes = ", ".join(
            f"{predicate.describe()} @ -{{{','.join(str(o) for o in offsets)}}}"
            for predicate, offsets in self.choices
        )
        return f"columnar shift-AND over {passes}"


class ListAnchorScan(PhysicalOp):
    """List ``sub_select`` served by a position-index probe.

    Probes the list's position index for a required atom and tries only
    ``position - offset`` candidate starts.  Falls back to the full
    position scan when the probe cannot be served (no extra charges).
    """

    name = "list_anchor_scan"
    shape = "set"

    def __init__(self, logical, child: PhysicalOp, pattern, anchor, offsets) -> None:
        super().__init__(logical, (child,))
        self.pattern = pattern
        self.anchor = anchor
        self.offsets = tuple(offsets)

    def rows(self) -> Iterator[Any]:
        ctx = self.ctx
        aqua_list = self.input_list()
        lp = list_pattern(self.pattern)
        self.result_equality = DEFAULT
        db = ctx.db
        index = db.list_index(aqua_list, self.anchor.attributes())
        positions, used = index.positions_for(self.anchor, db.stats)
        cells = list(aqua_list.cells())
        values = aqua_list.values()
        if used:
            starts = sorted(
                {
                    position - offset
                    for position in positions
                    for offset in self.offsets
                    if position - offset >= 0
                }
            )
            ctx.stats.bump("positions_scanned", len(starts))
            matches = iter_list_matches(lp, values, starts=starts, flush_per_start=True)
        else:
            matches = iter_list_matches(lp, values, flush_per_start=True)
        seen: set[Any] = set()
        for match in matches:
            row = AquaList([cells[i] for i in match.kept])
            key = DEFAULT.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row

    def access_path(self) -> str:
        offsets = ",".join(str(offset) for offset in self.offsets)
        return f"position-index probe on {self.anchor.describe()} @ -{{{offsets}}}"


# -- set operators -------------------------------------------------------------


class SelectFilter(PhysicalOp):
    """``select(p)(S)``: stream the members that satisfy ``p``."""

    name = "select_filter"
    shape = "set"

    def rows(self) -> Iterator[Any]:
        rows, equality = self.set_source(self.children[0])
        self.result_equality = equality
        yield from self._member_rows(rows, equality)

    def _member_rows(self, rows: Iterator[Any], equality) -> Iterator[Any]:
        """The per-member loop, split out so the parallel subclass can
        run it over an already-started stream (undersized fallback)."""
        del equality
        counted = self.ctx.stats.counting(self.logical.predicate)
        for row in rows:
            if counted(row):
                yield row


class IndexedSelectFilter(PhysicalOp):
    """Extent select decomposed into an index probe plus residual check.

    When the logical input is the extent itself, the extent is never
    scanned as a child operator — the candidates come straight from the
    attribute index (or one full scan when no index serves), and both
    conjuncts re-check each candidate.
    """

    name = "indexed_select_filter"
    shape = "set"

    def __init__(
        self, logical, child: PhysicalOp | None, extent: str | None, indexed, residual
    ) -> None:
        super().__init__(logical, () if child is None else (child,))
        self.extent = extent
        self.indexed = indexed
        self.residual = residual

    def rows(self) -> Iterator[Any]:
        ctx = self.ctx
        if not self.children:
            candidates, _ = ctx.db.candidates(self.extent, self.indexed)
            self.note_buffered(len(candidates))
            equality = DEFAULT
            rows: Iterator[Any] = dedup(iter(candidates), DEFAULT)
        else:
            rows, equality = self.set_source(self.children[0])
        self.result_equality = equality
        stats = ctx.stats
        counted_indexed = stats.counting(self.indexed)
        counted_residual = (
            stats.counting(self.residual) if self.residual is not None else None
        )
        for row in rows:
            if not counted_indexed(row):
                continue
            if counted_residual is not None and not counted_residual(row):
                continue
            yield row

    def access_path(self) -> str:
        described = f"extent index on {self.indexed.describe()}"
        if self.residual is not None:
            described += f", residual {self.residual.describe()}"
        return described


class ApplyMap(PhysicalOp):
    """``apply(f)(S)``: stream the images, deduplicated like the set."""

    name = "apply_map"
    shape = "set"

    def rows(self) -> Iterator[Any]:
        rows, equality = self.set_source(self.children[0])
        self.result_equality = equality
        yield from self._member_rows(rows, equality)

    def _member_rows(self, rows: Iterator[Any], equality) -> Iterator[Any]:
        """The per-member loop, split out so the parallel subclass can
        run it over an already-started stream (undersized fallback)."""
        function = self.logical.function
        seen: set[Any] = set()
        for row in rows:
            image = function(row)
            key = equality.key(image)
            if key in seen:
                continue
            seen.add(key)
            yield image


class FlattenPipe(PhysicalOp):
    """``flatten(S)``: stream the members of the member sets."""

    name = "flatten_pipe"
    shape = "set"

    def rows(self) -> Iterator[Any]:
        rows, _equality = self.set_source(self.children[0])
        self.result_equality = DEFAULT
        seen: set[Any] = set()
        for member in rows:
            if not isinstance(member, AquaSet):
                raise QueryError(
                    "flatten expects a set of sets"
                    f" (plan path: {self._trail_text()})"
                )
            for item in member:
                key = DEFAULT.key(item)
                if key in seen:
                    continue
                seen.add(key)
                yield item


class UnionPipe(PhysicalOp):
    """Set union: left stream first, then the unseen right members.

    Dedup keys use the left side's equality — the rule ``AquaSet.union``
    applies — so no buffering is needed beyond the key set.
    """

    name = "union_pipe"
    shape = "set"

    def rows(self) -> Iterator[Any]:
        left_rows, left_equality = self.set_source(self.children[0])
        self.result_equality = left_equality
        seen: set[Any] = set()
        for row in left_rows:
            key = left_equality.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row
        right_rows, _ = self.set_source(self.children[1])
        for row in right_rows:
            key = left_equality.key(row)
            if key in seen:
                continue
            seen.add(key)
            yield row


class IntersectPipe(PhysicalOp):
    """Set intersection, preserving the left side's member order.

    Order preservation forces real buffers (the left members and the
    right key set); both are reported honestly via ``note_buffered``.
    """

    name = "intersect_pipe"
    shape = "set"
    _keep_matches = True

    def rows(self) -> Iterator[Any]:
        left_rows, left_equality = self.set_source(self.children[0])
        buffered: list[Any] = []
        for row in left_rows:
            buffered.append(row)
            self.note_buffered(len(buffered))
        self.result_equality = left_equality
        right_rows, _ = self.set_source(self.children[1])
        right_keys: set[Any] = set()
        for row in right_rows:
            right_keys.add(left_equality.key(row))
            self.note_buffered(len(buffered) + len(right_keys))
        for row in buffered:
            if (left_equality.key(row) in right_keys) == self._keep_matches:
                yield row

    def access_path(self) -> str:
        return "buffers left members + right keys"


class DiffPipe(IntersectPipe):
    """Set difference: the left members whose key the right side lacks."""

    name = "diff_pipe"
    _keep_matches = False
