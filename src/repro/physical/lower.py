"""Logical → physical lowering: pick one streaming operator per node.

:func:`lower` walks a logical expression (:mod:`repro.query.expr`) and
produces a :class:`~repro.physical.base.PhysicalPlan` of
:mod:`~repro.physical.operators`.  The default mapping is structure
preserving — one physical operator per logical node, at the same plan
path, so EXPLAIN ANALYZE metrics line up position-for-position with the
logical tree and with the eager interpreter's scopes.

Access-path choice lives here, not in the expression tree.  The
deprecated ``Indexed*`` shim nodes (what the rewrite engine still emits)
lower to their probing operators, and ``choose_access_paths=True``
additionally runs the same anchor analysis the rewrite rules use
(:mod:`repro.optimizer.anchors`) directly on plain logical nodes — the
lowering-native replacement for routing every decision through shim
node types.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..algebra.list_ops import split_list
from ..algebra.tree_ops import all_anc, all_desc
from ..errors import QueryError
from ..optimizer.anchors import (
    extent_conjunct_split,
    list_anchor_choice,
    tree_split_anchors,
)
from ..patterns.list_parser import list_pattern
from ..patterns.tree_parser import tree_pattern
from ..query import expr as E
from .base import PhysicalOp, PhysicalPlan
from . import operators as P

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.database import Database


def lower(
    expr: E.Expr, db: "Database", *, choose_access_paths: bool = False
) -> PhysicalPlan:
    """Lower ``expr`` to a physical plan against ``db``.

    With ``choose_access_paths`` the lowering consults the optimizer's
    anchor analysis and upgrades plain ``sub_select`` / ``split`` /
    extent-``select`` nodes to their index-probing operators on its own;
    without it (the default) the plan mirrors the logical tree exactly,
    which keeps plan-path metrics and work counters bit-compatible with
    the eager interpreter for the same expression.
    """
    root = _lower_node(expr, db, choose_access_paths)
    return PhysicalPlan(root, expr)


def _lower_node(node: E.Expr, db: "Database", choose: bool) -> PhysicalOp:
    build = _LOWERING.get(type(node))
    if build is None:
        raise QueryError(f"no lowering rule for {type(node).__name__}")
    return build(node, db, choose)


def _child(node: E.Expr, db: "Database", choose: bool) -> PhysicalOp:
    return _lower_node(node.input, db, choose)


# -- per-node builders ---------------------------------------------------------


def _lower_root(node: E.Root, db, choose) -> PhysicalOp:
    del db, choose
    return P.ScanRoot(node)


def _lower_extent(node: E.Extent, db, choose) -> PhysicalOp:
    del db, choose
    return P.ScanExtent(node)


def _lower_literal(node: E.Literal, db, choose) -> PhysicalOp:
    del db, choose
    return P.LiteralSource(node)


def _lower_tree_select(node: E.TreeSelect, db, choose) -> PhysicalOp:
    return P.TreeSelectOp(node, (_child(node, db, choose),))


def _lower_tree_apply(node: E.TreeApply, db, choose) -> PhysicalOp:
    return P.TreeApplyOp(node, (_child(node, db, choose),))


def _lower_sub_select(node: E.SubSelect, db, choose) -> PhysicalOp:
    child = _child(node, db, choose)
    # Patterns are compiled once here, at lowering time, so the probing
    # operators never coerce per ``rows()`` and every operator matching
    # the same pattern hands the match-context registry an equal key.
    tp = tree_pattern(node.pattern)
    if choose:
        anchors = tree_split_anchors(tp)
        if anchors is not None:
            return P.IndexAnchorScan(node, child, tp, anchors)
    return P.SubSelectPipe(node, child, tp)


def _lower_indexed_sub_select(node: E.IndexedSubSelect, db, choose) -> PhysicalOp:
    return P.IndexAnchorScan(
        node, _child(node, db, choose), tree_pattern(node.pattern), node.anchors
    )


def _lower_split(node: E.Split, db, choose) -> PhysicalOp:
    child = _child(node, db, choose)
    tp = tree_pattern(node.pattern)
    if choose:
        anchors = tree_split_anchors(tp)
        if anchors is not None:
            return P.IndexAnchorSplit(node, child, tp, node.function, anchors)
    return P.SplitPipe(node, child, tp, node.function)


def _lower_indexed_split(node: E.IndexedSplit, db, choose) -> PhysicalOp:
    return P.IndexAnchorSplit(
        node,
        _child(node, db, choose),
        tree_pattern(node.pattern),
        node.function,
        node.anchors,
    )


def _materializer(
    node: E.Expr, db, choose, producer: Callable, input_shape: str, kind: str
) -> PhysicalOp:
    return P.MaterializeOp(node, _child(node, db, choose), producer, input_shape, kind)


def _lower_all_anc(node: E.AllAnc, db, choose) -> PhysicalOp:
    def producer(tree, node=node):
        return all_anc(node.pattern, node.function, tree)

    return _materializer(node, db, choose, producer, "tree", "all_anc")


def _lower_all_desc(node: E.AllDesc, db, choose) -> PhysicalOp:
    def producer(tree, node=node):
        return all_desc(node.pattern, node.function, tree)

    return _materializer(node, db, choose, producer, "tree", "all_desc")


def _lower_list_select(node: E.ListSelect, db, choose) -> PhysicalOp:
    return P.ListSelectPipe(node, (_child(node, db, choose),))


def _lower_list_apply(node: E.ListApply, db, choose) -> PhysicalOp:
    return P.ListApplyPipe(node, (_child(node, db, choose),))


def _lower_list_sub_select(node: E.ListSubSelect, db, choose) -> PhysicalOp:
    child = _child(node, db, choose)
    lp = list_pattern(node.pattern)
    if choose:
        chosen = list_anchor_choice(lp)
        if chosen is not None:
            anchor, offsets = chosen
            return P.ListAnchorScan(node, child, lp, anchor, offsets)
    return P.ListSubSelectPipe(node, child, lp)


def _lower_indexed_list_sub_select(
    node: E.IndexedListSubSelect, db, choose
) -> PhysicalOp:
    return P.ListAnchorScan(
        node,
        _child(node, db, choose),
        list_pattern(node.pattern),
        node.anchor,
        node.offsets,
    )


def _lower_list_split(node: E.ListSplit, db, choose) -> PhysicalOp:
    def producer(aqua_list, node=node):
        return split_list(node.pattern, node.function, aqua_list)

    return _materializer(node, db, choose, producer, "list", "list split")


def _lower_set_select(node: E.SetSelect, db, choose) -> PhysicalOp:
    if choose and isinstance(node.input, E.Extent):
        split = extent_conjunct_split(node.predicate, node.input.name, db)
        if split is not None:
            indexed, residual = split
            return P.IndexedSelectFilter(
                node, None, node.input.name, indexed, residual
            )
    return P.SelectFilter(node, (_child(node, db, choose),))


def _lower_indexed_set_select(node: E.IndexedSetSelect, db, choose) -> PhysicalOp:
    if isinstance(node.input, E.Extent):
        # The candidates come straight from the attribute index; the
        # extent is never scanned as a child operator (eager parity:
        # the interpreter leaves the input unevaluated too).
        return P.IndexedSelectFilter(
            node, None, node.input.name, node.indexed, node.residual
        )
    return P.IndexedSelectFilter(
        node, _child(node, db, choose), None, node.indexed, node.residual
    )


def _lower_set_apply(node: E.SetApply, db, choose) -> PhysicalOp:
    return P.ApplyMap(node, (_child(node, db, choose),))


def _lower_set_flatten(node: E.SetFlatten, db, choose) -> PhysicalOp:
    return P.FlattenPipe(node, (_child(node, db, choose),))


def _lower_binary(cls):
    def build(node, db, choose):
        return cls(
            node,
            (_lower_node(node.left, db, choose), _lower_node(node.right, db, choose)),
        )

    return build


_LOWERING: dict[type, Callable[[E.Expr, "Database", bool], PhysicalOp]] = {
    E.Root: _lower_root,
    E.Extent: _lower_extent,
    E.Literal: _lower_literal,
    E.TreeSelect: _lower_tree_select,
    E.TreeApply: _lower_tree_apply,
    E.SubSelect: _lower_sub_select,
    E.IndexedSubSelect: _lower_indexed_sub_select,
    E.Split: _lower_split,
    E.IndexedSplit: _lower_indexed_split,
    E.AllAnc: _lower_all_anc,
    E.AllDesc: _lower_all_desc,
    E.ListSelect: _lower_list_select,
    E.ListApply: _lower_list_apply,
    E.ListSubSelect: _lower_list_sub_select,
    E.IndexedListSubSelect: _lower_indexed_list_sub_select,
    E.ListSplit: _lower_list_split,
    E.SetSelect: _lower_set_select,
    E.IndexedSetSelect: _lower_indexed_set_select,
    E.SetApply: _lower_set_apply,
    E.SetFlatten: _lower_set_flatten,
    E.SetUnion: _lower_binary(P.UnionPipe),
    E.SetIntersection: _lower_binary(P.IntersectPipe),
    E.SetDifference: _lower_binary(P.DiffPipe),
}
