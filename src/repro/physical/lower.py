"""Logical → physical lowering: pick one streaming operator per node.

:func:`lower` walks a logical expression (:mod:`repro.query.expr`) and
produces a :class:`~repro.physical.base.PhysicalPlan` of
:mod:`~repro.physical.operators`.  The default mapping is structure
preserving — one physical operator per logical node, at the same plan
path, so EXPLAIN ANALYZE metrics line up position-for-position with the
logical tree and with the eager interpreter's scopes.

Access-path choice lives here, not in the expression tree.
``choose_access_paths=True`` runs the anchor analysis
(:mod:`repro.optimizer.anchors`) directly on plain logical nodes and
commits to the probing operators; the factory records which ``$param``
slots back those commitments (``PipelineFactory.anchor_params``) so the
prepared-query re-plan guard can watch them.  The ``Indexed*``
expression shims that used to carry these decisions as plan nodes are
gone.

Lowering is split into two stages so one analysis serves many runs:

* :func:`lower_factory` does all the *per-plan* work — pattern
  compilation, anchor analysis, conjunct splits — and returns a
  :class:`PipelineFactory` of nested zero-argument **thunks**;
* :meth:`PipelineFactory.instantiate` runs the thunks, constructing a
  fresh operator tree (physical operators carry per-execution state:
  generators, counters, the execution context), ready to execute.

:func:`lower` is the one-shot composition of the two, and the prepared
-query path (:mod:`repro.query.prepare`) caches the factory so repeated
executions skip straight to ``instantiate()``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..algebra.list_ops import split_list
from ..algebra.tree_ops import all_anc, all_desc
from ..errors import QueryError
from ..optimizer.anchors import (
    extent_conjunct_split,
    list_anchor_choice,
    list_columnar_choice,
    tree_columnar_anchors,
    tree_split_anchors,
)
from ..optimizer.cost import CostModel, anchor_scan_profitable, exchange_profitable
from ..params import Param
from ..patterns.list_parser import list_pattern
from ..patterns.tree_parser import tree_pattern
from ..query import expr as E
from .base import PhysicalOp, PhysicalPlan
from . import exchange as X
from . import operators as P

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.database import Database

#: A zero-argument constructor for one operator subtree.
Thunk = Callable[[], PhysicalOp]


class _AccessPaths:
    """Truthy lowering context: access-path choice is on, record it.

    Passed through the builders in place of the old ``choose`` boolean;
    every anchor / conjunct commitment notes the predicates it relies
    on, so the factory can report which ``$param`` slots back an index
    choice (the prepared-query re-plan guard's watch list).
    """

    def __init__(self) -> None:
        self.param_slots: set[str] = set()

    def __bool__(self) -> bool:
        return True

    def note(self, *predicates) -> None:
        for predicate in predicates:
            if predicate is None or predicate.opaque:
                continue
            for _, op, constant in predicate.indexable_terms():
                if op == "=" and isinstance(constant, Param):
                    self.param_slots.add(constant.name)


class PipelineFactory:
    """One lowering, many executions.

    Holds the thunk tree produced by :func:`lower_factory`; every
    :meth:`instantiate` call builds a fresh
    :class:`~repro.physical.base.PhysicalPlan` (fresh operators, shared
    compiled patterns and anchor decisions).  ``anchor_params`` is the
    set of ``$param`` slots whose bindings the lowering's access-path
    commitments assumed index-servable (empty without
    ``choose_access_paths``).
    """

    def __init__(
        self,
        expr: E.Expr,
        build_root: Thunk,
        anchor_params: frozenset[str] = frozenset(),
    ) -> None:
        self.expr = expr
        self._build_root = build_root
        self.anchor_params = anchor_params

    def instantiate(self) -> PhysicalPlan:
        return PhysicalPlan(self._build_root(), self.expr)


def lower_factory(
    expr: E.Expr, db: "Database", *, choose_access_paths: bool = False
) -> PipelineFactory:
    """Run the per-plan lowering analysis once; defer operator creation.

    Pattern compilation and (under ``choose_access_paths``) the anchor /
    conjunct analyses all happen here, so a cached factory's
    ``instantiate()`` does no planning work at all.
    """
    choice = _AccessPaths() if choose_access_paths else False
    root = _lower_node(expr, db, choice)
    slots = frozenset(choice.param_slots) if choice else frozenset()
    return PipelineFactory(expr, root, slots)


def lower(
    expr: E.Expr, db: "Database", *, choose_access_paths: bool = False
) -> PhysicalPlan:
    """Lower ``expr`` to a physical plan against ``db``.

    With ``choose_access_paths`` the lowering consults the optimizer's
    anchor analysis and upgrades plain ``sub_select`` / ``split`` /
    extent-``select`` nodes to their index-probing operators on its own;
    without it (the default) the plan mirrors the logical tree,
    which keeps plan-path metrics and work counters bit-compatible with
    the eager interpreter for the same expression.  The columnar
    operators are the one exception in both modes: they gate themselves
    per execution (falling back to the plain full scan when the kernel
    is off or the tree is under the size threshold), so column-servable
    nodes always lower to them.
    """
    return lower_factory(
        expr, db, choose_access_paths=choose_access_paths
    ).instantiate()


def _lower_node(node: E.Expr, db: "Database", choose: bool) -> Thunk:
    build = _LOWERING.get(type(node))
    if build is None:
        raise QueryError(f"no lowering rule for {type(node).__name__}")
    return build(node, db, choose)


def _child(node: E.Expr, db: "Database", choose: bool) -> Thunk:
    return _lower_node(node.input, db, choose)


# -- per-node builders ---------------------------------------------------------
#
# Each builder runs once per lowering (doing any analysis) and returns
# the thunk that constructs its operator; child thunks are resolved
# eagerly so a factory's whole analysis happens up front.


def _lower_root(node: E.Root, db, choose) -> Thunk:
    del db, choose
    return lambda: P.ScanRoot(node)


def _lower_extent(node: E.Extent, db, choose) -> Thunk:
    del db, choose
    return lambda: P.ScanExtent(node)


def _lower_literal(node: E.Literal, db, choose) -> Thunk:
    del db, choose
    return lambda: P.LiteralSource(node)


def _lower_param(node: E.Param, db, choose) -> Thunk:
    del db, choose
    return lambda: P.ParamSource(node)


def _lower_tree_select(node: E.TreeSelect, db, choose) -> Thunk:
    child = _child(node, db, choose)
    return lambda: P.TreeSelectOp(node, (child(),))


def _lower_tree_apply(node: E.TreeApply, db, choose) -> Thunk:
    child = _child(node, db, choose)
    return lambda: P.TreeApplyOp(node, (child(),))


def _lower_sub_select(node: E.SubSelect, db, choose) -> Thunk:
    child = _child(node, db, choose)
    # Patterns are compiled once here, at lowering time, so the probing
    # operators never coerce per ``rows()``, every operator matching the
    # same pattern hands the match-context registry an equal key — and a
    # cached factory reuses the compiled pattern across executions.
    tp = tree_pattern(node.pattern)
    if choose:
        anchors = tree_split_anchors(tp)
        if anchors is not None and anchor_scan_profitable(db, node.input, anchors, tp):
            choose.note(*anchors)
            return lambda: P.IndexAnchorScan(node, child(), tp, anchors)
    # Index upgrades are the planner's call (``choose_access_paths``
    # above), but the columnar operators gate themselves at execution
    # time — knob off or an undersized tree falls back to the inherited
    # full scan bit-identically — so any column-servable anchor set
    # takes the batch operator unconditionally.  That also covers
    # anchors an index can never serve (ordering comparisons, OR
    # combinations).
    columnar = tree_columnar_anchors(tp)
    if columnar is not None:
        return lambda: P.ColumnarAnchorScan(node, child(), tp, columnar)
    return lambda: P.SubSelectPipe(node, child(), tp)


def _lower_split(node: E.Split, db, choose) -> Thunk:
    child = _child(node, db, choose)
    tp = tree_pattern(node.pattern)
    if choose:
        anchors = tree_split_anchors(tp)
        if anchors is not None and anchor_scan_profitable(db, node.input, anchors, tp):
            choose.note(*anchors)
            return lambda: P.IndexAnchorSplit(node, child(), tp, node.function, anchors)
    columnar = tree_columnar_anchors(tp)
    if columnar is not None:
        return lambda: P.ColumnarAnchorSplit(node, child(), tp, node.function, columnar)
    return lambda: P.SplitPipe(node, child(), tp, node.function)


def _materializer(
    node: E.Expr, db, choose, producer: Callable, input_shape: str, kind: str
) -> Thunk:
    child = _child(node, db, choose)
    return lambda: P.MaterializeOp(node, child(), producer, input_shape, kind)


def _lower_all_anc(node: E.AllAnc, db, choose) -> Thunk:
    def producer(tree, node=node):
        return all_anc(node.pattern, node.function, tree)

    return _materializer(node, db, choose, producer, "tree", "all_anc")


def _lower_all_desc(node: E.AllDesc, db, choose) -> Thunk:
    def producer(tree, node=node):
        return all_desc(node.pattern, node.function, tree)

    return _materializer(node, db, choose, producer, "tree", "all_desc")


def _lower_list_select(node: E.ListSelect, db, choose) -> Thunk:
    child = _child(node, db, choose)
    return lambda: P.ListSelectPipe(node, (child(),))


def _lower_list_apply(node: E.ListApply, db, choose) -> Thunk:
    child = _child(node, db, choose)
    return lambda: P.ListApplyPipe(node, (child(),))


def _lower_list_sub_select(node: E.ListSubSelect, db, choose) -> Thunk:
    child = _child(node, db, choose)
    lp = list_pattern(node.pattern)
    if choose:
        chosen = list_anchor_choice(lp)
        if chosen is not None:
            anchor, offsets = chosen
            choose.note(anchor)
            return lambda: P.ListAnchorScan(node, child(), lp, anchor, offsets)
    choices = list_columnar_choice(lp)
    if choices is not None:
        return lambda: P.ColumnarListScan(node, child(), lp, choices)
    return lambda: P.ListSubSelectPipe(node, child(), lp)


def _lower_list_split(node: E.ListSplit, db, choose) -> Thunk:
    def producer(aqua_list, node=node):
        return split_list(node.pattern, node.function, aqua_list)

    return _materializer(node, db, choose, producer, "list", "list split")


def _lower_set_select(node: E.SetSelect, db, choose) -> Thunk:
    if choose and isinstance(node.input, E.Extent):
        split = extent_conjunct_split(node.predicate, node.input.name, db)
        if split is not None:
            indexed, residual = split
            extent = node.input.name
            choose.note(indexed)
            return lambda: P.IndexedSelectFilter(node, None, extent, indexed, residual)
    child = _child(node, db, choose)
    # Like the columnar operators, the exchange gates itself per
    # execution (``AQUA_PARALLEL`` off or an undersized input runs the
    # inherited sequential loop bit-identically), so the static cost
    # gate only filters out inputs *known* to be too small to ever
    # profit — small extents keep the plain operator and its zero
    # buffering.
    if exchange_profitable(CostModel(db).input_size(node)):
        return lambda: X.ParallelSelectFilter(node, (child(),))
    return lambda: P.SelectFilter(node, (child(),))


def _lower_set_apply(node: E.SetApply, db, choose) -> Thunk:
    child = _child(node, db, choose)
    if exchange_profitable(CostModel(db).input_size(node)):
        return lambda: X.ParallelApplyMap(node, (child(),))
    return lambda: P.ApplyMap(node, (child(),))


def _lower_set_flatten(node: E.SetFlatten, db, choose) -> Thunk:
    child = _child(node, db, choose)
    return lambda: P.FlattenPipe(node, (child(),))


def _lower_binary(cls):
    def build(node, db, choose):
        left = _lower_node(node.left, db, choose)
        right = _lower_node(node.right, db, choose)
        return lambda: cls(node, (left(), right()))

    return build


_LOWERING: dict[type, Callable[[E.Expr, "Database", bool], Thunk]] = {
    E.Root: _lower_root,
    E.Extent: _lower_extent,
    E.Literal: _lower_literal,
    E.Param: _lower_param,
    E.TreeSelect: _lower_tree_select,
    E.TreeApply: _lower_tree_apply,
    E.SubSelect: _lower_sub_select,
    E.Split: _lower_split,
    E.AllAnc: _lower_all_anc,
    E.AllDesc: _lower_all_desc,
    E.ListSelect: _lower_list_select,
    E.ListApply: _lower_list_apply,
    E.ListSubSelect: _lower_list_sub_select,
    E.ListSplit: _lower_list_split,
    E.SetSelect: _lower_set_select,
    E.SetApply: _lower_set_apply,
    E.SetFlatten: _lower_set_flatten,
    E.SetUnion: _lower_binary(P.UnionPipe),
    E.SetIntersection: _lower_binary(P.IntersectPipe),
    E.SetDifference: _lower_binary(P.DiffPipe),
}
