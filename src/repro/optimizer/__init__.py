"""EPOQ-flavored rewrite optimizer: rules, cost model, engine.

The logical→physical lowering pass (``lower``) also hangs off this
package: it shares the anchor analysis in :mod:`repro.optimizer.anchors`
with the rewrite rules and is where access paths are chosen.  It is
re-exported lazily (PEP 562) because the physical layer imports this
package for that same analysis.
"""

from .anchors import extent_conjunct_split, list_anchor_choice, tree_split_anchors
from .cost import CostModel, list_pattern_cost, tree_pattern_cost
from .engine import Optimizer, Region, Trace, default_regions, optimize
from .rules import (
    DEFAULT_RULES,
    Rule,
    SetSelectFusionRule,
    paper_split_rewrite,
)

__all__ = [
    "CostModel",
    "DEFAULT_RULES",
    "Optimizer",
    "Region",
    "Rule",
    "SetSelectFusionRule",
    "Trace",
    "default_regions",
    "extent_conjunct_split",
    "list_anchor_choice",
    "list_pattern_cost",
    "lower",
    "optimize",
    "paper_split_rewrite",
    "tree_pattern_cost",
    "tree_split_anchors",
]


def __getattr__(name):
    if name == "lower":
        from ..physical import lower

        return lower
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
