"""EPOQ-flavored rewrite optimizer: rules, cost model, engine."""

from .cost import CostModel, list_pattern_cost, tree_pattern_cost
from .engine import Optimizer, Region, Trace, default_regions, optimize
from .rules import (
    DEFAULT_RULES,
    ConjunctDecompositionRule,
    ListAnchorIndexRule,
    Rule,
    SetSelectFusionRule,
    SplitIndexRule,
    SubSelectIndexRule,
    paper_split_rewrite,
)

__all__ = [
    "CostModel",
    "ConjunctDecompositionRule",
    "DEFAULT_RULES",
    "ListAnchorIndexRule",
    "Optimizer",
    "Region",
    "Rule",
    "SetSelectFusionRule",
    "SplitIndexRule",
    "SubSelectIndexRule",
    "Trace",
    "default_regions",
    "list_pattern_cost",
    "optimize",
    "paper_split_rewrite",
    "tree_pattern_cost",
]
