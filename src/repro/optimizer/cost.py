"""A simple cost model for AQUA plans.

The companion optimization paper [31] promises a full cost model; this
reproduction implements the minimum the §4–§5 rewrites need to be
*decisions* rather than blind rewrites:

* structure sizes, resolved exactly for ``Root``/``Literal`` sources
  (the common case in an OODB where queries start at named roots) and
  estimated otherwise;
* anchor selectivity, taken from the per-structure node index when one
  exists, with a default guess otherwise;
* pattern evaluation cost, scaled by the number of atoms and penalized
  exponentially per closure (the paper's footnote 3: closure queries
  can be exponential).

Costs are abstract work units (≈ predicate evaluations); the benchmark
suite confirms the model's *ordering* matches measured time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping

from .. import config
from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree
from ..patterns.list_ast import ListPattern, Star as ListStar, Plus as ListPlus
from ..patterns.tree_ast import TreePattern, TreeStar, TreePlus, ChildStar, ChildPlus, TreeAtom
from ..predicates.alphabet import AlphabetPredicate
from ..query import expr as E
from ..storage.database import Database

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..query.metrics import PlanMetrics

#: Fallback size when a source cannot be resolved at planning time.
DEFAULT_SIZE = 1000.0

#: Fallback selectivity for an anchor predicate without index statistics.
DEFAULT_SELECTIVITY = 0.1

#: Cost of one index probe, in predicate-evaluation units.
PROBE_COST = 5.0

#: Per-position cost of the columnar kernel's bitset filtering, in
#: predicate-evaluation units.  A warm extent serves candidate roots
#: straight from cached predicate columns; even a cold one evaluates
#: each anchor in one batch pass — either way a candidate test is a bit
#: probe, not a Python predicate dispatch.
COLUMN_SCAN_COST = 0.05

#: Per-closure blowup of the backtracking tree matcher: every star/plus
#: roughly doubles the candidate expansions it explores.
CLOSURE_BASE_BACKTRACK = 2.0

#: Per-closure blowup under the packrat memo engine.  Memoization turns
#: the re-explored expansions into table replays, so closures cost far
#: less than a doubling — calibrated against the CLAIM-MEMO harness
#: workloads, where memo-on matcher steps grow mildly with closure
#: count instead of exponentially.
CLOSURE_BASE_MEMO = 1.25


#: Fixed cost of standing up one exchange worker (thread spawn, scope
#: re-arming, shard bookkeeping, merge traffic), in predicate-evaluation
#: units.  With the default two-way fan-out this prices the break-even
#: input at 256 rows — which is why ``AQUA_PARALLEL_MIN_ROWS`` defaults
#: to exactly that: the static gate and the runtime gate agree.
EXCHANGE_WORKER_COST = 64.0


def exchange_profitable(
    rows: float, per_member_cost: float = 1.0, workers: int = 2
) -> bool:
    """Is fanning ``rows`` out to ``workers`` cheaper than one thread?

    Sequential work is ``rows × per_member_cost``; the parallel plan
    pays a fixed :data:`EXCHANGE_WORKER_COST` per worker and then runs
    the same work at ``1/workers`` the critical-path length.  The
    lowering asks with the *minimum* useful fan-out (two workers), so a
    plan priced profitable here stays profitable at any larger worker
    count the runtime is granted.
    """
    if workers < 2:
        return False
    sequential = rows * per_member_cost
    parallel = EXCHANGE_WORKER_COST * workers + sequential / workers
    return sequential > parallel


def anchor_scan_profitable(
    db: Database,
    input_node: E.Expr,
    anchors: tuple[AlphabetPredicate, ...],
    pattern: TreePattern,
) -> bool:
    """Is probing ``anchors`` priced no worse than the full tree scan?

    The lowering's cost gate for the §4 split/index choice.  The probe
    pays :data:`PROBE_COST` per anchor plus per-candidate matching on
    the survivors; the scan matches every node.  An unselective anchor
    (every node is ``d``) prices out and keeps the scan — the decision
    the optimizer's rule-level cost gate used to make when the choice
    was a plan rewrite.
    """
    model = CostModel(db)
    size = model.input_size(input_node)
    per_candidate = tree_pattern_cost(pattern)
    selectivity = min(
        1.0, sum(model.anchor_selectivity(input_node, anchor) for anchor in anchors)
    )
    probed = PROBE_COST * len(anchors) + selectivity * size * per_candidate
    return probed <= size * per_candidate


def closure_penalty_base() -> float:
    """Per-closure cost multiplier for the active tree-match engine.

    Split-rewrite decisions weigh per-candidate matching cost against
    probe cost; with memoization on, closure-heavy patterns are much
    cheaper to re-match, so the optimizer must not overestimate them or
    it keeps choosing probe-heavy plans the memo engine makes pointless.
    """
    from ..patterns.tree_match import tree_engine

    return CLOSURE_BASE_MEMO if tree_engine() == "memo" else CLOSURE_BASE_BACKTRACK


def tree_pattern_cost(pattern: TreePattern) -> float:
    """Per-candidate matching cost: atoms, with closures penalized."""
    atoms = 0
    closures = 0
    for node in pattern.body.walk():
        if isinstance(node, TreeAtom):
            atoms += 1
        if isinstance(node, (TreeStar, TreePlus, ChildStar, ChildPlus)):
            closures += 1
    return max(1.0, float(atoms)) * (closure_penalty_base() ** closures)


def list_pattern_cost(pattern: ListPattern) -> float:
    atoms = sum(1 for _ in pattern.body.atoms())
    closures = sum(
        1 for node in pattern.body.walk() if isinstance(node, (ListStar, ListPlus))
    )
    return max(1.0, float(atoms)) * (2.0 ** closures)


class CostModel:
    """Estimates plan cost against a concrete database."""

    def __init__(self, db: Database) -> None:
        self.db = db

    # -- source sizing -----------------------------------------------------

    def source_value(self, node: E.Expr) -> Any | None:
        """Resolve a source expression to its value when statically known."""
        if isinstance(node, E.Literal):
            return node.value
        if isinstance(node, E.Root):
            try:
                return self.db.root(node.name)
            except Exception:
                return None
        return None

    def input_size(self, node: E.Expr) -> float:
        value = self.source_value(node)
        if isinstance(value, AquaTree):
            return float(value.size())
        if isinstance(value, AquaList):
            return float(len(value))
        if isinstance(node, E.Extent):
            return float(self.db.extent_size(node.name)) or DEFAULT_SIZE
        if isinstance(node, E._Unary):
            return self.input_size(node.input)
        return DEFAULT_SIZE

    # -- selectivities -----------------------------------------------------

    def anchor_selectivity(self, node: E.Expr, anchor: AlphabetPredicate) -> float:
        """Fraction of nodes/elements an anchor's index probe returns."""
        value = self.source_value(node)
        if isinstance(value, AquaTree):
            index = self.db.tree_index(value, anchor.attributes())
            terms = index.servable_terms(anchor)
            if terms:
                attribute, _, constant = terms[0]
                total = max(1, index.node_count)
                return index.count(attribute, constant) / total
        if isinstance(value, AquaList):
            index = self.db.list_index(value, anchor.attributes())
            positions, used = index.positions_for(anchor)
            if used:
                return len(positions) / max(1, len(value))
        return DEFAULT_SELECTIVITY

    def extent_term_selectivity(
        self, extent: str, predicate: AlphabetPredicate
    ) -> float:
        total = max(1, self.db.extent_size(extent))
        for attribute, op, constant in predicate.indexable_terms():
            if op == "=":
                index = self.db.index_for(extent, attribute)
                if index is not None and hasattr(index, "count"):
                    return index.count(constant) / total  # type: ignore[union-attr]
            histogram = self.db.histogram(extent, attribute)
            if histogram is not None:
                return histogram.selectivity(op, constant)
        return DEFAULT_SELECTIVITY

    # -- plan costing --------------------------------------------------------

    def cost(self, node: E.Expr) -> float:
        """Total estimated work for evaluating ``node``."""
        children_cost = sum(self.cost(c) for c in node.children())
        return children_cost + self._local_cost(node)

    def local_cost(self, node: E.Expr) -> float:
        """Estimated work for ``node`` itself, children excluded."""
        return self._local_cost(node)

    def exchange_cost(self, node: E.Expr, workers: int = 2) -> float:
        """Cost of running ``node``'s per-member work as an exchange."""
        size = self.input_size(node)
        return EXCHANGE_WORKER_COST * workers + size / max(1, workers)

    def exchange_profitable(self, node: E.Expr, workers: int = 2) -> bool:
        """Should the lowering emit a parallel exchange for ``node``?

        Per-member cost is priced at one unit — select evaluates one
        predicate per member, apply one function — so the decision
        reduces to the input size against the fan-out overhead.  Inputs
        the model cannot size (:data:`DEFAULT_SIZE`) price as
        parallel-capable; the operator's own runtime gate sees the true
        row count and degrades undersized streams to the sequential
        loop bit-identically.
        """
        return exchange_profitable(self.input_size(node), 1.0, workers)

    # -- cardinality estimation (EXPLAIN ANALYZE's "est rows" column) -------

    def estimated_rows(self, node: E.Expr) -> float:
        """Estimated output cardinality, in the same units the metrics
        layer reports (tree → node count, list/set → member count)."""
        if isinstance(node, (E.Root, E.Literal)):
            value = self.source_value(node)
            if value is not None:
                from ..query.metrics import cardinality

                return float(cardinality(value))
            return DEFAULT_SIZE
        if isinstance(node, E.Extent):
            return float(self.db.extent_size(node.name)) or DEFAULT_SIZE
        size = self.input_size(node)
        if isinstance(node, (E.TreeSelect, E.ListSelect, E.SetSelect)):
            return size * DEFAULT_SELECTIVITY
        if isinstance(node, (E.SubSelect, E.Split, E.AllAnc, E.AllDesc)):
            return size * DEFAULT_SELECTIVITY
        if isinstance(node, (E.ListSubSelect, E.ListSplit)):
            return size * DEFAULT_SELECTIVITY
        if isinstance(node, (E.SetUnion,)):
            return self.estimated_rows(node.left) + self.estimated_rows(node.right)
        if isinstance(node, E.SetIntersection):
            return min(self.estimated_rows(node.left), self.estimated_rows(node.right))
        if isinstance(node, E.SetDifference):
            return self.estimated_rows(node.left)
        # apply/flatten and anything cardinality-preserving by default.
        return size

    # -- calibration against runtime metrics --------------------------------

    def calibrate(self, expr: E.Expr, metrics: "PlanMetrics") -> list["CalibrationRecord"]:
        """Compare this model's estimates against a plan's actual metrics.

        Walks ``expr`` and, for every operator the instrumented executor
        collected, reports estimated vs. actual rows and cost units.
        This is what makes rewrites like the §4 split-index auditable:
        after an ``EXPLAIN ANALYZE`` run the per-rule error shows
        whether the model's pricing matched the work that happened.
        """
        records: list[CalibrationRecord] = []

        def walk(node: E.Expr, path: tuple[int, ...]) -> None:
            op = metrics.get(path)
            if op is not None:
                records.append(
                    CalibrationRecord(
                        path=path,
                        operator=node.head(),
                        rule=None,
                        estimated_rows=self.estimated_rows(node),
                        actual_rows=op.rows_out,
                        estimated_cost=self.local_cost(node),
                        actual_units=actual_cost_units(op.counters),
                    )
                )
            for index, child in enumerate(node.children()):
                walk(child, (*path, index))

        walk(expr, ())
        return records

    def _local_cost(self, node: E.Expr) -> float:
        if isinstance(node, (E.Root, E.Extent, E.Literal)):
            return 1.0
        size = self.input_size(node)
        if isinstance(node, E.SubSelect):
            columnar = self._columnar_tree_cost(size, node.pattern)
            if columnar is not None:
                return columnar
            return size * tree_pattern_cost(node.pattern)
        if isinstance(node, E.ListSubSelect):
            columnar = self._columnar_list_cost(size, node.pattern)
            if columnar is not None:
                return columnar
            return size * list_pattern_cost(node.pattern)
        if isinstance(node, (E.TreeSelect, E.ListSelect, E.SetSelect)):
            return size
        if isinstance(node, E.Split):
            columnar = self._columnar_tree_cost(size, node.pattern, factor=2.0)
            if columnar is not None:
                return columnar
            return size * tree_pattern_cost(node.pattern) * 2.0
        if isinstance(node, (E.AllAnc, E.AllDesc)):
            return size * tree_pattern_cost(node.pattern) * 2.0
        if isinstance(node, E.ListSplit):
            return size * list_pattern_cost(node.pattern) * 2.0
        if isinstance(node, (E.TreeApply, E.ListApply, E.SetApply)):
            return size
        if isinstance(node, (E.SetUnion, E.SetIntersection, E.SetDifference)):
            return self.input_size(node.left) + self.input_size(node.right)
        return size

    def _columnar_tree_cost(
        self, size: float, pattern: TreePattern, factor: float = 1.0
    ) -> float | None:
        """Columnar-path estimate for an unanchored tree scan, or ``None``.

        Mirrors the lowering decision (:func:`tree_columnar_anchors` +
        the ``AQUA_COLUMNAR`` gate and size threshold): when the kernel
        will serve the scan, candidate filtering is a bit probe per node
        plus per-candidate matching — already engine-aware through
        :func:`tree_pattern_cost`'s closure penalty, so a memo-engine
        columnar scan prices lower than a backtracking one exactly as it
        runs.
        """
        from .anchors import tree_columnar_anchors

        if not config.columnar_enabled():
            return None
        if size < config.validated_columnar_threshold():
            return None
        anchors = tree_columnar_anchors(pattern)
        if anchors is None:
            return None
        candidates = min(size, size * DEFAULT_SELECTIVITY * len(anchors))
        return (
            size * COLUMN_SCAN_COST
            + candidates * tree_pattern_cost(pattern) * factor
        )

    def _columnar_list_cost(
        self, size: float, pattern: ListPattern, factor: float = 1.0
    ) -> float | None:
        """Columnar shift-AND estimate for a list scan, or ``None``."""
        from .anchors import list_columnar_choice

        if not config.columnar_enabled():
            return None
        if size < config.validated_columnar_threshold():
            return None
        choices = list_columnar_choice(pattern)
        if choices is None:
            return None
        starts = min(size, size * DEFAULT_SELECTIVITY)
        return (
            size * COLUMN_SCAN_COST * len(choices)
            + starts * list_pattern_cost(pattern) * factor
        )


def actual_cost_units(counters: Mapping[str, int]) -> float:
    """Collapse runtime counters into the model's abstract work units.

    The model prices plans in ≈ predicate evaluations with a fixed
    surcharge per index probe; the same weighting applied to the actual
    counters makes the two columns of ``EXPLAIN ANALYZE`` comparable.
    """
    return (
        counters.get("predicate_evals", 0)
        + counters.get("nodes_scanned", 0)
        + counters.get("positions_scanned", 0)
        + counters.get("objects_scanned", 0)
        + PROBE_COST * counters.get("index_probes", 0)
    )


@dataclass(frozen=True)
class CalibrationRecord:
    """Estimated vs. actual for one operator of an analyzed plan."""

    path: tuple[int, ...]
    operator: str
    rule: str | None
    estimated_rows: float
    actual_rows: int | None
    estimated_cost: float
    actual_units: float

    def row_error(self) -> float | None:
        """Estimate/actual ratio, symmetric (≥ 1; None when unknowable)."""
        if self.actual_rows is None:
            return None
        return _symmetric_ratio(self.estimated_rows, float(self.actual_rows))

    def cost_error(self) -> float:
        return _symmetric_ratio(self.estimated_cost, self.actual_units)


def _symmetric_ratio(estimated: float, actual: float) -> float:
    low, high = sorted((max(estimated, 1.0), max(actual, 1.0)))
    return high / low


def calibration_report(records: list[CalibrationRecord]) -> str:
    """Human-readable per-rule estimate-error summary."""
    lines = ["calibration (estimate vs. actual):"]
    for record in records:
        rule = f" [{record.rule}]" if record.rule else ""
        row_error = record.row_error()
        rows = "?" if row_error is None else f"{row_error:.1f}×"
        lines.append(
            f"  {record.operator}{rule}: rows est≈{record.estimated_rows:.0f}"
            f" act={record.actual_rows} (err {rows});"
            f" cost est≈{record.estimated_cost:.0f}"
            f" act≈{record.actual_units:.0f} (err {record.cost_error():.1f}×)"
        )
    return "\n".join(lines)
