"""Rewrite rules (paper §4 "Why Split?", §5, and [31]).

Each rule is a local transformation on one expression node.  Rules come
in two flavors:

* **access-path rules** introduce physical operators when an index can
  serve part of a pattern or predicate — the split/index rewrite for
  trees, the position-anchor rewrite for lists, and the relational-style
  conjunct decomposition for extent selects;
* **algebraic rules** reshape logical plans (select fusion / cascade).

A rule returns the rewritten node or ``None`` when it does not apply;
the engine (:mod:`repro.optimizer.engine`) handles traversal, cost
gating and tracing.
"""

from __future__ import annotations

from ..predicates.alphabet import And
from ..query import expr as E
from ..storage.database import Database
from .anchors import (
    extent_conjunct_split,
    list_anchor_choice,
    tree_split_anchors,
)


class Rule:
    """Base class: a named local rewrite."""

    name = "rule"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


class SubSelectIndexRule(Rule):
    """``sub_select(tp)(T)`` → probe the root-predicate indexes (§4).

    Mirrors the paper's rewrite of ``sub_select(d(e(h i)j))(T)`` into
    ``apply(sub_select(⊤d(e(h i)j)))(split(d, reassemble)(T))``: every
    match is rooted at a node satisfying one of the pattern's root
    predicates, so probing those predicates' indexes yields a complete,
    typically tiny, candidate set.

    Applies when the pattern exposes usable root predicates — non-opaque,
    each with at least one equality term an index can serve.
    """

    name = "sub_select→indexed"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        del db
        if not isinstance(node, E.SubSelect):
            return None
        anchors = tree_split_anchors(node.pattern)
        if anchors is None:
            return None
        # The candidate-roots restriction plays the role of the paper's
        # ⊤-anchoring of the inner sub_select: the pattern itself stays
        # unanchored, but it is only tried at the probed roots.
        return E.IndexedSubSelect(node.input, pattern=node.pattern, anchors=anchors)


class SplitIndexRule(Rule):
    """``split(tp, f)(T)`` → index-probed candidate roots (§4).

    The paper's literal sentence: "the split operator uses the index on
    d to pick all the subtrees of T that are rooted at d."  Same anchor
    analysis as :class:`SubSelectIndexRule`.
    """

    name = "split→indexed"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        del db
        if not isinstance(node, E.Split):
            return None
        anchors = tree_split_anchors(node.pattern)
        if anchors is None:
            return None
        return E.IndexedSplit(
            node.input,
            pattern=node.pattern,
            function=node.function,
            anchors=anchors,
        )


class ListAnchorIndexRule(Rule):
    """``sub_select(lp)(L)`` → probe a position index on a required atom.

    Picks an atom of the pattern that every match must contain at a
    bounded offset from the match start (e.g. the leading ``A`` of
    ``[A??F]``), probes the list's position index for it, and restricts
    candidate start positions to ``position - offset``.  This is the
    list-flavored instance of the paper's decompose-and-index strategy.
    """

    name = "list_sub_select→indexed"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        del db
        if not isinstance(node, E.ListSubSelect):
            return None
        choice = list_anchor_choice(node.pattern)
        if choice is None:
            return None
        anchor, offsets = choice
        return E.IndexedListSubSelect(
            node.input, pattern=node.pattern, anchor=anchor, offsets=offsets
        )


class ConjunctDecompositionRule(Rule):
    """``select(p1 ∧ p2)(extent)`` → indexed conjunct + residual (§4).

    "In relational optimization, a select with a complex conjunctive
    predicate might be rewritten as an intersection of two or more
    selects, each containing a different conjunct ... some of which
    might be very cheap to process (e.g., by using an index)."
    """

    name = "conjunct-decomposition"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        if not isinstance(node, E.SetSelect):
            return None
        if not isinstance(node.input, E.Extent):
            return None
        split = extent_conjunct_split(node.predicate, node.input.name, db)
        if split is None:
            return None
        indexed, residual = split
        return E.IndexedSetSelect(node.input, indexed=indexed, residual=residual)


class SetSelectFusionRule(Rule):
    """``select(p1)(select(p2)(S))`` → ``select(p2 ∧ p1)(S)``.

    The inverse of decomposition; applied before access-path selection
    so the decomposition rule sees the whole conjunction at once.
    """

    name = "set-select-fusion"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        del db
        if not isinstance(node, E.SetSelect):
            return None
        if not isinstance(node.input, E.SetSelect):
            return None
        fused = And(node.input.predicate, node.predicate)
        return E.SetSelect(node.input.input, predicate=fused)


def paper_split_rewrite(node: E.SubSelect) -> E.Expr | None:
    """§4's rewrite, verbatim (for demonstration and equivalence tests):

    ``sub_select(tp)(T)`` ⇒
    ``apply(sub_select(⊤tp))(split(anchor, λ(x,y,z) y ∘α1..αn z)(T))``
    flattened into one result set.

    The production path uses the fused :class:`~repro.query.expr.
    IndexedSubSelect` instead — same plan shape with the split's
    reassembly and the per-piece sub_select collapsed into an index
    probe plus a roots-restricted match.  ``None`` when the pattern
    exposes no usable single root predicate.
    """
    from ..algebra.tree_ops import reassemble, sub_select as run_sub_select
    from ..patterns.tree_ast import TreeAtom, TreePattern

    anchors = node.pattern.root_predicates()
    if len(anchors) != 1 or anchors[0].opaque:
        return None
    anchor_pattern = TreePattern(TreeAtom(anchors[0], None))
    anchored = node.pattern.anchored()

    def rebuild(x, y, z):
        del x
        return reassemble(y, z)

    def per_subtree(subtree):
        return run_sub_select(anchored, subtree)

    split_node = E.Split(node.input, pattern=anchor_pattern, function=rebuild)
    applied = E.SetApply(split_node, function=per_subtree)
    return E.SetFlatten(applied)


#: The default rule pipeline, in the order the engine's regions run them.
DEFAULT_RULES: list[Rule] = [
    SetSelectFusionRule(),
    SubSelectIndexRule(),
    SplitIndexRule(),
    ListAnchorIndexRule(),
    ConjunctDecompositionRule(),
]
