"""Rewrite rules (paper §4 "Why Split?", §5, and [31]).

Each rule is a local *algebraic* transformation on one expression node:
it reshapes logical plans (select fusion / cascade) but never commits to
an access path.  Access-path choice — index anchors for tree and list
patterns, the relational-style conjunct decomposition for extent
selects — lives in the lowering pass (:mod:`repro.physical.lower` with
``choose_access_paths``, backed by :mod:`repro.optimizer.anchors`).

A rule returns the rewritten node or ``None`` when it does not apply;
the engine (:mod:`repro.optimizer.engine`) handles traversal, cost
gating and tracing.
"""

from __future__ import annotations

from ..predicates.alphabet import And
from ..query import expr as E
from ..storage.database import Database


class Rule:
    """Base class: a named local rewrite."""

    name = "rule"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Rule {self.name}>"


class SetSelectFusionRule(Rule):
    """``select(p1)(select(p2)(S))`` → ``select(p2 ∧ p1)(S)``.

    The inverse of decomposition; applied before access-path selection
    so the decomposition rule sees the whole conjunction at once.
    """

    name = "set-select-fusion"

    def apply(self, node: E.Expr, db: Database) -> E.Expr | None:
        del db
        if not isinstance(node, E.SetSelect):
            return None
        if not isinstance(node.input, E.SetSelect):
            return None
        fused = And(node.input.predicate, node.predicate)
        return E.SetSelect(node.input.input, predicate=fused)


def paper_split_rewrite(node: E.SubSelect) -> E.Expr | None:
    """§4's rewrite, verbatim (for demonstration and equivalence tests):

    ``sub_select(tp)(T)`` ⇒
    ``apply(sub_select(⊤tp))(split(anchor, λ(x,y,z) y ∘α1..αn z)(T))``
    flattened into one result set.

    The production path keeps the logical ``sub_select`` and lets the
    lowering pass fuse the same shape into an ``index_anchor_scan`` —
    the split's reassembly and the per-piece sub_select collapsed into
    an index probe plus a roots-restricted match.  ``None`` when the
    pattern exposes no usable single root predicate.
    """
    from ..algebra.tree_ops import reassemble, sub_select as run_sub_select
    from ..patterns.tree_ast import TreeAtom, TreePattern

    anchors = node.pattern.root_predicates()
    if len(anchors) != 1 or anchors[0].opaque:
        return None
    anchor_pattern = TreePattern(TreeAtom(anchors[0], None))
    anchored = node.pattern.anchored()

    def rebuild(x, y, z):
        del x
        return reassemble(y, z)

    def per_subtree(subtree):
        return run_sub_select(anchored, subtree)

    split_node = E.Split(node.input, pattern=anchor_pattern, function=rebuild)
    applied = E.SetApply(split_node, function=per_subtree)
    return E.SetFlatten(applied)


#: The default rule pipeline, in the order the engine's regions run them.
DEFAULT_RULES: list[Rule] = [
    SetSelectFusionRule(),
]
