"""The rewrite engine, EPOQ-flavored (paper §8, [22]).

AQUA feeds the EPOQ extensible optimizer, whose signature idea is
*regions*: groups of rules with their own control strategy, run in
sequence.  The reproduction keeps that architecture at laptop scale:

* a :class:`Region` owns a rule list and a strategy — ``"fixpoint"``
  (re-run until nothing changes) or ``"once"`` (single bottom-up pass);
* the :class:`Optimizer` runs its regions in order, *cost-gating* each
  rewrite with the :class:`~repro.optimizer.cost.CostModel` (a rewrite
  that the model prices worse than the original is rejected), and
  records a trace of applied rules for inspection and testing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AquaError, OptimizerError
from ..faults import fault_point
from ..query import expr as E
from ..storage import stats as stats_mod
from ..storage.database import Database
from .cost import CostModel
from .rules import DEFAULT_RULES, Rule


@dataclass
class Region:
    """A named group of rules with a control strategy."""

    name: str
    rules: list[Rule]
    strategy: str = "fixpoint"
    max_passes: int = 8

    def __post_init__(self) -> None:
        if self.strategy not in ("fixpoint", "once"):
            raise OptimizerError(f"unknown region strategy {self.strategy!r}")


@dataclass
class Trace:
    """Which rules fired where, plus the cost story."""

    steps: list[str] = field(default_factory=list)
    initial_cost: float = 0.0
    final_cost: float = 0.0

    def record(self, region: Region, rule: Rule, before: E.Expr, after: E.Expr) -> None:
        stats_mod.emit("optimizer_rewrites")
        self.steps.append(
            f"[{region.name}] {rule.name}: {before.describe()} => {after.describe()}"
        )

    def __repr__(self) -> str:
        lines = "\n".join(self.steps) or "(no rewrites)"
        return f"Trace(cost {self.initial_cost:.0f} -> {self.final_cost:.0f})\n{lines}"


def default_regions() -> list[Region]:
    """The standard pipeline: one algebraic fixpoint region.

    Access-path choice is no longer a rewrite region — it happens in the
    lowering pass (:mod:`repro.physical.lower` with
    ``choose_access_paths``), where index anchors, conjunct
    decomposition and columnar batch operators are picked per plan node.
    """
    return [Region("algebraic", list(DEFAULT_RULES), strategy="fixpoint")]


class Optimizer:
    """Rewrites logical plans into cheaper (often physical) plans."""

    def __init__(
        self,
        db: Database,
        regions: list[Region] | None = None,
        cost_gate: bool = True,
    ) -> None:
        self.db = db
        self.regions = regions if regions is not None else default_regions()
        self.cost_model = CostModel(db)
        self.cost_gate = cost_gate

    def optimize(self, expr: E.Expr) -> tuple[E.Expr, Trace]:
        """Optimize ``expr``; never raises for engine-internal failures.

        A rewrite probe that fails (an injected fault, a tripped budget
        during cost estimation, a buggy rule) must not take the query
        down: the failing *rule* is skipped, and if the pipeline itself
        fails, the original un-decomposed plan is returned — it is
        always a safe (if slower) execution strategy.
        """
        trace = Trace()
        try:
            return self._optimize(expr, trace)
        except AquaError as exc:
            trace.steps.append(
                f"[fallback] optimizer aborted ({exc}); keeping the logical plan"
            )
            trace.final_cost = trace.initial_cost
            return expr, trace

    def _optimize(self, expr: E.Expr, trace: Trace) -> tuple[E.Expr, Trace]:
        trace.initial_cost = self.cost_model.cost(expr)
        current = expr
        for region in self.regions:
            passes = 0
            while True:
                rewritten, changed = self._pass(current, region, trace)
                current = rewritten
                passes += 1
                if (
                    not changed
                    or region.strategy == "once"
                    or passes >= region.max_passes
                ):
                    break
        trace.final_cost = self.cost_model.cost(current)
        return current, trace

    def _pass(self, node: E.Expr, region: Region, trace: Trace) -> tuple[E.Expr, bool]:
        """One bottom-up rewrite pass over the expression tree."""
        changed = False
        new_children = []
        for child in node.children():
            rewritten, child_changed = self._pass(child, region, trace)
            new_children.append(rewritten)
            changed = changed or child_changed
        if changed:
            node = node.with_children(tuple(new_children))
        for rule in region.rules:
            try:
                fault_point("optimizer_rewrite")
                candidate = rule.apply(node, self.db)
                if candidate is None:
                    continue
                if self.cost_gate:
                    before_cost = self.cost_model.cost(node)
                    after_cost = self.cost_model.cost(candidate)
                    if after_cost > before_cost:
                        continue
            except AquaError as exc:
                # A failed rewrite probe is not a failed query: skip the
                # rule and keep the (safe) un-rewritten node.
                trace.steps.append(f"[{region.name}] {rule.name}: skipped ({exc})")
                continue
            trace.record(region, rule, node, candidate)
            return candidate, True
        return node, changed


def optimize(expr: E.Expr, db: Database) -> E.Expr:
    """One-call convenience: optimize with the default regions."""
    optimized, _ = Optimizer(db).optimize(expr)
    return optimized
