"""Access-path anchor analysis (paper §4 "Why Split?").

The split/index rewrites all hinge on the same question: *which cheap
predicate must every match satisfy, and can an index serve it?*  This
module holds that analysis in one place so the rewrite rules
(:mod:`repro.optimizer.rules`) and the logical→physical lowering pass
(:mod:`repro.physical.lower`) answer it identically — the ``Indexed*``
expression nodes are now just deprecated serializations of these
decisions, not where the decisions live.

* :func:`tree_split_anchors` — the root predicates of a tree pattern,
  when each is index-servable (the §4 "index on d" precondition);
* :func:`probe_anchor_roots` — the runtime half of the same decision:
  probe those anchors' node indexes for candidate match roots (shared
  verbatim by the eager interpreter and the streaming operators);
* :func:`list_anchor_choice` — a required atom of a list pattern at a
  bounded offset from the match start, plus the possible offsets;
* :func:`extent_conjunct_split` — the indexed/residual decomposition of
  a conjunctive extent-select predicate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from .. import params
from ..core.aqua_tree import AquaTree, TreeNode
from ..patterns.list_ast import Atom as ListAtom
from ..patterns.list_ast import Concat as ListConcat
from ..patterns.list_ast import ListPattern, ListPatternNode
from ..patterns.tree_ast import TreePattern
from ..predicates.alphabet import AlphabetPredicate, And, TruePredicate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..storage.database import Database
    from ..storage.stats import Instrumentation
    from ..storage.tree_index import TreeIndex


def _index_servable(predicate: AlphabetPredicate) -> bool:
    """Can a node index serve ``predicate`` via an equality term?

    Binding-aware for ``$param`` constants: an *unbound* param is
    presumed servable (the prepared plan records the assumption — see
    :class:`~repro.query.prepare.PreparedQuery` — and re-plans if a
    later binding breaks it), while a param currently bound to an
    unhashable value cannot be an index key and disqualifies the term.
    """
    if predicate.opaque:
        return False
    for _, op, constant in predicate.indexable_terms():
        if op != "=":
            continue
        constant, bound = params.try_resolve(constant)
        if bound and not params.is_bindable(constant):
            continue
        return True
    return False


def tree_split_anchors(pattern: TreePattern) -> tuple[AlphabetPredicate, ...] | None:
    """The pattern's usable root-predicate anchors, or ``None``.

    Every match of an unanchored pattern is rooted at a node satisfying
    one of the pattern's root predicates, so probing those predicates'
    indexes yields a complete candidate-root set.  Usable means: the
    pattern is not already pinned to the tree root, it exposes at least
    one root predicate, and each is non-opaque with an equality term an
    index can serve.
    """
    if pattern.root_anchor:
        return None  # already pinned to the tree root; nothing to gain
    anchors = pattern.root_predicates()
    if not anchors:
        return None
    for anchor in anchors:
        if not _index_servable(anchor):
            return None
    return tuple(anchors)


def tree_columnar_anchors(
    pattern: TreePattern,
) -> tuple[AlphabetPredicate, ...] | None:
    """The pattern's root predicates, when predicate columns can serve
    them all, or ``None``.

    The columnar analogue of :func:`tree_split_anchors`: the same
    complete-candidate-set argument (every match of an unanchored
    pattern roots at a node satisfying some root predicate), but the
    serving machinery is a batch bitset column per anchor rather than an
    equality-term index probe — so ordering comparisons and ``OR``
    combinations qualify too.  Trivially-true anchors (a bare ``?``)
    are rejected: their column selects every node, so filtering through
    it only adds work.
    """
    from ..storage.columnar import column_servable

    if pattern.root_anchor:
        return None  # already pinned to the tree root; nothing to gain
    anchors = pattern.root_predicates()
    if not anchors:
        return None
    for anchor in anchors:
        if isinstance(anchor, TruePredicate) or not column_servable(anchor):
            return None
    return tuple(anchors)


def list_columnar_choice(
    pattern: ListPattern,
) -> tuple[tuple[AlphabetPredicate, tuple[int, ...]], ...] | None:
    """Every column-servable required atom with bounded offsets, or ``None``.

    The columnar analogue of :func:`list_anchor_choice` — but where the
    position index probes *one* anchor (more would mean more probes),
    the shift-AND pass over predicate columns conjoins **all** of them
    at once: each extra ``(predicate, offsets)`` pair is a single
    bitwise AND, and every pair narrows the surviving starts.  Pairs
    with trivially-true predicates are skipped (their column is all
    ones); ``None`` when no usable pair remains.
    """
    from ..storage.columnar import column_servable

    body = pattern.body
    parts: Sequence[ListPatternNode]
    if isinstance(body, ListConcat):
        parts = body.parts
    else:
        parts = (body,)
    choices: list[tuple[AlphabetPredicate, tuple[int, ...]]] = []
    for index, part in enumerate(parts):
        if not isinstance(part, ListAtom):
            continue
        predicate = part.predicate
        if isinstance(predicate, TruePredicate) or not column_servable(predicate):
            continue
        offsets = anchor_offsets(parts, index)
        if offsets is None:
            continue
        choices.append((predicate, offsets))
    return tuple(choices) if choices else None


def probe_anchor_roots(
    db: "Database",
    tree: AquaTree,
    anchors: Iterable[AlphabetPredicate],
    stats: "Instrumentation | None" = None,
) -> "tuple[list[TreeNode] | None, TreeIndex]":
    """Index-probed candidate match roots: ``(roots, index)``.

    The runtime companion of :func:`tree_split_anchors`, shared by the
    eager interpreter and the streaming probing operators so both sides
    charge identical work.  ``roots`` is ``None`` when some anchor had
    no servable term — the caller should fall back to the full scan
    rather than probe twice.

    Candidate re-checks run through the tree index's predicate-outcome
    bitmap (:meth:`~repro.storage.tree_index.TreeIndex.predicate_outcome`),
    so an anchor is evaluated at most once per node across the probe,
    the matcher that follows, and any other operator of the query — the
    fix for the duplicated evaluation the fallback scans used to do.
    The index is returned so callers can hand that same bitmap to the
    match context they prime for the candidate stream.
    """
    attributes: set[str] = set()
    for anchor in anchors:
        attributes |= anchor.attributes()
    index = db.tree_index(tree, attributes)
    roots: dict[int, TreeNode] = {}
    fell_through = False
    for anchor in anchors:
        candidates, used = index.candidate_nodes(anchor, stats)
        if not used:
            fell_through = True
            break
        for candidate in candidates:
            if index.predicate_outcome(anchor, candidate, stats):
                roots[id(candidate)] = candidate
    if fell_through:
        return None, index
    # Document preorder via the index labels, so consumers can stream the
    # candidates without rebuilding an O(n) position map of their own.
    return index.preorder_sorted(list(roots.values())), index


def anchor_offsets(
    parts: Sequence[ListPatternNode], index: int
) -> tuple[int, ...] | None:
    """Possible distances from a match start to the ``index``-th part."""
    minimum = 0
    maximum = 0
    for part in parts[:index]:
        minimum += part.min_length()
        part_max = part.max_length()
        if part_max is None:
            return None
        maximum += part_max
    return tuple(range(minimum, maximum + 1))


def list_anchor_choice(
    pattern: ListPattern,
) -> tuple[AlphabetPredicate, tuple[int, ...]] | None:
    """A position-index anchor for a list pattern: ``(anchor, offsets)``.

    Picks the required atom with the fewest possible offsets from the
    match start (e.g. the leading ``A`` of ``[A??F]``), so probing the
    list's position index for it and subtracting the offsets yields the
    candidate start positions.  ``None`` when no atom qualifies.
    """
    body = pattern.body
    parts: Sequence[ListPatternNode]
    if isinstance(body, ListConcat):
        parts = body.parts
    else:
        parts = (body,)
    best: tuple[AlphabetPredicate, tuple[int, ...]] | None = None
    for index, part in enumerate(parts):
        if not isinstance(part, ListAtom):
            continue
        predicate = part.predicate
        if not _index_servable(predicate):
            continue
        offsets = anchor_offsets(parts, index)
        if offsets is None:
            continue
        if best is None or len(offsets) < len(best[1]):
            best = (predicate, offsets)
    return best


def extent_conjunct_split(
    predicate: AlphabetPredicate, extent: str, db: "Database"
) -> tuple[AlphabetPredicate, AlphabetPredicate | None] | None:
    """Split a conjunction into ``(indexed, residual)`` for ``extent``.

    The first conjunct with an attribute index on ``extent`` becomes the
    indexed predicate; the rest (conjoined) re-check the survivors.
    ``None`` when no conjunct is servable.
    """
    conjuncts = predicate.conjuncts()
    indexed: AlphabetPredicate | None = None
    residual: list[AlphabetPredicate] = []
    for conjunct in conjuncts:
        if indexed is None and not conjunct.opaque:
            servable = any(
                db.has_index(extent, attribute)
                for attribute, _, _ in conjunct.indexable_terms()
            )
            if servable:
                indexed = conjunct
                continue
        residual.append(conjunct)
    if indexed is None:
        return None
    residual_pred = (
        None
        if not residual
        else (residual[0] if len(residual) == 1 else And(*residual))
    )
    return indexed, residual_pred
