"""``python -m repro`` — a small interactive AQL shell.

Commands (backslash-prefixed) manage the session; anything else is an
AQL query (see :mod:`repro.query.aql`)::

    \\load FILE          load a database serialized with \\save
    \\save FILE          serialize the current database to FILE
    \\demo               load the built-in demo database
    \\doc FILE [ROOT]    ingest a JSON/XML/HTML document, bind it as ROOT
    \\roots              list named roots
    \\extents            list extents and sizes
    \\explain QUERY      show the optimization story for an AQL query
    \\analyze QUERY      run the query instrumented: estimated vs. actual
    \\noopt QUERY        run a query without the optimizer
    \\prepare QUERY      plan a query into the session's plan cache
    \\cache [clear]      show (or clear) plan-cache entries and counters
    \\stats              show instrumentation counters
    \\budget [K=V ...]   show or set execution limits (\\budget off clears)
    \\faults             show the active fault-injection plan
    \\help               this text
    \\quit               exit

The SQL-style verbs ``EXPLAIN QUERY`` and ``EXPLAIN ANALYZE QUERY`` work
too: the former is ``\\explain``, the latter runs the optimized plan
through the instrumented executor and prints each operator's estimated
vs. actual rows, cost units, per-operator time and counters.

Non-interactive usage: ``python -m repro -c 'root T | sub_select "d"'``
runs one query against the demo database (or ``--db FILE``) and prints
the result — handy for scripting and for the test suite.  A failed
one-shot command prints a one-line ``error:`` diagnostic and exits
nonzero.

Execution limits: the shell arms a :class:`~repro.guardrails.Budget`
(from the ``AQUA_*`` environment knobs, adjustable with ``\\budget``)
around every query, so a runaway pattern trips a structured
``ResourceExhaustedError`` instead of hanging the session.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from typing import Any

from . import faults, guardrails
from .api import Session
from .core import AquaList, AquaSet, AquaTree
from .errors import AquaError, ResourceExhaustedError
from .guardrails import Budget
from .query import (
    PlanCache,
    evaluate,
    explain_optimization,
    explain_physical,
    parse_aql,
    render_analysis,
    render_planning,
)
from .query.metrics import PlanMetrics
from .storage import Database
from .storage.serialize import dump_database, load_database
from .workloads import figure3_family_tree, figure5_parse_tree, song_with_melody

#: ``\budget`` accepts both the Budget field names and these short forms.
_BUDGET_ALIASES = {
    "deadline": "deadline_seconds",
    "steps": "max_steps",
    "depth": "max_backtrack_depth",
    "results": "max_results",
    "nodes": "max_nodes_scanned",
}


def demo_database() -> Database:
    """The database the examples use: family tree, song, parse tree."""
    db = Database()
    db.bind_root("family", figure3_family_tree())
    db.bind_root("song", song_with_melody(60, ["A", "C", "D", "F"], 2, seed=11))
    db.bind_root("plan", figure5_parse_tree())
    return db


def render(value: Any) -> str:
    """Human-friendly rendering of a query result."""
    if isinstance(value, AquaTree):
        return value.to_notation(_label)
    if isinstance(value, AquaList):
        return value.to_notation(_label)
    if isinstance(value, AquaSet):
        members = [render(v) for v in value]
        body = "\n".join(f"  {m}" for m in sorted(members))
        return f"{{{len(members)} result(s)}}\n{body}" if members else "{0 results}"
    return repr(value)


def _label(payload: Any) -> str:
    for attribute in ("name", "pitch", "OpName", "tag", "kind", "label"):
        value = getattr(payload, attribute, None)
        if value is not None:
            return str(value)
    return str(payload)


class Shell:
    def __init__(self, db: Database | None = None, budget: Budget | None = None) -> None:
        self.db = db or demo_database()
        self.budget = budget if budget is not None else Budget.from_env()
        self.plan_cache = PlanCache()
        self.last_error: Exception | None = None

    def session(self) -> Session:
        """A Session over the current database and the shell's cache."""
        return Session(self.db, plan_cache=self.plan_cache)

    def execute(self, line: str) -> str:
        """Run one shell line and return the printable response.

        Every :class:`~repro.errors.AquaError` — including a tripped
        budget or an injected fault — comes back as a one-line
        ``error:`` diagnostic; the session itself never dies.
        """
        line = line.strip()
        if not line:
            return ""
        self.last_error = None
        try:
            with guardrails.guarded(self.budget):
                if line.startswith("\\"):
                    return self._command(line[1:])
                upper = line.upper()
                if upper.startswith("EXPLAIN ANALYZE "):
                    return self._analyze(line[len("EXPLAIN ANALYZE "):])
                if upper.startswith("EXPLAIN "):
                    return self._command("explain " + line[len("EXPLAIN "):])
                return render(self.session().query(line))
        except AquaError as exc:
            self.last_error = exc
            return diagnose(exc)
        except FileNotFoundError as exc:
            self.last_error = exc
            return f"error: {exc}"

    def _command(self, text: str) -> str:
        name, _, argument = text.partition(" ")
        argument = argument.strip()
        if name == "help":
            return __doc__ or ""
        if name == "demo":
            self.db = demo_database()
            return "demo database loaded"
        if name == "doc":
            return self._doc(argument)
        if name == "roots":
            return "\n".join(self.db.roots()) or "(no roots)"
        if name == "extents":
            return (
                "\n".join(
                    f"{name}: {self.db.extent_size(name)}"
                    for name in self.db.extents()
                )
                or "(no extents)"
            )
        if name == "stats":
            snapshot = self.db.stats.snapshot()
            return (
                "\n".join(f"{k}: {v}" for k, v in sorted(snapshot.items()))
                or "(no counters)"
            )
        if name == "explain":
            return explain_optimization(parse_aql(argument), self.db)
        if name == "analyze":
            return self._analyze(argument)
        if name == "prepare":
            return self._prepare(argument)
        if name == "cache":
            return self._cache(argument)
        if name == "budget":
            return self._budget(argument)
        if name == "faults":
            plan = faults.active_plan()
            if plan is None:
                return "(no fault injection active)"
            report = plan.snapshot()
            lines = [f"seed: {report['seed']}"]
            for seam, rules in report["rules"].items():
                specs = ", ".join(
                    f"{rule['kind']} p={rule['probability']}"
                    + (f" value={rule['value']}" if rule["value"] else "")
                    for rule in rules
                )
                lines.append(
                    f"{seam}: {specs}  "
                    f"(hits={report['hits'].get(seam, 0)}, "
                    f"fired={report['fired'].get(seam, 0)})"
                )
            return "\n".join(lines)
        if name == "noopt":
            return render(evaluate(parse_aql(argument), self.db))
        if name == "save":
            with open(argument, "w") as handle:
                json.dump(dump_database(self.db), handle)
            return f"saved to {argument}"
        if name == "load":
            with open(argument) as handle:
                self.db = load_database(json.load(handle))
            return f"loaded {argument}"
        if name in ("quit", "exit"):
            raise SystemExit(0)
        return f"unknown command \\{name} (try \\help)"

    def _doc(self, argument: str) -> str:
        """``\\doc``: ingest a document file into the current database.

        The document's tree is bound as a named root (default ``doc``)
        and indexed over ``(tag, kind)``, so path queries against it are
        ordinary AQL: ``root doc | path "//article[@lang='en']//p"``.
        """
        from .docstore import load_document

        if not argument:
            return "error: \\doc needs a file (.json/.xml/.html), optionally a root name"
        parts = argument.split()
        if len(parts) > 2:
            return "error: \\doc takes a file and an optional root name"
        root = parts[1] if len(parts) > 1 else "doc"
        document = load_document(parts[0], name=root, db=self.db)
        return (
            f"loaded {parts[0]} as root {root!r}"
            f" ({document.format}, {document.tree.size()} nodes);"
            f' try: root {root} | path "//tag"'
        )

    def _budget(self, argument: str) -> str:
        """``\\budget``: show, set (``knob=value``), or clear limits."""
        if not argument:
            return f"budget: {self.budget.describe()}"
        if argument in ("off", "none"):
            self.budget = Budget()
            return "budget cleared (unlimited)"
        values: dict[str, Any] = {}
        valid = {f.name for f in dataclasses.fields(Budget)} - {"token"}
        for token in argument.split():
            knob, eq, raw = token.partition("=")
            knob = _BUDGET_ALIASES.get(knob, knob)
            if not eq or knob not in valid:
                options = ", ".join(sorted(valid | set(_BUDGET_ALIASES)))
                return f"error: \\budget expects knob=value pairs ({options}) or 'off'"
            if raw.lower() in ("none", "off"):
                values[knob] = None
                continue
            try:
                values[knob] = float(raw) if knob == "deadline_seconds" else int(raw)
            except ValueError:
                return f"error: {knob} needs a number, got {raw!r}"
        self.budget = dataclasses.replace(self.budget, **values)
        return f"budget: {self.budget.describe()}"

    def _analyze(self, query: str) -> str:
        """EXPLAIN ANALYZE: prepare (cached), run instrumented, render.

        The planning footer shows the plan-cache traffic this statement
        caused — a repeated query renders ``plan_cache_hits=1`` with zero
        rewrites and zero pattern compilations.  On a budget trip the
        partial metrics collected so far are still rendered, so the user
        sees *where* in the plan the limit hit.
        """
        from .storage.stats import Instrumentation

        planning = Instrumentation()
        with planning.activated():
            prepared = self.session().prepare(query)
        plan = prepared.plan
        footer = render_planning(planning)
        pipeline = (
            "Lowered pipeline:\n" + explain_physical(plan, self.db, indent=1)
        )
        metrics = PlanMetrics()
        try:
            _, metrics = prepared.run_with_metrics(metrics=metrics)
        except ResourceExhaustedError as exc:
            self.last_error = exc
            partial = exc.metrics if exc.metrics is not None else metrics
            return (
                f"{diagnose(exc)}\n"
                "-- partial plan metrics (execution stopped here) --\n"
                f"{render_analysis(plan, self.db, partial)}\n{footer}\n\n{pipeline}"
            )
        return f"{render_analysis(plan, self.db, metrics)}\n{footer}\n\n{pipeline}"

    def _prepare(self, query: str) -> str:
        """``\\prepare``: plan (or fetch) a query, reporting how it was served."""
        if not query:
            return "error: \\prepare needs an AQL query"
        before = self.plan_cache.hits
        prepared = self.session().prepare(query)
        served = (
            "served from plan cache"
            if self.plan_cache.hits > before
            else "planned and cached"
        )
        return f"{prepared!r}\n{served}"

    def _cache(self, argument: str) -> str:
        """``\\cache``: plan-cache counters; ``\\cache clear`` empties it."""
        if argument in ("clear",):
            self.plan_cache.clear()
            return "plan cache cleared"
        if argument:
            return "error: \\cache takes no argument (or 'clear')"
        snapshot = self.plan_cache.snapshot()
        return "\n".join(f"{k}: {v}" for k, v in snapshot.items())

    def repl(self) -> None:  # pragma: no cover - interactive loop
        print("AQUA shell — \\help for commands, \\quit to exit")
        while True:
            try:
                line = input("aqua> ")
            except (EOFError, KeyboardInterrupt):
                print()
                return
            try:
                response = self.execute(line)
            except KeyboardInterrupt:
                print("(interrupted)")
                continue
            if response:
                print(response)


def diagnose(exc: Exception) -> str:
    """One-line ``error:`` diagnostic for any engine failure."""
    message = " ".join(str(exc).split())
    if isinstance(exc, ResourceExhaustedError) and exc.operator is not None:
        message += f" [operator {exc.operator} at plan path {list(exc.plan_path or ())}]"
    return f"error: {message}"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("-c", "--command", help="run one AQL query and exit")
    parser.add_argument("--db", help="load this serialized database first")
    parser.add_argument("--explain", action="store_true", help="explain instead of run")
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="run instrumented and print estimated vs. actual per operator",
    )
    arguments = parser.parse_args(argv)

    db: Database | None = None
    if arguments.db:
        try:
            with open(arguments.db) as handle:
                db = load_database(json.load(handle))
        except (AquaError, OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot load {arguments.db}: {exc}", file=sys.stderr)
            return 1
    shell = Shell(db)

    if arguments.command:
        if arguments.analyze:
            print(shell.execute(f"\\analyze {arguments.command}"))
        elif arguments.explain:
            print(shell.execute(f"\\explain {arguments.command}"))
        else:
            print(shell.execute(arguments.command))
        return 1 if shell.last_error is not None else 0

    shell.repl()
    return 0


if __name__ == "__main__":
    sys.exit(main())
