"""Admission control: bounded queue depth and in-flight caps.

A thread pool with an unbounded submission queue converts overload into
unbounded latency — every shed-worthy request is accepted, queues for
seconds, and then executes against a deadline that already expired.
Admission control rejects excess load *at submission time* with a
structured :class:`~repro.errors.ServerOverloadedError` carrying the
queue statistics, so clients can back off (and the chaos benchmark can
count sheds).

Accounting model, all under one lock:

* ``queued``    — admitted requests a worker has not yet dequeued;
* ``in_flight`` — requests currently executing on a worker;
* ``max_queue_depth`` caps ``queued`` (``None`` = unbounded);
* ``max_in_flight`` caps ``queued + in_flight`` — total outstanding
  work — which is the knob that bounds end-to-end latency.

The controller is pure bookkeeping: the pool calls :meth:`admit` before
scheduling, and the worker wrapper brackets execution with
:meth:`begin` / :meth:`finish`.
"""

from __future__ import annotations

import threading

from ..errors import ServerOverloadedError


class AdmissionController:
    """Thread-safe queue-depth and in-flight bookkeeping for a pool."""

    def __init__(
        self,
        *,
        max_queue_depth: int | None = None,
        max_in_flight: int | None = None,
    ) -> None:
        if max_queue_depth is not None and max_queue_depth < 0:
            raise ValueError(
                f"max_queue_depth must be >= 0, got {max_queue_depth}"
            )
        if max_in_flight is not None and max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.max_queue_depth = max_queue_depth
        self.max_in_flight = max_in_flight
        self._lock = threading.Lock()
        self.queued = 0
        self.in_flight = 0
        self.admitted = 0
        self.shed = 0

    @property
    def unbounded(self) -> bool:
        return self.max_queue_depth is None and self.max_in_flight is None

    def _shed(self, reason: str) -> ServerOverloadedError:
        """Build the rejection (lock held) and count it."""
        self.shed += 1
        return ServerOverloadedError(
            f"server overloaded: {reason} "
            f"(queued={self.queued}, in_flight={self.in_flight})",
            queued=self.queued,
            in_flight=self.in_flight,
            max_queue_depth=self.max_queue_depth,
            max_in_flight=self.max_in_flight,
            shed=self.shed,
        )

    def admit(self) -> None:
        """Admit one request or raise :class:`ServerOverloadedError`."""
        with self._lock:
            if (
                self.max_in_flight is not None
                and self.queued + self.in_flight >= self.max_in_flight
            ):
                raise self._shed(
                    f"in-flight cap {self.max_in_flight} reached"
                )
            if (
                self.max_queue_depth is not None
                and self.queued >= self.max_queue_depth
            ):
                raise self._shed(
                    f"queue depth cap {self.max_queue_depth} reached"
                )
            self.queued += 1
            self.admitted += 1

    def begin(self) -> None:
        """A worker dequeued an admitted request and started executing."""
        with self._lock:
            self.queued -= 1
            self.in_flight += 1

    def finish(self) -> None:
        """The request finished (successfully or not)."""
        with self._lock:
            self.in_flight -= 1

    def release_unstarted(self) -> None:
        """An admitted request will never start (submit itself failed)."""
        with self._lock:
            self.queued -= 1

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "queued": self.queued,
                "in_flight": self.in_flight,
                "admitted": self.admitted,
                "shed": self.shed,
                "max_queue_depth": self.max_queue_depth,
                "max_in_flight": self.max_in_flight,
            }

    def __repr__(self) -> str:
        return (
            f"AdmissionController(queued={self.queued}, "
            f"in_flight={self.in_flight}, shed={self.shed})"
        )


__all__ = ["AdmissionController"]
