"""Fault-tolerant serving: retries, circuit breakers, admission control.

The resilience layer between :class:`~repro.api.SessionPool` and the
query engine.  The engine's own guarantees — pure reads over immutable
list/tree values, snapshot isolation, deterministic match order — make
every mechanism here *semantics-free*: a retried, degraded, re-pinned
read returns bit-identical results or a structured error, never a
different answer.

Modules:

* :mod:`~repro.serving.taxonomy` — transient vs permanent failures;
* :mod:`~repro.serving.retry` — :class:`RetryPolicy` (capped
  exponential backoff, seeded deterministic jitter, deadline carving)
  and the :func:`run_with_policy` loop;
* :mod:`~repro.serving.breaker` — per-seam :class:`CircuitBreaker` /
  :class:`BreakerBoard` (closed → open → half-open);
* :mod:`~repro.serving.admission` — :class:`AdmissionController`
  (bounded queue depth / in-flight caps, structured shedding);
* :mod:`~repro.serving.degrade` — the graceful-degradation ladder
  (plan-cache bypass → backtrack engine → eager executor →
  unoptimized plan);
* :mod:`~repro.serving.pool_stats` — :class:`PoolStats` observability.

See README "Fault-tolerant serving" for the user-facing story and
``benchmarks/bench_chaos_serving.py`` for the chaos gate.
"""

from .admission import AdmissionController
from .breaker import BreakerBoard, CircuitBreaker
from .degrade import DEFAULT_LADDER, DegradationLadder, DegradationStep
from .pool_stats import PoolStats
from .retry import RetryPolicy, run_with_policy
from .taxonomy import classify, failure_seam, is_transient, register_transient

__all__ = [
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "DegradationLadder",
    "DegradationStep",
    "PoolStats",
    "RetryPolicy",
    "run_with_policy",
    "classify",
    "failure_seam",
    "is_transient",
    "register_transient",
]
