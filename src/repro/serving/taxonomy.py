"""Error taxonomy for the serving layer: what is safe to retry?

The paper's semantics are what make this classification *sound*: reads
are pure functions over immutable list/tree values, and a re-executed
read against a pinned snapshot is bit-identical to the first attempt.
Retrying therefore cannot change any answer — the only question is
whether a retry can *help*, which is exactly the transient/permanent
split:

* **transient** — the engine hit an environmental hiccup that a fresh
  attempt (possibly against a freshly pinned snapshot) may dodge:

  - :class:`~repro.errors.InjectedFaultError` — a chaos-plan fault at a
    named seam; by construction the model of a flaky storage/index path;
  - :class:`~repro.errors.ResourceExhaustedError` whose ``limit_name``
    is ``deadline_seconds`` (wall-clock pressure, e.g. latency faults or
    a loaded box — more time may remain in the caller's overall budget)
    or ``injected`` (synthetic budget pressure from the fault plan);
  - :class:`~repro.errors.SnapshotPinError` — a snapshot-pin race with a
    writer; re-pinning succeeds once the commit lands.

* **permanent** — the query itself is at fault and will fail the same
  way every time: parse errors, type mismatches, malformed patterns,
  unknown roots, genuine budget exhaustion (``max_steps`` and friends
  measure *work*, which a retry repeats rather than avoids), an
  explicit cancellation, and anything that is not an engine error at
  all (a user updater raising ``RuntimeError``).

``register_transient()`` lets deployments extend the transient set with
their own backend exception types (e.g. a remote store's timeout class)
without patching this module.
"""

from __future__ import annotations

from ..errors import (
    InjectedFaultError,
    QueryCancelledError,
    ResourceExhaustedError,
    SnapshotPinError,
)

#: Classification labels returned by :func:`classify`.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: ``ResourceExhaustedError.limit_name`` values that signal time/fault
#: pressure rather than the query's own appetite for work.
TRANSIENT_LIMITS = frozenset({"deadline_seconds", "injected"})

#: Exception types that are transient wherever they appear.
_TRANSIENT_TYPES: tuple[type[BaseException], ...] = (
    InjectedFaultError,
    SnapshotPinError,
)

#: Deployment-registered extensions to the transient set.
_extra_transient: set[type[BaseException]] = set()


def register_transient(exc_type: type[BaseException]) -> None:
    """Teach the taxonomy that ``exc_type`` failures are retryable."""
    if not (isinstance(exc_type, type) and issubclass(exc_type, BaseException)):
        raise TypeError(f"expected an exception type, got {exc_type!r}")
    _extra_transient.add(exc_type)


def classify(exc: BaseException) -> str:
    """``TRANSIENT`` or ``PERMANENT`` for one failure instance."""
    if isinstance(exc, QueryCancelledError):
        # An explicit cancellation is a *decision*, never retried.
        return PERMANENT
    if isinstance(exc, _TRANSIENT_TYPES):
        return TRANSIENT
    if isinstance(exc, ResourceExhaustedError):
        return TRANSIENT if exc.limit_name in TRANSIENT_LIMITS else PERMANENT
    if _extra_transient and isinstance(exc, tuple(_extra_transient)):
        return TRANSIENT
    return PERMANENT


def is_transient(exc: BaseException) -> bool:
    return classify(exc) == TRANSIENT


def failure_seam(exc: BaseException) -> str:
    """The breaker key for one failure: the seam it fired at.

    Injected faults and budget trips both carry the engine seam they
    fired at (``storage_lookup``, ``index_probe``, ``matcher step``,
    ...); failures with no seam fall into one shared bucket so a storm
    of unclassified errors still trips *some* breaker.
    """
    seam = getattr(exc, "seam", "")
    return seam if seam else type(exc).__name__


__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "TRANSIENT_LIMITS",
    "classify",
    "is_transient",
    "failure_seam",
    "register_transient",
]
