"""Retry policy for reads: capped exponential backoff, seeded jitter.

The paper's read semantics make retries *free* of semantic risk: a read
is a pure function over immutable values, so re-executing it against a
pinned snapshot is bit-identical — the only costs are time and load.
:class:`RetryPolicy` manages both:

* **capped exponential backoff with seeded deterministic jitter** —
  the same discipline as :class:`~repro.faults.FaultPlan`: each request
  derives a ``random.Random`` from ``seed ^ crc32(key)``, so a given
  (policy, request-key) pair produces the *same* backoff sequence in
  every run.  Chaos runs are therefore reproducible end to end: the
  fault plan decides deterministically which hits fail, and the retry
  policy decides deterministically how the victims wait.
* **deadline carving** — every attempt's budget is carved out of the
  caller's overall :attr:`~repro.guardrails.Budget.deadline_seconds`
  via :meth:`Budget.carve`, and a backoff that would sleep past the
  overall deadline aborts the retry instead: a retried request can
  never outlive the budget its first attempt was given.
* **optional snapshot re-pin** (``repin=True``) — each retry re-pins a
  fresh snapshot, so snapshot-pin races and faults tied to one version
  cut are dodged rather than replayed.

:func:`run_with_policy` is the engine-agnostic retry loop the
:class:`~repro.api.SessionPool` drives: it owns classification
(:mod:`~repro.serving.taxonomy`), breaker bookkeeping
(:mod:`~repro.serving.breaker`), the degradation ladder
(:mod:`~repro.serving.degrade`) and stats, while the caller supplies a
``runner(step, attempt_budget)`` callable that performs one attempt.
"""

from __future__ import annotations

import random
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import CircuitOpenError
from ..guardrails import Budget
from .breaker import BreakerBoard
from .degrade import DEFAULT_LADDER, DegradationLadder, DegradationStep
from .pool_stats import PoolStats
from .taxonomy import failure_seam, is_transient

#: Patchable sleep, so tests can drive the loop without real waiting.
_sleep = time.sleep


@dataclass(frozen=True)
class RetryPolicy:
    """Read-retry configuration; immutable and shareable across threads.

    * ``max_attempts`` — total attempts including the first (1 disables
      retries while keeping the rest of the resilience machinery);
    * ``base_delay`` / ``multiplier`` / ``max_delay`` — the capped
      exponential: retry *n* (1-based) backs off
      ``min(base_delay * multiplier**(n-1), max_delay)`` seconds;
    * ``jitter`` — the fraction of each delay that is randomized
      (``0.5`` → uniformly in ``[0.5·d, d]``), drawn from the seeded
      per-request stream so runs are reproducible;
    * ``seed`` — the jitter seed, same discipline as ``AQUA_FAULT_SEED``;
    * ``repin`` — re-pin a fresh snapshot before each retry (only when
      the pool pinned the snapshot itself; an explicitly shared pin is
      never silently replaced);
    * ``degrade`` — walk the degradation ladder on retries.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 0
    repin: bool = True
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def rng(self, key: str) -> random.Random:
        """The seeded jitter stream for one request key."""
        return random.Random(self.seed ^ zlib.crc32(key.encode()))

    def backoff(self, retry_number: int, rng: random.Random) -> float:
        """Delay before the ``retry_number``-th retry (1-based).

        Always draws from ``rng`` (even with ``jitter=0``) so the random
        sequence is a function of the retry number alone — the same
        determinism discipline as :meth:`FaultPlan.check`.
        """
        draw = rng.random()
        capped = min(
            self.base_delay * self.multiplier ** (retry_number - 1),
            self.max_delay,
        )
        if self.jitter <= 0.0:
            return capped
        return capped * (1.0 - self.jitter * draw)

    def schedule(self, key: str) -> list[float]:
        """The full deterministic backoff sequence for ``key``."""
        rng = self.rng(key)
        return [
            self.backoff(retry_number, rng)
            for retry_number in range(1, self.max_attempts)
        ]


def run_with_policy(
    runner: Callable[[DegradationStep | None, Budget | None], Any],
    *,
    policy: RetryPolicy,
    key: str = "",
    budget: Budget | None = None,
    breakers: BreakerBoard | None = None,
    ladder: DegradationLadder | None = DEFAULT_LADDER,
    stats: PoolStats | None = None,
    repin: Callable[[], None] | None = None,
    clock: Callable[[], float] = time.perf_counter,
) -> Any:
    """Run ``runner`` under ``policy``; the serving layer's retry loop.

    ``runner(step, attempt_budget)`` performs one attempt: ``step`` is
    the degradation rung to apply (``None`` on the first attempt), and
    ``attempt_budget`` is the caller's budget with the deadline carved
    down to what remains.  Failures are classified; permanent ones
    raise immediately, transient ones consult the seam's breaker, back
    off (deterministic seeded jitter, carved against the deadline) and
    go again.  On eventual success every seam that failed along the way
    is credited with a breaker success (closing a half-open breaker).
    """
    started = clock()
    deadline = (
        started + budget.deadline_seconds
        if budget is not None and budget.deadline_seconds is not None
        else None
    )
    rng = policy.rng(key)
    failed_seams: list[str] = []
    attempt = 0
    while True:
        attempt += 1
        if stats is not None:
            stats.note_attempt()
        step: DegradationStep | None = None
        if policy.degrade and ladder is not None and attempt > 1:
            step = ladder.step_for(attempt - 2)
            if step is not None and stats is not None:
                stats.note_degraded(step.name)
        attempt_budget = (
            budget.carve(clock() - started) if budget is not None else None
        )
        try:
            result = runner(step, attempt_budget)
        except Exception as exc:
            if not is_transient(exc):
                if stats is not None:
                    stats.note_failure_kind("failed_permanent")
                raise
            seam = failure_seam(exc)
            breaker = breakers.breaker(seam) if breakers is not None else None
            if breaker is not None:
                breaker.record_failure()
                failed_seams.append(seam)
            if attempt >= policy.max_attempts:
                if stats is not None:
                    stats.note_failure_kind("retries_exhausted")
                raise
            if breaker is not None and not breaker.allow():
                # The seam's breaker is open: shed fast instead of
                # burning the remaining retry schedule against it.
                if stats is not None:
                    stats.note_failure_kind("breaker_short_circuits")
                raise CircuitOpenError(seam) from exc
            delay = policy.backoff(attempt, rng)
            if deadline is not None and clock() + delay >= deadline:
                # No deadline budget left to sleep *and* re-run: give
                # the caller the real failure, not a timeout-in-waiting.
                if stats is not None:
                    stats.note_failure_kind("retries_exhausted")
                raise
            if stats is not None:
                stats.note_retry(delay)
            if delay > 0:
                _sleep(delay)
            if policy.repin and repin is not None:
                repin()
                if stats is not None:
                    stats.note_repin()
        else:
            if breakers is not None:
                # Seams that failed earlier in this request recovered:
                # reset their failure streaks / close half-open probes.
                for seam in dict.fromkeys(failed_seams):
                    breakers.breaker(seam).record_success()
            return result


__all__ = ["RetryPolicy", "run_with_policy"]
