"""PoolStats: observability for the fault-tolerant serving layer.

One bag per :class:`~repro.api.SessionPool`, answering the operational
questions the chaos benchmark (and CI) gate on: how many requests were
admitted vs shed, how many attempts the retry policy spent per request
(*retry amplification*), how much wall time went to backoff, which
breakers moved, how far the degradation ladder was walked, and what the
request latency distribution looks like.

Counters ride on :class:`~repro.storage.stats.Instrumentation` — the
same thread-safe bag the engine uses — so per-worker stats merge with
``Instrumentation.merge()`` and render with the familiar machinery.
Latencies and backoff time are floats and live beside the counter bag
under their own lock, with a bounded reservoir so a long-lived pool
cannot grow without bound.
"""

from __future__ import annotations

import math
import threading

from ..storage.stats import Instrumentation

#: Counter names always present in a snapshot (zero-filled), so JSON
#: consumers can rely on the keys existing.
CANONICAL_COUNTERS = (
    "submitted",
    "admitted",
    "shed_overload",
    "completed",
    "failed",
    "failed_permanent",
    "retries_exhausted",
    "breaker_short_circuits",
    "attempts",
    "retries",
    "repins",
    "degraded_attempts",
    "breaker_transitions",
    "breaker_to_open",
    "breaker_to_half_open",
    "breaker_to_closed",
)

#: Latency percentiles reported by :meth:`PoolStats.snapshot`.
PERCENTILES = (0.50, 0.90, 0.99)


def _percentile(ordered: list[float], quantile: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not ordered:
        return 0.0
    rank = max(math.ceil(quantile * len(ordered)), 1)
    return ordered[rank - 1]


class PoolStats:
    """Thread-safe serving-layer counters + latency reservoir."""

    def __init__(self, *, latency_reservoir: int = 8192) -> None:
        if latency_reservoir < 1:
            raise ValueError(
                f"latency_reservoir must be >= 1, got {latency_reservoir}"
            )
        self.counters = Instrumentation()
        self._lock = threading.Lock()
        self._latencies: list[float] = []
        self._latency_reservoir = latency_reservoir
        self._latency_dropped = 0
        self._backoff_seconds = 0.0

    # -- recording hooks (called by the pool / retry loop) ------------------

    def note_submitted(self) -> None:
        self.counters.bump("submitted")

    def note_admitted(self) -> None:
        self.counters.bump("admitted")

    def note_shed(self) -> None:
        self.counters.bump("shed_overload")

    def note_attempt(self) -> None:
        self.counters.bump("attempts")

    def note_degraded(self, step_name: str) -> None:
        self.counters.bump("degraded_attempts")
        self.counters.bump(f"degraded_{step_name.replace('-', '_')}")

    def note_repin(self) -> None:
        self.counters.bump("repins")

    def note_retry(self, backoff_seconds: float) -> None:
        self.counters.bump("retries")
        with self._lock:
            self._backoff_seconds += backoff_seconds

    def note_failure_kind(self, kind: str) -> None:
        """``failed_permanent`` | ``retries_exhausted`` |
        ``breaker_short_circuits`` — which way the request died."""
        self.counters.bump(kind)

    def note_success(self, latency_seconds: float) -> None:
        self.counters.bump("completed")
        self._record_latency(latency_seconds)

    def note_failed(self, latency_seconds: float) -> None:
        self.counters.bump("failed")
        self._record_latency(latency_seconds)

    def note_breaker_transition(self, key: str, old: str, new: str) -> None:
        """The :class:`~repro.serving.breaker.BreakerBoard` observer."""
        self.counters.bump("breaker_transitions")
        self.counters.bump(f"breaker_to_{new}")

    def _record_latency(self, latency_seconds: float) -> None:
        with self._lock:
            if len(self._latencies) < self._latency_reservoir:
                self._latencies.append(latency_seconds)
            else:
                self._latency_dropped += 1

    # -- derived views -------------------------------------------------------

    def amplification(self) -> float:
        """Attempts per admitted request (1.0 = no retries at all)."""
        admitted = self.counters["admitted"]
        if not admitted:
            return 0.0
        return self.counters["attempts"] / admitted

    def availability(self) -> float:
        """Completed requests over finished requests (completed+failed)."""
        finished = self.counters["completed"] + self.counters["failed"]
        if not finished:
            return 1.0
        return self.counters["completed"] / finished

    def merge(self, other: "PoolStats") -> None:
        """Fold another pool's stats into this one (harness aggregation).

        Counters fold through :meth:`Instrumentation.merge`; the latency
        reservoir absorbs the other sample up to its own bound and the
        backoff totals add.
        """
        self.counters.merge(other.counters)
        with other._lock:
            latencies = list(other._latencies)
            backoff = other._backoff_seconds
            dropped = other._latency_dropped
        with self._lock:
            room = self._latency_reservoir - len(self._latencies)
            self._latencies.extend(latencies[:room])
            self._latency_dropped += dropped + max(len(latencies) - room, 0)
            self._backoff_seconds += backoff

    def snapshot(self) -> dict:
        """JSON-ready report: counters, backoff, latency percentiles."""
        counts = self.counters.snapshot()
        for name in CANONICAL_COUNTERS:
            counts.setdefault(name, 0)
        with self._lock:
            ordered = sorted(self._latencies)
            backoff = self._backoff_seconds
            dropped = self._latency_dropped
        latency = {
            "count": len(ordered) + dropped,
            "max_ms": round(ordered[-1] * 1e3, 3) if ordered else 0.0,
        }
        for quantile in PERCENTILES:
            key = f"p{int(quantile * 100)}_ms"
            latency[key] = round(_percentile(ordered, quantile) * 1e3, 3)
        counts["backoff_seconds"] = round(backoff, 6)
        counts["latency"] = latency
        counts["retry_amplification"] = round(self.amplification(), 3)
        counts["availability"] = round(self.availability(), 5)
        return counts

    def __repr__(self) -> str:
        return (
            f"PoolStats(attempts={self.counters['attempts']}, "
            f"retries={self.counters['retries']}, "
            f"shed={self.counters['shed_overload']})"
        )


__all__ = ["PoolStats", "CANONICAL_COUNTERS"]
