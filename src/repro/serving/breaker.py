"""Circuit breakers: shed persistently failing seams fast.

A retry policy turns *occasional* faults into successes; against a
*persistently* failing resource it only multiplies the damage — every
request burns its full retry schedule against a storage path that is
down.  A :class:`CircuitBreaker` is the standard three-state remedy:

* **closed** — normal operation; consecutive failures are counted and
  a success resets the count;
* **open** — ``failure_threshold`` consecutive failures tripped the
  breaker; every ``allow()`` answers ``False`` (callers fail fast,
  spending no retry budget) until ``reset_timeout`` seconds pass;
* **half-open** — after the cooldown, up to ``half_open_probes``
  trial requests are allowed through; one success closes the breaker,
  one failure re-opens it (and restarts the cooldown).

Breakers are keyed per *seam/resource* — the engine seam carried by the
failure (``storage_lookup``, ``index_probe``, ...) — and live in a
:class:`BreakerBoard`, which creates them lazily with shared settings
and reports every state transition to an observer (the pool's
:class:`~repro.serving.pool_stats.PoolStats`).

Both classes are thread-safe; the clock is injectable so the state
machine is unit-testable without sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: ``on_transition(key, old_state, new_state)``.
TransitionObserver = Callable[[str, str, str], None]


class CircuitBreaker:
    """One breaker: closed → open → half-open state machine."""

    def __init__(
        self,
        name: str = "",
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: TransitionObserver | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0, got {reset_timeout}")
        if half_open_probes < 1:
            raise ValueError(
                f"half_open_probes must be >= 1, got {half_open_probes}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_granted = 0

    # -- state machine ------------------------------------------------------

    def _transition(self, new_state: str) -> None:
        """Move to ``new_state`` (lock held), notifying the observer."""
        old_state = self._state
        if old_state == new_state:
            return
        self._state = new_state
        if new_state == OPEN:
            self._opened_at = self._clock()
        if new_state == HALF_OPEN:
            self._probes_granted = 0
        if new_state == CLOSED:
            self._consecutive_failures = 0
        observer = self._on_transition
        if observer is not None:
            observer(self.name, old_state, new_state)

    def allow(self) -> bool:
        """May a request (or a retry) proceed against this resource?

        In the open state the cooldown is checked here — the first
        ``allow()`` after ``reset_timeout`` moves the breaker to
        half-open and grants a probe slot.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if self._clock() - self._opened_at < self.reset_timeout:
                    return False
                self._transition(HALF_OPEN)
            # half-open: grant up to half_open_probes trial slots.
            if self._probes_granted < self.half_open_probes:
                self._probes_granted += 1
                return True
            return False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: back to open, cooldown restarts.
                self._transition(OPEN)
            elif (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition(OPEN)

    def record_success(self) -> None:
        with self._lock:
            if self._state == HALF_OPEN:
                self._transition(CLOSED)
            else:
                self._consecutive_failures = 0

    # -- reporting ----------------------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout": self.reset_timeout,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state}, "
            f"threshold={self.failure_threshold})"
        )


class BreakerBoard:
    """Lazily created per-key breakers with shared settings.

    One board per :class:`~repro.api.SessionPool`; keys are failure
    seams (see :func:`~repro.serving.taxonomy.failure_seam`).  The
    board's ``on_transition`` observer receives every state change of
    every breaker it owns — the pool routes this into its
    :class:`~repro.serving.pool_stats.PoolStats`.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: TransitionObserver | None = None,
    ) -> None:
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}

    def observe(self, observer: TransitionObserver | None) -> None:
        """Install the transition observer (also on existing breakers)."""
        with self._lock:
            self._on_transition = observer
            for breaker in self._breakers.values():
                breaker._on_transition = observer

    def breaker(self, key: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = self._breakers[key] = CircuitBreaker(
                    key,
                    failure_threshold=self.failure_threshold,
                    reset_timeout=self.reset_timeout,
                    half_open_probes=self.half_open_probes,
                    clock=self._clock,
                    on_transition=self._on_transition,
                )
            return breaker

    def snapshot(self) -> dict[str, dict]:
        """Per-key breaker states (JSON-ready)."""
        with self._lock:
            breakers = dict(self._breakers)
        return {key: breaker.snapshot() for key, breaker in sorted(breakers.items())}

    def __repr__(self) -> str:
        states = {key: entry["state"] for key, entry in self.snapshot().items()}
        return f"BreakerBoard({states})"


__all__ = [
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
    "BreakerBoard",
]
