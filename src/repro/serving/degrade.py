"""Graceful degradation: step down engine knobs on retry.

Every rung of this ladder trades performance for robustness *without
changing any answer* — the engine's own property suites guarantee that
streaming ≡ eager, memo ≡ backtrack, optimized ≡ unoptimized, and that
a cache-bypassed prepare plans the same semantics from scratch.  That
is what makes the ladder safe to walk blindly on retry: a fault that
happened to live in a cached plan, the memo tables, the streaming
pipeline, or an optimizer-chosen index path is dodged by the next rung,
and a fault that lives in the data path itself simply fails again and
escalates.

The default ladder, in order (each rung keeps the previous rungs'
downgrades):

1. **bypass-plan-cache** — re-plan from scratch, ignoring the shared
   plan cache (a poisoned/stale entry, or a fault during the cached
   plan's index probes, no longer matters; the fresh plan also re-runs
   anchor analysis against the *current* snapshot);
2. **backtrack-engine** — drop the memoized tree engine for the plain
   backtracker (no memo tables, no predicate bitmaps);
3. **eager-executor** — drop the streaming operator pipeline for the
   eager interpreter (no generator plumbing, simplest execution path);
4. **unoptimized-plan** — run the logical plan exactly as written (no
   optimizer rewrites, no index access paths: the full-scan shape
   touches the fewest distinct storage seams).

Rungs are selected by retry index and clamp at the last rung, so a
policy with more attempts than rungs keeps retrying fully degraded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class DegradationStep:
    """Knob overrides one rung applies to a retry attempt.

    ``None`` means "leave the caller's choice alone"; a value overrides
    it for the degraded attempt only.  ``bypass_cache`` routes the
    attempt's planning around the shared plan cache (degraded plans are
    never cached — the next healthy request must not inherit them).
    """

    name: str
    executor: str | None = None
    engine: str | None = None
    optimize: bool | None = None
    bypass_cache: bool = False


class DegradationLadder:
    """An ordered sequence of :class:`DegradationStep` rungs."""

    def __init__(self, steps: Sequence[DegradationStep]) -> None:
        self.steps = tuple(steps)

    def step_for(self, retry_index: int) -> DegradationStep | None:
        """The rung for the ``retry_index``-th retry (0-based).

        Clamps to the last rung; returns ``None`` for a negative index
        (the first attempt) or an empty ladder.
        """
        if retry_index < 0 or not self.steps:
            return None
        return self.steps[min(retry_index, len(self.steps) - 1)]

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        return f"DegradationLadder({[step.name for step in self.steps]})"


#: The default ladder documented above.
DEFAULT_LADDER = DegradationLadder(
    [
        DegradationStep("bypass-plan-cache", bypass_cache=True),
        DegradationStep(
            "backtrack-engine", bypass_cache=True, engine="backtrack"
        ),
        DegradationStep(
            "eager-executor",
            bypass_cache=True,
            engine="backtrack",
            executor="eager",
        ),
        DegradationStep(
            "unoptimized-plan",
            bypass_cache=True,
            engine="backtrack",
            executor="eager",
            optimize=False,
        ),
    ]
)


__all__ = ["DegradationStep", "DegradationLadder", "DEFAULT_LADDER"]
