"""repro — a reproduction of the AQUA list/tree query algebra (ICDE 1995).

The public API re-exports the pieces a downstream user needs most:

* the bulk types (:class:`AquaList`, :class:`AquaTree`, :class:`AquaSet`,
  :class:`AquaMultiset`, :class:`AquaTuple`, :class:`AquaGraph`) and the
  notation parsers,
* the predicate DSL (:func:`attr`, :func:`sym`, :data:`ANY`),
* the pattern parsers (:func:`list_pattern`, :func:`tree_pattern`),
* the algebra operators (``select``, ``apply_tree``, ``sub_select``,
  ``all_anc``, ``all_desc``, ``split`` for trees; ``*_list`` for lists),
* the storage substrate (:class:`Database`), the optimizer entry point
  (:func:`optimize`), the evaluator (:func:`evaluate`), the fluent
  builder (:class:`Q`) and the AQL text language (:func:`run_aql`),
* the session API (:class:`Session`): resolved execution knobs, prepared
  queries (:func:`prepare`, :class:`PreparedQuery`), the plan cache
  (:class:`PlanCache`) and ``$name`` parameters (:class:`Param`),
* the fault-tolerant serving layer (:class:`SessionPool` plus
  :class:`RetryPolicy`, :class:`BreakerBoard`, :class:`PoolStats` and
  the degradation ladder from :mod:`repro.serving`).

See README.md for a guided tour and DESIGN.md for the paper-to-module map.
"""

from .algebra import (
    all_anc,
    all_anc_list,
    all_desc,
    all_desc_list,
    apply_list,
    apply_tree,
    select,
    select_list,
    split,
    split_list,
    split_pieces,
    sub_select,
    sub_select_approx,
    sub_select_list,
    tree_edit_distance,
)
from .core import (
    ALPHA,
    NIL,
    AquaGraph,
    AquaList,
    AquaMultiset,
    AquaSet,
    AquaTree,
    AquaTuple,
    Cell,
    ConcatPoint,
    Record,
    alpha,
    deref,
    format_list,
    format_tree,
    make_tuple,
    parse_list,
    parse_tree,
    tree,
)
from .api import Session, SessionPool, default_session
from .optimizer import Optimizer, optimize
from .serving import (
    DEFAULT_LADDER,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    DegradationLadder,
    PoolStats,
    RetryPolicy,
)
from .params import Param
from .patterns import list_pattern, tree_pattern
from .predicates import ANY, attr, parse_predicate, pred, sym
from .query import (
    PlanCache,
    PreparedQuery,
    Q,
    evaluate,
    explain,
    explain_optimization,
    parse_aql,
    prepare,
    run_aql,
)
from .storage import Database

__version__ = "1.0.0"

__all__ = [
    "ALPHA",
    "ANY",
    "AdmissionController",
    "AquaGraph",
    "AquaList",
    "AquaMultiset",
    "AquaSet",
    "AquaTree",
    "AquaTuple",
    "BreakerBoard",
    "Cell",
    "CircuitBreaker",
    "ConcatPoint",
    "DEFAULT_LADDER",
    "Database",
    "DegradationLadder",
    "NIL",
    "Optimizer",
    "Param",
    "PlanCache",
    "PoolStats",
    "PreparedQuery",
    "Q",
    "Record",
    "RetryPolicy",
    "Session",
    "SessionPool",
    "all_anc",
    "all_anc_list",
    "all_desc",
    "all_desc_list",
    "alpha",
    "apply_list",
    "apply_tree",
    "attr",
    "default_session",
    "deref",
    "evaluate",
    "explain",
    "explain_optimization",
    "format_list",
    "format_tree",
    "list_pattern",
    "make_tuple",
    "optimize",
    "parse_aql",
    "parse_list",
    "parse_predicate",
    "parse_tree",
    "pred",
    "prepare",
    "run_aql",
    "select",
    "select_list",
    "split",
    "split_list",
    "split_pieces",
    "sub_select",
    "sub_select_approx",
    "sub_select_list",
    "sym",
    "tree",
    "tree_edit_distance",
    "tree_pattern",
    "__version__",
]
