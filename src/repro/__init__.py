"""repro — a reproduction of the AQUA list/tree query algebra (ICDE 1995).

The public API re-exports the pieces a downstream user needs most:

* the bulk types (:class:`AquaList`, :class:`AquaTree`, :class:`AquaSet`,
  :class:`AquaMultiset`, :class:`AquaTuple`, :class:`AquaGraph`) and the
  notation parsers,
* the predicate DSL (:func:`attr`, :func:`sym`, :data:`ANY`),
* the pattern parsers (:func:`list_pattern`, :func:`tree_pattern`),
* the algebra operators (``select``, ``apply_tree``, ``sub_select``,
  ``all_anc``, ``all_desc``, ``split`` for trees; ``*_list`` for lists),
* the storage substrate (:class:`Database`), the optimizer entry point
  (:func:`optimize`), the evaluator (:func:`evaluate`), the fluent
  builder (:class:`Q`) and the AQL text language (:func:`run_aql`),
* the session API (:class:`Session`): resolved execution knobs, prepared
  queries (:func:`prepare`, :class:`PreparedQuery`), the plan cache
  (:class:`PlanCache`) and ``$name`` parameters (:class:`Param`),
* the fault-tolerant serving layer (:class:`SessionPool` plus
  :class:`RetryPolicy`, :class:`BreakerBoard`, :class:`PoolStats` and
  the degradation ladder from :mod:`repro.serving`),
* the document store (:class:`Document`, :class:`DocNode`,
  ``from_json/xml/html`` ingestion, ``to_json/xml/html`` round-trip
  serialization, and the ``//a[@x='v']//b`` path-query frontend that
  compiles to the stock algebra).

``__all__`` below is the canonical public surface, grouped to mirror
the README's "Public API" table; ``tests/test_public_api.py`` asserts
the two stay in sync.

See README.md for a guided tour and DESIGN.md for the paper-to-module map.
"""

from .algebra import (
    all_anc,
    all_anc_list,
    all_desc,
    all_desc_list,
    apply_list,
    apply_tree,
    select,
    select_list,
    split,
    split_list,
    split_pieces,
    sub_select,
    sub_select_approx,
    sub_select_list,
    tree_edit_distance,
)
from .core import (
    ALPHA,
    NIL,
    AquaGraph,
    AquaList,
    AquaMultiset,
    AquaSet,
    AquaTree,
    AquaTuple,
    Cell,
    ConcatPoint,
    Record,
    alpha,
    deref,
    format_list,
    format_tree,
    make_tuple,
    parse_list,
    parse_tree,
    tree,
)
from .api import Session, SessionPool, default_session
from .optimizer import Optimizer, optimize
from .serving import (
    DEFAULT_LADDER,
    AdmissionController,
    BreakerBoard,
    CircuitBreaker,
    DegradationLadder,
    PoolStats,
    RetryPolicy,
)
from .params import Param
from .patterns import list_pattern, tree_pattern
from .predicates import ANY, attr, parse_predicate, pred, sym
from .query import (
    PlanCache,
    PreparedQuery,
    Q,
    evaluate,
    explain,
    explain_optimization,
    parse_aql,
    prepare,
    run_aql,
)
from .storage import Database
from .docstore import (
    DocNode,
    Document,
    compile_path,
    from_html,
    from_json,
    from_xml,
    load_document,
    parse_path,
    to_html,
    to_json,
    to_xml,
)

__version__ = "1.0.0"

#: The canonical public surface, grouped to mirror the README's
#: "Public API" table (tests/test_public_api.py keeps them in sync).
__all__ = [
    # -- bulk types & notation --
    "ALPHA",
    "AquaGraph",
    "AquaList",
    "AquaMultiset",
    "AquaSet",
    "AquaTree",
    "AquaTuple",
    "Cell",
    "ConcatPoint",
    "NIL",
    "Record",
    "alpha",
    "deref",
    "format_list",
    "format_tree",
    "make_tuple",
    "parse_list",
    "parse_tree",
    "tree",
    # -- predicates & patterns --
    "ANY",
    "attr",
    "list_pattern",
    "parse_predicate",
    "pred",
    "sym",
    "tree_pattern",
    # -- algebra operators --
    "all_anc",
    "all_anc_list",
    "all_desc",
    "all_desc_list",
    "apply_list",
    "apply_tree",
    "select",
    "select_list",
    "split",
    "split_list",
    "split_pieces",
    "sub_select",
    "sub_select_approx",
    "sub_select_list",
    "tree_edit_distance",
    # -- storage, optimizer & query layer --
    "Database",
    "Optimizer",
    "Q",
    "evaluate",
    "explain",
    "explain_optimization",
    "optimize",
    "parse_aql",
    "run_aql",
    # -- sessions, prepared queries & serving --
    "AdmissionController",
    "BreakerBoard",
    "CircuitBreaker",
    "DEFAULT_LADDER",
    "DegradationLadder",
    "Param",
    "PlanCache",
    "PoolStats",
    "PreparedQuery",
    "RetryPolicy",
    "Session",
    "SessionPool",
    "default_session",
    "prepare",
    # -- document store --
    "DocNode",
    "Document",
    "compile_path",
    "from_html",
    "from_json",
    "from_xml",
    "load_document",
    "parse_path",
    "to_html",
    "to_json",
    "to_xml",
    # -- meta --
    "__version__",
]
