"""Text parser for alphabet-predicates.

Accepts the paper's lambda style and a bare comparison style:

* ``lambda(p) p.citizen = "Brazil"``
* ``p.age > 25 and p.citizen = "USA"``
* ``pitch = "A"``
* ``not (age <= 25 or citizen != "Brazil")``

Grammar (precedence low→high: ``or``, ``and``, ``not``, comparison)::

    predicate  := [ 'lambda' '(' IDENT ')' ] or_expr
    or_expr    := and_expr ( 'or' and_expr )*
    and_expr   := not_expr ( 'and' not_expr )*
    not_expr   := 'not' not_expr | '(' or_expr ')' | comparison
    comparison := ref OP literal
    ref        := IDENT [ '.' IDENT ]          -- "p.age" or "age"
    literal    := NUMBER | STRING | true | false | PARAM  -- "$name"

Comparing the lambda variable itself (``p = "a"``) produces a
:class:`~repro.predicates.alphabet.SymbolEquals`, matching the payload
directly — handy for the figure-style single-letter trees.
"""

from __future__ import annotations

import re
from typing import Any

from ..errors import PredicateError
from ..params import Param
from .alphabet import (
    AlphabetPredicate,
    And,
    Comparison,
    Not,
    Or,
    SymbolEquals,
    TruePredicate,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<op><=|>=|!=|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<dot>\.)
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<param>\$[A-Za-z_][A-Za-z0-9_]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "lambda", "true", "false"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise PredicateError(f"cannot tokenize predicate at {text[index:]!r}")
        kind = match.lastgroup
        assert kind is not None
        if kind != "ws":
            value = match.group()
            if kind == "ident" and value.lower() in _KEYWORDS:
                tokens.append((value.lower(), value))
            else:
                tokens.append((kind, value))
        index = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], text: str) -> None:
        self._tokens = tokens
        self._text = text
        self._index = 0
        self._variable: str | None = None

    def peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def next(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise PredicateError(f"unexpected end of predicate {self._text!r}")
        self._index += 1
        return token

    def expect(self, kind: str) -> tuple[str, str]:
        token = self.next()
        if token[0] != kind:
            raise PredicateError(
                f"expected {kind} but found {token[1]!r} in {self._text!r}"
            )
        return token

    def parse(self) -> AlphabetPredicate:
        token = self.peek()
        if token is not None and token[0] == "lambda":
            self.next()
            self.expect("lparen")
            self._variable = self.expect("ident")[1]
            self.expect("rparen")
        result = self._or_expr()
        trailing = self.peek()
        if trailing is not None:
            raise PredicateError(
                f"trailing input {trailing[1]!r} in predicate {self._text!r}"
            )
        return result

    def _or_expr(self) -> AlphabetPredicate:
        terms = [self._and_expr()]
        while (token := self.peek()) is not None and token[0] == "or":
            self.next()
            terms.append(self._and_expr())
        if len(terms) == 1:
            return terms[0]
        return Or(*terms)

    def _and_expr(self) -> AlphabetPredicate:
        terms = [self._not_expr()]
        while (token := self.peek()) is not None and token[0] == "and":
            self.next()
            terms.append(self._not_expr())
        if len(terms) == 1:
            return terms[0]
        return And(*terms)

    def _not_expr(self) -> AlphabetPredicate:
        token = self.peek()
        if token is not None and token[0] == "not":
            self.next()
            return Not(self._not_expr())
        if token is not None and token[0] == "lparen":
            self.next()
            inner = self._or_expr()
            self.expect("rparen")
            return inner
        return self._comparison()

    def _comparison(self) -> AlphabetPredicate:
        token = self.next()
        if token[0] == "op" and token[1] == "?":  # pragma: no cover - defensive
            return TruePredicate()
        if token[0] != "ident":
            raise PredicateError(
                f"expected an attribute reference, found {token[1]!r} in {self._text!r}"
            )
        name = token[1]
        is_variable = self._variable is not None and name == self._variable
        nxt = self.peek()
        if nxt is not None and nxt[0] == "dot":
            self.next()
            attribute = self.expect("ident")[1]
            if not is_variable:
                raise PredicateError(
                    f"{name!r} is not the lambda variable in {self._text!r}"
                )
            op = self.expect("op")[1]
            constant = self._literal()
            return Comparison(attribute, op, constant)
        op = self.expect("op")[1]
        constant = self._literal()
        if is_variable:
            if op != "=":
                raise PredicateError("only '=' may compare the variable itself")
            return SymbolEquals(constant)
        return Comparison(name, op, constant)

    def _literal(self) -> Any:
        token = self.next()
        if token[0] == "param":
            return Param(token[1][1:])
        if token[0] == "number":
            text = token[1]
            return float(text) if "." in text else int(text)
        if token[0] == "string":
            return token[1][1:-1]
        if token[0] == "true":
            return True
        if token[0] == "false":
            return False
        if token[0] == "ident":
            # Bare word on the right-hand side reads as a string constant.
            return token[1]
        raise PredicateError(f"expected a literal, found {token[1]!r} in {self._text!r}")


def parse_predicate(text: str) -> AlphabetPredicate:
    """Parse predicate text into an :class:`AlphabetPredicate` AST."""
    tokens = _tokenize(text)
    if not tokens:
        raise PredicateError("empty predicate")
    return _Parser(tokens, text).parse()
