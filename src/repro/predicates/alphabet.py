"""Alphabet-predicates (paper §3.1).

An *alphabet-predicate* is a unary boolean function applied to one object;
the alphabet of every list/tree pattern is a set of such predicates.  To
keep queries tractable the paper restricts them to **stored attributes,
constants, comparisons and AND/OR/NOT**, which guarantees constant-time
evaluation and — crucially for the optimizer — makes the predicate an
inspectable AST rather than an opaque closure:

* the optimizer can pull out indexable conjuncts (``attr = constant``),
* the storage layer can enumerate the finite set of satisfying objects
  (the paper's ``P → P'`` alphabet translation in §3.4),
* patterns print readably.

The DSL mirrors the paper's lambda notation: ``attr("age") > 25`` builds
``(λ(Person) Person.age > 25)``.  Escape hatch: :class:`RawPredicate`
wraps any callable but is flagged opaque, so the optimizer will not try
to decompose or index it.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Iterable

from ..errors import PredicateError
from ..params import Param, resolve as _resolve_param

_MISSING = object()

_OPERATORS: dict[str, Callable[[Any, Any], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _read_attribute(obj: Any, name: str) -> Any:
    """Fetch a stored attribute from an object or mapping."""
    if isinstance(obj, dict):
        return obj.get(name, _MISSING)
    return getattr(obj, name, _MISSING)


class AlphabetPredicate:
    """Base class: a unary boolean function over one database object.

    Supports the boolean combinators with Python operators:
    ``p & q``, ``p | q``, ``~p``.
    """

    #: Opaque predicates cannot be decomposed or index-matched.
    opaque = False

    def __call__(self, obj: Any) -> bool:
        raise NotImplementedError

    def __and__(self, other: "AlphabetPredicate") -> "AlphabetPredicate":
        return And(self, _coerce(other))

    def __or__(self, other: "AlphabetPredicate") -> "AlphabetPredicate":
        return Or(self, _coerce(other))

    def __invert__(self) -> "AlphabetPredicate":
        return Not(self)

    # -- optimizer hooks ---------------------------------------------------

    def attributes(self) -> set[str]:
        """Stored attribute names this predicate consults."""
        return set()

    def conjuncts(self) -> list["AlphabetPredicate"]:
        """Top-level AND-decomposition (a single conjunct by default)."""
        return [self]

    def indexable_terms(self) -> list[tuple[str, str, Any]]:
        """``(attribute, op, constant)`` terms an index could serve."""
        return []

    def describe(self) -> str:
        raise NotImplementedError

    def embed_text(self) -> str:
        """A rendering parseable by :func:`parse_predicate` — used when a
        pattern embeds the predicate as ``{...}`` so that pattern
        ``describe()`` output round-trips.  Opaque predicates have no
        parseable form and fall back to :meth:`describe`."""
        return self.describe()

    def __repr__(self) -> str:
        return f"⟨λ(x) {self.describe()}⟩"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AlphabetPredicate):
            return self.describe() == other.describe()
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.describe()))


def _coerce(value: Any) -> AlphabetPredicate:
    if isinstance(value, AlphabetPredicate):
        return value
    if callable(value):
        return RawPredicate(value)
    raise PredicateError(f"cannot interpret {value!r} as an alphabet-predicate")


class TruePredicate(AlphabetPredicate):
    """The metacharacter ``?`` — satisfied by every object (§3.2)."""

    def __call__(self, obj: Any) -> bool:
        return True

    def describe(self) -> str:
        return "?"


#: The shared ``?`` instance.
ANY = TruePredicate()


class Comparison(AlphabetPredicate):
    """``x.attr OP constant`` — the paper's primitive comparison term."""

    def __init__(self, attribute: str, op: str, constant: Any) -> None:
        if op not in _OPERATORS:
            raise PredicateError(f"unknown comparison operator {op!r}")
        self.attribute = attribute
        self.op = op
        self.constant = constant

    def __call__(self, obj: Any) -> bool:
        value = _read_attribute(obj, self.attribute)
        if value is _MISSING:
            return False
        # A ``$param`` constant reads its binding at evaluation time, so
        # one predicate object (and the plan that holds it) serves every
        # binding — see :mod:`repro.params`.
        constant = _resolve_param(self.constant)
        try:
            return bool(_OPERATORS[self.op](value, constant))
        except TypeError:
            return False

    def attributes(self) -> set[str]:
        return {self.attribute}

    def indexable_terms(self) -> list[tuple[str, str, Any]]:
        return [(self.attribute, self.op, self.constant)]

    def describe(self) -> str:
        return f"x.{self.attribute} {self.op} {self.constant!r}"

    def embed_text(self) -> str:
        if isinstance(self.constant, Param):
            literal = self.constant.describe()
        elif isinstance(self.constant, str):
            literal = '"' + self.constant.replace('"', "") + '"'
        elif self.constant is True:
            literal = "true"
        elif self.constant is False:
            literal = "false"
        else:
            literal = repr(self.constant)
        return f"{self.attribute} {self.op} {literal}"


class SymbolEquals(AlphabetPredicate):
    """``x = symbol`` — matches payloads that *are* the symbol.

    This is the default resolution of a bare symbol in pattern notation
    (the figures' single-letter trees carry string payloads).
    """

    def __init__(self, symbol: Any) -> None:
        self.symbol = symbol

    def __call__(self, obj: Any) -> bool:
        return bool(obj == _resolve_param(self.symbol))

    def indexable_terms(self) -> list[tuple[str, str, Any]]:
        # The payload itself acts as the "value" pseudo-attribute.
        return [("__value__", "=", self.symbol)]

    def describe(self) -> str:
        return f"x = {self.symbol!r}"


class And(AlphabetPredicate):
    def __init__(self, *terms: AlphabetPredicate) -> None:
        if not terms:
            raise PredicateError("AND requires at least one term")
        self.terms = tuple(terms)

    def __call__(self, obj: Any) -> bool:
        return all(term(obj) for term in self.terms)

    def attributes(self) -> set[str]:
        return set().union(*(t.attributes() for t in self.terms))

    def conjuncts(self) -> list[AlphabetPredicate]:
        result: list[AlphabetPredicate] = []
        for term in self.terms:
            result.extend(term.conjuncts())
        return result

    def indexable_terms(self) -> list[tuple[str, str, Any]]:
        result: list[tuple[str, str, Any]] = []
        for term in self.terms:
            result.extend(term.indexable_terms())
        return result

    def describe(self) -> str:
        return "(" + " AND ".join(t.describe() for t in self.terms) + ")"

    def embed_text(self) -> str:
        return "(" + " and ".join(t.embed_text() for t in self.terms) + ")"

    @property
    def opaque(self) -> bool:  # type: ignore[override]
        return any(t.opaque for t in self.terms)


class Or(AlphabetPredicate):
    def __init__(self, *terms: AlphabetPredicate) -> None:
        if not terms:
            raise PredicateError("OR requires at least one term")
        self.terms = tuple(terms)

    def __call__(self, obj: Any) -> bool:
        return any(term(obj) for term in self.terms)

    def attributes(self) -> set[str]:
        return set().union(*(t.attributes() for t in self.terms))

    def describe(self) -> str:
        return "(" + " OR ".join(t.describe() for t in self.terms) + ")"

    def embed_text(self) -> str:
        return "(" + " or ".join(t.embed_text() for t in self.terms) + ")"

    @property
    def opaque(self) -> bool:  # type: ignore[override]
        return any(t.opaque for t in self.terms)


class Not(AlphabetPredicate):
    def __init__(self, term: AlphabetPredicate) -> None:
        self.term = term

    def __call__(self, obj: Any) -> bool:
        return not self.term(obj)

    def attributes(self) -> set[str]:
        return self.term.attributes()

    def describe(self) -> str:
        return f"(NOT {self.term.describe()})"

    def embed_text(self) -> str:
        return f"not ({self.term.embed_text()})"

    @property
    def opaque(self) -> bool:  # type: ignore[override]
        return self.term.opaque


class RawPredicate(AlphabetPredicate):
    """Escape hatch wrapping an arbitrary callable.

    Violates the paper's stored-attributes-only restriction, so it is
    flagged ``opaque`` — the optimizer treats it as unindexable and
    indivisible, and the ``P → P'`` alphabet translation refuses it.
    """

    opaque = True

    def __init__(self, function: Callable[[Any], bool], description: str | None = None) -> None:
        self.function = function
        self.description = description or getattr(function, "__name__", "<callable>")

    def __call__(self, obj: Any) -> bool:
        return bool(self.function(obj))

    def describe(self) -> str:
        return self.description


class AttrRef:
    """DSL handle: ``attr("age") > 25`` builds a :class:`Comparison`."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __eq__(self, constant: Any) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "=", constant)

    def __ne__(self, constant: Any) -> Comparison:  # type: ignore[override]
        return Comparison(self.name, "!=", constant)

    def __lt__(self, constant: Any) -> Comparison:
        return Comparison(self.name, "<", constant)

    def __le__(self, constant: Any) -> Comparison:
        return Comparison(self.name, "<=", constant)

    def __gt__(self, constant: Any) -> Comparison:
        return Comparison(self.name, ">", constant)

    def __ge__(self, constant: Any) -> Comparison:
        return Comparison(self.name, ">=", constant)

    def is_in(self, constants: Iterable[Any]) -> AlphabetPredicate:
        """Membership as a disjunction of equalities (stays decomposable)."""
        terms = [Comparison(self.name, "=", c) for c in constants]
        if not terms:
            return Not(ANY)
        if len(terms) == 1:
            return terms[0]
        return Or(*terms)

    def __hash__(self) -> int:  # __eq__ is hijacked by the DSL
        return hash(("AttrRef", self.name))

    def __repr__(self) -> str:
        return f"attr({self.name!r})"


def attr(name: str) -> AttrRef:
    """Reference a stored attribute inside a predicate expression."""
    return AttrRef(name)


def sym(symbol: Any) -> SymbolEquals:
    """Predicate matching the bare payload ``symbol`` (figure-style trees)."""
    return SymbolEquals(symbol)


def pred(function: Callable[[Any], bool], description: str | None = None) -> RawPredicate:
    """Wrap an arbitrary callable as an (opaque) alphabet-predicate."""
    return RawPredicate(function, description)
