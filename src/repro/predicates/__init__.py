"""Alphabet-predicates (paper §3.1): the atoms of list/tree patterns.

Build predicates with the DSL (:func:`attr`, :func:`sym`, :data:`ANY`,
``& | ~`` combinators), or parse the paper's lambda notation with
:func:`parse_predicate`.
"""

from .alphabet import (
    ANY,
    AlphabetPredicate,
    And,
    AttrRef,
    Comparison,
    Not,
    Or,
    RawPredicate,
    SymbolEquals,
    TruePredicate,
    attr,
    pred,
    sym,
)
from .parser import parse_predicate

__all__ = [
    "ANY",
    "AlphabetPredicate",
    "And",
    "AttrRef",
    "Comparison",
    "Not",
    "Or",
    "RawPredicate",
    "SymbolEquals",
    "TruePredicate",
    "attr",
    "parse_predicate",
    "pred",
    "sym",
]
