"""Execution guardrails: per-query budgets and cooperative cancellation.

The pattern matchers are backtracking interpreters over tree regular
expressions — worst-case exponential, exactly as the paper's footnote 3
admits — so an adversarial pattern or a deep input can otherwise run
effectively forever or blow the Python recursion limit.  Production
queries must instead fail *fast* and *structured*: every limit trips as
a :class:`~repro.errors.ResourceExhaustedError` that says which knob
tripped, where in the engine, and (inside an instrumented run) carries
the partial plan metrics collected so far.

Three pieces cooperate:

* :class:`Budget` — the immutable limit configuration: wall-clock
  deadline, matcher steps, backtrack depth, per-operator result
  cardinality, nodes scanned, plus an optional
  :class:`CancellationToken`.  ``Budget.from_env()`` reads the
  ``AQUA_*`` knobs so shells, CI and benchmarks can impose limits
  without code changes.
* :class:`Guard` — one *armed* budget: the mutable spend counters for a
  single query execution.  Hot loops call :meth:`Guard.tick` (a couple
  of integer operations; the deadline/cancellation check runs only every
  :data:`TIME_CHECK_INTERVAL` steps), storage scans call
  :meth:`Guard.charge_nodes`, the interpreter calls
  :meth:`Guard.check_results`.
* :func:`guarded` / :func:`current_guard` — thread-local installation.
  The *outermost* scope wins: entry points (the interpreter, the pattern
  engines' ``find_*`` functions) all open a ``guarded()`` scope, and
  nested scopes reuse the active guard, so one budget covers a whole
  query no matter how many engine layers it crosses.

The module deliberately imports nothing from the engine layers (only
:mod:`repro.errors`), so every layer — storage, patterns, query,
optimizer — can depend on it without cycles.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Iterator

from .errors import QueryCancelledError, ResourceExhaustedError

#: How many :meth:`Guard.tick` steps pass between wall-clock/cancellation
#: checks.  Keeps ``time.perf_counter`` and token reads off the per-step
#: fast path while bounding how late a deadline can be noticed.
TIME_CHECK_INTERVAL = 256

#: Depth bound for nullability analysis when no budget sets one.  Real
#: patterns bind at most a handful of concatenation points, so any
#: recursion deeper than this is a binding cycle — but the limit is a
#: budget knob (``max_backtrack_depth``), not a magic constant, so
#: callers who legitimately nest deeper can raise it.
DEFAULT_NULLABLE_DEPTH = 64

#: Environment knob → :class:`Budget` field (see README "Execution
#: limits & fault injection" for the user-facing documentation).
ENV_KNOBS = {
    "AQUA_DEADLINE": ("deadline_seconds", float),
    "AQUA_MAX_STEPS": ("max_steps", int),
    "AQUA_MAX_BACKTRACK_DEPTH": ("max_backtrack_depth", int),
    "AQUA_MAX_RESULTS": ("max_results", int),
    "AQUA_MAX_NODES_SCANNED": ("max_nodes_scanned", int),
}


class CancellationToken:
    """Cooperative cancellation flag, safe to share across threads.

    A controller thread calls :meth:`cancel`; the executing query notices
    at its next periodic check and unwinds with
    :class:`~repro.errors.QueryCancelledError`.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:
        return f"CancellationToken(cancelled={self.cancelled})"


@dataclass(frozen=True)
class Budget:
    """Limit configuration for one query execution.  ``None`` = unlimited.

    * ``deadline_seconds`` — wall-clock budget, measured from the moment
      the guard is armed;
    * ``max_steps`` — matcher/engine steps (backtracking derivation
      steps, DFA element steps, interpreter dispatches);
    * ``max_backtrack_depth`` — recursion depth of the backtracking
      matchers and of nullability analysis;
    * ``max_results`` — output cardinality of any single plan operator;
    * ``max_nodes_scanned`` — total nodes/objects/positions read by
      storage scans;
    * ``token`` — optional cooperative cancellation handle.
    """

    deadline_seconds: float | None = None
    max_steps: int | None = None
    max_backtrack_depth: int | None = None
    max_results: int | None = None
    max_nodes_scanned: int | None = None
    token: CancellationToken | None = None

    @property
    def is_unlimited(self) -> bool:
        return (
            self.deadline_seconds is None
            and self.max_steps is None
            and self.max_backtrack_depth is None
            and self.max_results is None
            and self.max_nodes_scanned is None
            and self.token is None
        )

    @classmethod
    def from_env(cls, environ=None) -> "Budget":
        """Build a budget from ``AQUA_*`` environment knobs.

        Unset or malformed knobs are treated as unlimited — a bad value
        must never make every query fail.
        """
        environ = os.environ if environ is None else environ
        values: dict[str, float | int] = {}
        for knob, (field_name, parse) in ENV_KNOBS.items():
            raw = environ.get(knob)
            if not raw:
                continue
            try:
                values[field_name] = parse(raw)
            except ValueError:
                continue
        return cls(**values)

    def with_token(self, token: CancellationToken) -> "Budget":
        return replace(self, token=token)

    def carve(self, elapsed: float) -> "Budget":
        """The budget left after ``elapsed`` seconds have been spent.

        The retry layer uses this to give each attempt only what remains
        of the *caller's* overall deadline — a retried query can never
        outlive the budget the first attempt was given.  Only the
        deadline shrinks; the other knobs are per-attempt bounds, not
        cumulative spend, so they carry over unchanged.  With no deadline
        configured the budget is returned as-is.

        The remaining deadline is floored at a hair above zero rather
        than clamped negative, so an attempt launched after the deadline
        trips immediately with the standard ``deadline_seconds``
        diagnostic instead of a confusing negative limit.
        """
        if self.deadline_seconds is None:
            return self
        return replace(
            self, deadline_seconds=max(self.deadline_seconds - elapsed, 1e-9)
        )

    def to_dict(self) -> dict[str, float | int | None]:
        """JSON-ready knob → limit mapping (the benchmark harness)."""
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "token"
        }

    def describe(self) -> str:
        limits = ", ".join(
            f"{name}={value}"
            for name, value in self.to_dict().items()
            if value is not None
        )
        return limits or "(unlimited)"


class Guard:
    """One armed :class:`Budget`: spend counters for a single execution."""

    __slots__ = (
        "budget",
        "steps",
        "nodes_scanned",
        "started",
        "_deadline",
        "_next_time_check",
    )

    def __init__(self, budget: Budget) -> None:
        self.budget = budget
        self.steps = 0
        self.nodes_scanned = 0
        self.started = time.perf_counter()
        self._deadline = (
            self.started + budget.deadline_seconds
            if budget.deadline_seconds is not None
            else None
        )
        self._next_time_check = TIME_CHECK_INTERVAL

    # -- spend accounting ---------------------------------------------------

    def tick(self, amount: int = 1, seam: str = "matcher step") -> None:
        """Charge ``amount`` engine steps; the hot-loop entry point."""
        self.steps += amount
        budget = self.budget
        if budget.max_steps is not None and self.steps > budget.max_steps:
            self._trip("max_steps", budget.max_steps, self.steps, seam)
        if self.steps >= self._next_time_check:
            self._next_time_check = self.steps + TIME_CHECK_INTERVAL
            self.check_now(seam)

    def charge_nodes(self, amount: int, seam: str = "storage scan") -> None:
        """Charge ``amount`` scanned nodes/objects/positions (cumulative)."""
        self.nodes_scanned += amount
        limit = self.budget.max_nodes_scanned
        if limit is not None and self.nodes_scanned > limit:
            self._trip("max_nodes_scanned", limit, self.nodes_scanned, seam)

    def check_depth(self, depth: int, seam: str, detail: str = "") -> None:
        """Trip when a backtracking recursion exceeds the depth budget."""
        limit = self.budget.max_backtrack_depth
        if limit is not None and depth > limit:
            self._trip("max_backtrack_depth", limit, depth, seam, detail)

    def check_results(self, count: int, seam: str) -> None:
        """Trip when one operator's output cardinality exceeds the budget."""
        limit = self.budget.max_results
        if limit is not None and count > limit:
            self._trip("max_results", limit, count, seam)

    def check_now(self, seam: str = "") -> None:
        """The periodic slow-path check: deadline and cancellation."""
        token = self.budget.token
        if token is not None and token.cancelled:
            raise QueryCancelledError(
                f"query cancelled after {self.elapsed():.3f}s"
                + (f" at {seam}" if seam else "")
            )
        if self._deadline is not None and time.perf_counter() > self._deadline:
            self._trip(
                "deadline_seconds",
                self.budget.deadline_seconds,
                round(self.elapsed(), 4),
                seam,
            )

    # -- reporting ----------------------------------------------------------

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def usage(self) -> dict[str, float | int]:
        """Resource snapshot: what this execution has spent so far."""
        return {
            "steps": self.steps,
            "nodes_scanned": self.nodes_scanned,
            "elapsed_seconds": self.elapsed(),
        }

    def _trip(
        self,
        limit_name: str,
        limit: float | int | None,
        spent: float | int,
        seam: str,
        detail: str = "",
    ) -> None:
        # Function-level import: stats lives in the storage layer, which
        # itself imports this module — and a trip is a cold path anyway.
        from .storage import stats as stats_mod

        stats_mod.emit("budget_trips")
        where = f" at {seam}" if seam else ""
        extra = f": {detail}" if detail else ""
        raise ResourceExhaustedError(
            f"budget exhausted{where}: {limit_name}={limit} exceeded "
            f"(spent {spent}){extra}",
            limit_name=limit_name,
            limit=limit,
            spent=spent,
            seam=seam,
            usage=self.usage(),
        )

    def __repr__(self) -> str:
        return f"Guard({self.budget.describe()}, spent={self.usage()})"


# -- thread-local installation ---------------------------------------------

_local = threading.local()


def current_guard() -> Guard | None:
    """The guard armed on this thread, or ``None`` (no limits active)."""
    return getattr(_local, "guard", None)


def nullable_depth_limit() -> int:
    """Depth bound for nullability analysis under the active budget."""
    guard = current_guard()
    if guard is not None and guard.budget.max_backtrack_depth is not None:
        return guard.budget.max_backtrack_depth
    return DEFAULT_NULLABLE_DEPTH


@contextmanager
def armed(guard: Guard | None) -> Iterator[Guard | None]:
    """Install a specific, pre-built :class:`Guard` on this thread.

    This is the worker-entry seam for parallel execution: a bare worker
    thread has *no* thread-local guard — :func:`guarded` was only ever
    entered on the query thread — so per-member work running on it
    would silently escape budget enforcement.  Exchange workers
    therefore re-arm explicitly with a shard guard (a
    :class:`~repro.physical.exchange.ShardGuard` sharing the query's
    cumulative spend ledger) before touching any engine layer.

    Unlike :func:`guarded` this scope *replaces* an already-active
    guard for its duration (a worker thread borrowed from a pool may
    still be inside an outer scope); the previous guard is restored on
    exit.  ``armed(None)`` is a no-op, so callers need not special-case
    unbudgeted executions.
    """
    if guard is None:
        yield None
        return
    previous = getattr(_local, "guard", None)
    _local.guard = guard
    try:
        yield guard
    finally:
        _local.guard = previous


@contextmanager
def guarded(budget: Budget | None = None) -> Iterator[Guard | None]:
    """Arm ``budget`` for this thread unless a guard is already active.

    The outermost scope wins: every engine entry point opens one of
    these, so a budget armed at the interpreter covers the pattern
    engines it calls into, while a bare ``find_tree_matches`` call still
    picks up the environment knobs.  With no limits configured the scope
    is free (no guard is installed and hot loops see ``None``).
    """
    active = getattr(_local, "guard", None)
    if active is not None:
        yield active
        return
    if budget is None:
        budget = Budget.from_env()
    if budget.is_unlimited:
        yield None
        return
    guard = Guard(budget)
    _local.guard = guard
    try:
        yield guard
    finally:
        # Restore the pre-scope value (always None here, since a live
        # guard short-circuits above) rather than assuming it: a budget
        # trip unwinding through this finally must leave the pool thread
        # exactly as it found it, or the next query scheduled on the
        # thread would inherit a spent guard.
        _local.guard = active
