"""List query operators (paper §6).

The paper defines list operators as tree operators on *list-like trees*
(out-degree ≤ 1).  This module implements them natively on
:class:`~repro.core.aqua_list.AquaList` — same semantics, linear-time
plumbing — while :mod:`repro.algebra.list_tree_bridge` provides the
literal translation used by the equivalence property tests.

``split`` on a list decomposes it, per match, into:

* ``x`` — the prefix (the "ancestors"), with ``α`` at its tail,
* ``y`` — the match, with ``αi`` where ``!`` pruned a run of elements
  and a final point for the suffix when one exists,
* ``z`` — the pruned runs plus the suffix ("descendants"), in point
  order,

so that ``x ∘α (y ∘α1 z1 ... ∘αn zn) = L``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.concat import ALPHA, ConcatPoint
from ..core.identity import Cell
from ..patterns.list_ast import ListPattern
from ..patterns.list_match import ListMatch, find_list_matches
from ..patterns.list_parser import SymbolResolver, list_pattern

PredicateLike = Callable[[Any], bool]


def select_list(predicate: PredicateLike, aqua_list: AquaList) -> AquaList:
    """Order-preserving select: survivors keep their relative order (§6)."""
    return AquaList(
        cell for cell in aqua_list.cells() if predicate(cell.contents)
    )


def apply_list(function: Callable[[Any], Any], aqua_list: AquaList) -> AquaList:
    """``apply(f)(L)``: the isomorphic list of ``f``-images."""
    return AquaList.from_values(function(cell.contents) for cell in aqua_list.cells())


@dataclass
class ListSplitPiece:
    """The three pieces of one list ``split`` match, plus metadata."""

    context: AquaList          # x — prefix with α at its tail
    match: AquaList            # y — the match with α1..αn
    descendants: AquaList      # z — pruned runs + suffix, as lists
    points: list[ConcatPoint]  # aligned with ``descendants``
    list_match: ListMatch

    def reassembled(self) -> AquaList:
        """``x ∘α (y ∘α1 z1 ... ∘αn zn)`` — the reassembly invariant."""
        rebuilt = self.match
        for point, run in zip(self.points, self.descendants.values()):
            rebuilt = rebuilt.concat_at(point, run)
        return self.context.concat_at(ALPHA, rebuilt)


def _build_pieces(
    aqua_list: AquaList, match: ListMatch
) -> ListSplitPiece:
    cells = list(aqua_list.cells())
    prefix = AquaList([*cells[: match.start], ALPHA])

    # Walk the matched span once, emitting kept cells and one fresh point
    # per pruned run, then a final point for a non-empty suffix.
    pruned_run_starts = {run[0]: run for run in match.pruned_runs}
    counter = 0
    points: list[ConcatPoint] = []
    match_entries: list[Cell | ConcatPoint] = []
    descendant_lists: list[AquaList] = []
    kept = set(match.kept)
    position = match.start
    while position < match.end:
        if position in kept:
            match_entries.append(cells[position])
            position += 1
        elif position in pruned_run_starts:
            run = pruned_run_starts[position]
            counter += 1
            point = ConcatPoint(str(counter))
            points.append(point)
            match_entries.append(point)
            descendant_lists.append(AquaList([cells[i] for i in run]))
            position = run[-1] + 1
        else:  # pragma: no cover - the match structure covers the span
            position += 1

    suffix_cells = cells[match.end :]
    if suffix_cells:
        counter += 1
        point = ConcatPoint(str(counter))
        points.append(point)
        match_entries.append(point)
        descendant_lists.append(AquaList(suffix_cells))

    return ListSplitPiece(
        context=prefix,
        match=AquaList(match_entries),
        descendants=AquaList.from_values(descendant_lists),
        points=points,
        list_match=match,
    )


def split_list_pieces(
    pattern: "str | ListPattern",
    aqua_list: AquaList,
    resolver: SymbolResolver | None = None,
    starts: Sequence[int] | None = None,
) -> list[ListSplitPiece]:
    """Enumerate the ``(x, y, z)`` decompositions for every match.

    ``starts`` restricts candidate start positions (the optimizer's
    position-index hook).
    """
    lp = list_pattern(pattern, resolver)
    values = aqua_list.values()
    return [
        _build_pieces(aqua_list, match)
        for match in find_list_matches(lp, values, starts=starts)
    ]


def split_list(
    pattern: "str | ListPattern",
    function: Callable[[AquaList, AquaList, AquaList], Any],
    aqua_list: AquaList,
    resolver: SymbolResolver | None = None,
    starts: Sequence[int] | None = None,
) -> AquaSet:
    """``split(lp, f)(L)`` (paper §6): apply ``f(x, y, z)`` per match."""
    return AquaSet(
        function(piece.context, piece.match, piece.descendants)
        for piece in split_list_pieces(pattern, aqua_list, resolver, starts)
    )


def sub_select_list(
    pattern: "str | ListPattern",
    aqua_list: AquaList,
    resolver: SymbolResolver | None = None,
    starts: Sequence[int] | None = None,
) -> AquaSet:
    """``sub_select(lp)(L)``: the set of matching sublists (§6).

    Points are closed with NULL, so only the kept elements remain —
    exactly ``split(lp, λ(a,b,c) b ∘α1..αn [])``.
    """
    lp = list_pattern(pattern, resolver)
    cells = list(aqua_list.cells())
    results = []
    for match in find_list_matches(lp, aqua_list.values(), starts=starts):
        results.append(AquaList([cells[i] for i in match.kept]))
    return AquaSet(results)


def all_anc_list(
    pattern: "str | ListPattern",
    function: Callable[[AquaList, AquaList], Any],
    aqua_list: AquaList,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``all_anc(lp, f)(L)``: ``f(prefix, match)`` per match (§6).

    The music-database query of §6 — "the notes preceding the melody" —
    is ``all_anc([A??F], λ(x,y)⟨x,y⟩)(L)``.
    """
    return AquaSet(
        function(piece.context, piece.match.close_points(piece.points))
        for piece in split_list_pieces(pattern, aqua_list, resolver)
    )


def all_desc_list(
    pattern: "str | ListPattern",
    function: Callable[[AquaList, AquaList], Any],
    aqua_list: AquaList,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``all_desc(lp, f)(L)``: ``f(match, descendants)`` per match (§6)."""
    return AquaSet(
        function(piece.match, piece.descendants)
        for piece in split_list_pieces(pattern, aqua_list, resolver)
    )
