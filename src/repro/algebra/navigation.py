"""Navigation and structural-information operators.

"AQUA also provides a range of other operators for purposes like
navigating, updating, and providing structural information about a tree
instance.  These operators are not discussed in this paper." (§4)

This module supplies that undiscussed-but-assumed layer: positional
access for lists, path navigation and structural measures for trees.
All operators are read-only; the updating family lives in
:mod:`repro.algebra.update`.

Paths are tuples of child indexes from the root: ``()`` is the root,
``(0, 2)`` is the third child of the first child.  Labeled NULLs are
real positions for navigation (they exist in the structure) but are
excluded from element-counting measures, consistent with §3.5.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree, TreeNode
from ..errors import QueryError

Path = tuple[int, ...]


# ---------------------------------------------------------------------------
# List navigation (position-dependent access, cf. MDM [24])
# ---------------------------------------------------------------------------


def head(aqua_list: AquaList) -> Any:
    """The first element value; raises on an empty list."""
    values = aqua_list.values()
    if not values:
        raise QueryError("head of an empty list")
    return values[0]


def last(aqua_list: AquaList) -> Any:
    values = aqua_list.values()
    if not values:
        raise QueryError("last of an empty list")
    return values[-1]


def tail(aqua_list: AquaList) -> AquaList:
    """Everything after the first element (empty list stays empty)."""
    return aqua_list.sublist(1, len(aqua_list)) if len(aqua_list) else AquaList.empty()


def at(aqua_list: AquaList, position: int) -> Any:
    """The element value at ``position`` (0-based; negative allowed)."""
    values = aqua_list.values()
    try:
        return values[position]
    except IndexError:
        raise QueryError(f"position {position} out of range for length {len(values)}")


def positions(aqua_list: AquaList, predicate: Callable[[Any], bool]) -> list[int]:
    """Element positions satisfying ``predicate`` — MDM-style queries."""
    return [i for i, value in enumerate(aqua_list.values()) if predicate(value)]


def reverse(aqua_list: AquaList) -> AquaList:
    """A reversed copy (labeled NULLs keep their relative reversal too)."""
    return AquaList(list(aqua_list.entries)[::-1])


def zip_lists(left: AquaList, right: AquaList) -> AquaList:
    """Pairwise zip into a list of 2-tuples (shorter length wins)."""
    from ..core.aqua_tuple import make_tuple

    pairs = [
        make_tuple(a, b) for a, b in zip(left.values(), right.values())
    ]
    return AquaList.from_values(pairs)


def take_while(aqua_list: AquaList, predicate: Callable[[Any], bool]) -> AquaList:
    kept = []
    for value in aqua_list.values():
        if not predicate(value):
            break
        kept.append(value)
    return AquaList.from_values(kept)


def drop_while(aqua_list: AquaList, predicate: Callable[[Any], bool]) -> AquaList:
    values = aqua_list.values()
    index = 0
    while index < len(values) and predicate(values[index]):
        index += 1
    return AquaList.from_values(values[index:])


# ---------------------------------------------------------------------------
# Tree navigation
# ---------------------------------------------------------------------------


def node_at(tree: AquaTree, path: Path) -> TreeNode:
    """The node reached by following ``path`` from the root."""
    node = tree.root
    if node is None:
        raise QueryError("cannot navigate an empty tree")
    for step, index in enumerate(path):
        if not 0 <= index < len(node.children):
            raise QueryError(
                f"path {path} invalid at step {step}: node has "
                f"{len(node.children)} children"
            )
        node = node.children[index]
    return node


def value_at(tree: AquaTree, path: Path) -> Any:
    return node_at(tree, path).value


def path_of(tree: AquaTree, target: TreeNode) -> Path:
    """The path from the root to ``target`` (identity comparison)."""

    def search(node: TreeNode, prefix: Path) -> Path | None:
        if node is target:
            return prefix
        for index, child in enumerate(node.children):
            found = search(child, prefix + (index,))
            if found is not None:
                return found
        return None

    if tree.root is None:
        raise QueryError("cannot navigate an empty tree")
    result = search(tree.root, ())
    if result is None:
        raise QueryError("node is not part of this tree")
    return result


def parent_of(tree: AquaTree, target: TreeNode) -> TreeNode | None:
    """The parent node (None for the root)."""
    path = path_of(tree, target)
    if not path:
        return None
    return node_at(tree, path[:-1])


def children_of(node: TreeNode) -> AquaList:
    """The node's children as a list of their element values."""
    return AquaList.from_values([c.value for c in node.children if not c.is_concat_point])


def siblings_of(tree: AquaTree, target: TreeNode) -> list[TreeNode]:
    parent = parent_of(tree, target)
    if parent is None:
        return []
    return [c for c in parent.children if c is not target]


def ancestors_of(tree: AquaTree, target: TreeNode) -> list[TreeNode]:
    """Ancestors from the root down to (excluding) ``target``."""
    path = path_of(tree, target)
    nodes = []
    for length in range(len(path)):
        nodes.append(node_at(tree, path[:length]))
    return nodes


def descendants_of(node: TreeNode) -> Iterator[TreeNode]:
    """Proper descendants in preorder."""
    stack = list(reversed(node.children))
    while stack:
        current = stack.pop()
        yield current
        stack.extend(reversed(current.children))


# ---------------------------------------------------------------------------
# Structural information
# ---------------------------------------------------------------------------


def degree(node: TreeNode) -> int:
    """Out-degree, labeled NULLs excluded."""
    return sum(1 for c in node.children if not c.is_concat_point)


def depth_of(tree: AquaTree, target: TreeNode) -> int:
    return len(path_of(tree, target))


def arity_profile(tree: AquaTree) -> dict[int, int]:
    """How many element nodes have each out-degree."""
    profile: dict[int, int] = {}
    for node in tree.element_nodes():
        d = degree(node)
        profile[d] = profile.get(d, 0) + 1
    return profile


def is_fixed_arity(tree: AquaTree, expected: int | None = None) -> bool:
    """Is every interior node of the same out-degree (§2's fixed-arity)?"""
    degrees = {degree(n) for n in tree.element_nodes() if degree(n) > 0}
    if not degrees:
        return True
    if expected is not None:
        return degrees == {expected}
    return len(degrees) == 1


def level(tree: AquaTree, depth: int) -> AquaList:
    """Element values at exactly ``depth``, left to right."""
    values: list[Any] = []

    def walk(node: TreeNode, current: int) -> None:
        if node.is_concat_point:
            return
        if current == depth:
            values.append(node.value)
            return
        for child in node.children:
            walk(child, current + 1)

    if tree.root is not None:
        walk(tree.root, 0)
    return AquaList.from_values(values)


def frontier(tree: AquaTree) -> AquaList:
    """Leaf element values in left-to-right order (the tree's yield)."""
    values = [
        node.value
        for node in tree.nodes()
        if node.is_leaf and not node.is_concat_point
    ]
    return AquaList.from_values(values)


def paths_to(tree: AquaTree, predicate: Callable[[Any], bool]) -> AquaSet:
    """The set of paths to nodes whose value satisfies ``predicate``."""
    found: list[Path] = []

    def walk(node: TreeNode, prefix: Path) -> None:
        if not node.is_concat_point and predicate(node.value):
            found.append(prefix)
        for index, child in enumerate(node.children):
            walk(child, prefix + (index,))

    if tree.root is not None:
        walk(tree.root, ())
    return AquaSet(found)
