"""Update operators for lists and trees — persistent (copy-on-write).

The second half of §4's undiscussed operator family ("navigating,
**updating**, and providing structural information").  Every operator
returns a new structure sharing payload objects with the input; the
input is never mutated, matching the value-style discipline of the query
operators (and what the §5 rewrite example needs: build the new parse
tree, keep the old one).

Tree positions are the paths of :mod:`repro.algebra.navigation`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Sequence

from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.identity import as_cell
from ..errors import QueryError
from .navigation import Path, node_at

# ---------------------------------------------------------------------------
# List updates
# ---------------------------------------------------------------------------


def insert_at(aqua_list: AquaList, position: int, payload: Any) -> AquaList:
    """A new list with ``payload`` inserted before element ``position``."""
    values = aqua_list.values()
    if not 0 <= position <= len(values):
        raise QueryError(f"insert position {position} out of range")
    return AquaList.from_values(values[:position] + [payload] + values[position:])


def delete_at(aqua_list: AquaList, position: int) -> AquaList:
    values = aqua_list.values()
    if not 0 <= position < len(values):
        raise QueryError(f"delete position {position} out of range")
    return AquaList.from_values(values[:position] + values[position + 1 :])


def replace_at(aqua_list: AquaList, position: int, payload: Any) -> AquaList:
    values = aqua_list.values()
    if not 0 <= position < len(values):
        raise QueryError(f"replace position {position} out of range")
    return AquaList.from_values(values[:position] + [payload] + values[position + 1 :])


def splice(aqua_list: AquaList, start: int, stop: int, run: Sequence[Any]) -> AquaList:
    """Replace the element window ``[start, stop)`` with ``run``."""
    values = aqua_list.values()
    if not 0 <= start <= stop <= len(values):
        raise QueryError(f"splice window [{start}, {stop}) out of range")
    return AquaList.from_values(values[:start] + list(run) + values[stop:])


# ---------------------------------------------------------------------------
# Tree updates
# ---------------------------------------------------------------------------


def _rebuild(node: TreeNode, path: Path, editor) -> TreeNode | None:
    """Copy the spine along ``path``; ``editor(node)`` rewrites the target.

    ``editor`` returns the replacement node, or None to delete.
    Untouched subtrees are shared, not copied.
    """
    if not path:
        return editor(node)
    index = path[0]
    if not 0 <= index < len(node.children):
        raise QueryError(f"path step {index} out of range")
    children = list(node.children)
    replacement = _rebuild(children[index], path[1:], editor)
    if replacement is None:
        del children[index]
    else:
        children[index] = replacement
    return TreeNode(node.item, children)


def _edit(tree: AquaTree, path: Path, editor) -> AquaTree:
    if tree.root is None:
        raise QueryError("cannot edit an empty tree")
    return AquaTree(_rebuild(tree.root, path, editor))


def replace_subtree(tree: AquaTree, path: Path, subtree: AquaTree) -> AquaTree:
    """A new tree with the subtree at ``path`` replaced by ``subtree``."""
    if subtree.root is None:
        return delete_subtree(tree, path)
    node_at(tree, path)  # validates the path
    return _edit(tree, path, lambda _node: subtree.clone().root)


def delete_subtree(tree: AquaTree, path: Path) -> AquaTree:
    """A new tree with the subtree at ``path`` removed.

    Deleting the root yields the empty tree.
    """
    if not path:
        return AquaTree.empty()
    node_at(tree, path)
    return _edit(tree, path, lambda _node: None)


def insert_child(
    tree: AquaTree, path: Path, payload_or_subtree: Any, position: int | None = None
) -> AquaTree:
    """A new tree with a child grafted under the node at ``path``.

    ``position`` defaults to appending after the existing children.
    """
    if isinstance(payload_or_subtree, AquaTree):
        if payload_or_subtree.root is None:
            raise QueryError("cannot insert an empty tree")
        child = payload_or_subtree.clone().root
    else:
        child = TreeNode(as_cell(payload_or_subtree))

    def editor(node: TreeNode) -> TreeNode:
        children = list(node.children)
        slot = len(children) if position is None else position
        if not 0 <= slot <= len(children):
            raise QueryError(f"child position {slot} out of range")
        children.insert(slot, child)
        return TreeNode(node.item, children)

    node_at(tree, path)
    return _edit(tree, path, editor)


def replace_value(tree: AquaTree, path: Path, payload: Any) -> AquaTree:
    """A new tree with the node at ``path`` re-pointed at ``payload``
    (children preserved)."""

    def editor(node: TreeNode) -> TreeNode:
        return TreeNode(as_cell(payload), list(node.children))

    node_at(tree, path)
    return _edit(tree, path, editor)


def promote_children(tree: AquaTree, path: Path) -> AquaTree:
    """Delete the node at ``path``, splicing its children into its place
    (the update-flavored cousin of select's edge contraction)."""
    if not path:
        raise QueryError("cannot promote the root's children over the root")
    target = node_at(tree, path)

    def editor(node: TreeNode) -> TreeNode:
        del node
        return None  # type: ignore[return-value]

    parent_path, index = path[:-1], path[-1]

    def parent_editor(parent: TreeNode) -> TreeNode:
        children = list(parent.children)
        children[index : index + 1] = list(target.children)
        return TreeNode(parent.item, children)

    return _edit(tree, parent_path, parent_editor)


# ---------------------------------------------------------------------------
# Database-level updates
# ---------------------------------------------------------------------------


class Transaction:
    """A staged write against a database: commit applies all-or-nothing.

    Created by :func:`transaction`; do not construct directly.  The
    transaction holds the database write lock for its entire lifetime
    (pessimistic concurrency: writers serialize, a read-modify-write
    sequence can never lose an update to a concurrent writer), while
    readers — who never take the write lock — proceed against pinned
    snapshots throughout.

    Mutations are *staged*, not applied: :meth:`rebind_root`,
    :meth:`bind_root` and :meth:`insert` record intent, and the whole
    batch lands in one :meth:`~repro.storage.database.Database.
    commit_staged` call under a single version bump covering exactly the
    touched resources.  Until commit, no reader — not even one on the
    base database — can observe any staged change; a raising body rolls
    back by simply discarding the stage, so a pinned snapshot can never
    see a torn batch.
    """

    def __init__(self, db) -> None:
        self.db = db
        self._root_rebinds: dict[str, Any] = {}
        self._root_binds: dict[str, Any] = {}
        self._inserts: list[tuple[Any, str | None]] = []
        self._committed = False

    # -- reads (through the stage) ------------------------------------------

    def root(self, name: str) -> Any:
        """The root as this transaction sees it (staged value wins)."""
        if name in self._root_rebinds:
            return self._root_rebinds[name]
        if name in self._root_binds:
            return self._root_binds[name]
        return self.db.root(name)

    # -- staged mutations ----------------------------------------------------

    def rebind_root(self, name: str, value: Any) -> None:
        self.db.root(name)  # validate existence now, not at commit
        self._root_rebinds[name] = value

    def bind_root(self, name: str, value: Any) -> None:
        self._root_binds[name] = value

    def insert(self, obj: Any, extent: str | None = None) -> None:
        """Stage ``obj`` for ``extent`` (default: its class name), matching
        :meth:`Database.insert`'s signature."""
        self._inserts.append((obj, extent))

    # -- lifecycle -----------------------------------------------------------

    def _commit(self) -> None:
        self.db.commit_staged(
            root_rebinds=self._root_rebinds,
            root_binds=self._root_binds,
            inserts=self._inserts,
        )
        self._committed = True

    def __repr__(self) -> str:
        staged = (
            len(self._root_rebinds) + len(self._root_binds) + len(self._inserts)
        )
        state = "committed" if self._committed else f"staged={staged}"
        return f"Transaction<{self.db!r}, {state}>"


@contextmanager
def transaction(db):
    """Run a write transaction: ``with transaction(db) as txn: ...``.

    The body stages mutations on ``txn``; a normal exit commits them
    atomically (one lock hold, one version bump over the touched
    resources), an exception discards them and re-raises — rollback is
    free because nothing touched the database.  The write lock is held
    from entry to commit, so concurrent transactions serialize and the
    value read by :meth:`Transaction.root` cannot be stale by commit
    time.
    """
    with db.write_locked():
        txn = Transaction(db)
        yield txn
        txn._commit()


def apply_update(db, root_name: str, updater, *args, **kwargs):
    """Apply a persistent update to a named root and rebind the result.

    ``updater`` is one of this module's operators (or any function taking
    the current value first): ``apply_update(db, "T", replace_subtree,
    (0, 1), new_sub)`` computes ``replace_subtree(db.root("T"), (0, 1),
    new_sub)`` and rebinds ``"T"`` to it.  The whole read-modify-rebind
    runs inside a :func:`transaction` — the write lock is held across
    the updater, so two concurrent ``apply_update`` calls on the same
    root serialize and neither loses the other's write; a raising
    updater rolls back, leaving the root bound to its previous value.
    Committing bumps the root's version counter — cached prepared plans
    over that root lazily invalidate on their next lookup, while plans
    over untouched resources stay warm.  Returns the new value.
    """
    with transaction(db) as txn:
        new_value = updater(txn.root(root_name), *args, **kwargs)
        txn.rebind_root(root_name, new_value)
    return new_value
