"""Update operators for lists and trees — persistent (copy-on-write).

The second half of §4's undiscussed operator family ("navigating,
**updating**, and providing structural information").  Every operator
returns a new structure sharing payload objects with the input; the
input is never mutated, matching the value-style discipline of the query
operators (and what the §5 rewrite example needs: build the new parse
tree, keep the old one).

Tree positions are the paths of :mod:`repro.algebra.navigation`.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..core.aqua_list import AquaList
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.identity import as_cell
from ..errors import QueryError
from .navigation import Path, node_at

# ---------------------------------------------------------------------------
# List updates
# ---------------------------------------------------------------------------


def insert_at(aqua_list: AquaList, position: int, payload: Any) -> AquaList:
    """A new list with ``payload`` inserted before element ``position``."""
    values = aqua_list.values()
    if not 0 <= position <= len(values):
        raise QueryError(f"insert position {position} out of range")
    return AquaList.from_values(values[:position] + [payload] + values[position:])


def delete_at(aqua_list: AquaList, position: int) -> AquaList:
    values = aqua_list.values()
    if not 0 <= position < len(values):
        raise QueryError(f"delete position {position} out of range")
    return AquaList.from_values(values[:position] + values[position + 1 :])


def replace_at(aqua_list: AquaList, position: int, payload: Any) -> AquaList:
    values = aqua_list.values()
    if not 0 <= position < len(values):
        raise QueryError(f"replace position {position} out of range")
    return AquaList.from_values(values[:position] + [payload] + values[position + 1 :])


def splice(aqua_list: AquaList, start: int, stop: int, run: Sequence[Any]) -> AquaList:
    """Replace the element window ``[start, stop)`` with ``run``."""
    values = aqua_list.values()
    if not 0 <= start <= stop <= len(values):
        raise QueryError(f"splice window [{start}, {stop}) out of range")
    return AquaList.from_values(values[:start] + list(run) + values[stop:])


# ---------------------------------------------------------------------------
# Tree updates
# ---------------------------------------------------------------------------


def _rebuild(node: TreeNode, path: Path, editor) -> TreeNode | None:
    """Copy the spine along ``path``; ``editor(node)`` rewrites the target.

    ``editor`` returns the replacement node, or None to delete.
    Untouched subtrees are shared, not copied.
    """
    if not path:
        return editor(node)
    index = path[0]
    if not 0 <= index < len(node.children):
        raise QueryError(f"path step {index} out of range")
    children = list(node.children)
    replacement = _rebuild(children[index], path[1:], editor)
    if replacement is None:
        del children[index]
    else:
        children[index] = replacement
    return TreeNode(node.item, children)


def _edit(tree: AquaTree, path: Path, editor) -> AquaTree:
    if tree.root is None:
        raise QueryError("cannot edit an empty tree")
    return AquaTree(_rebuild(tree.root, path, editor))


def replace_subtree(tree: AquaTree, path: Path, subtree: AquaTree) -> AquaTree:
    """A new tree with the subtree at ``path`` replaced by ``subtree``."""
    if subtree.root is None:
        return delete_subtree(tree, path)
    node_at(tree, path)  # validates the path
    return _edit(tree, path, lambda _node: subtree.clone().root)


def delete_subtree(tree: AquaTree, path: Path) -> AquaTree:
    """A new tree with the subtree at ``path`` removed.

    Deleting the root yields the empty tree.
    """
    if not path:
        return AquaTree.empty()
    node_at(tree, path)
    return _edit(tree, path, lambda _node: None)


def insert_child(
    tree: AquaTree, path: Path, payload_or_subtree: Any, position: int | None = None
) -> AquaTree:
    """A new tree with a child grafted under the node at ``path``.

    ``position`` defaults to appending after the existing children.
    """
    if isinstance(payload_or_subtree, AquaTree):
        if payload_or_subtree.root is None:
            raise QueryError("cannot insert an empty tree")
        child = payload_or_subtree.clone().root
    else:
        child = TreeNode(as_cell(payload_or_subtree))

    def editor(node: TreeNode) -> TreeNode:
        children = list(node.children)
        slot = len(children) if position is None else position
        if not 0 <= slot <= len(children):
            raise QueryError(f"child position {slot} out of range")
        children.insert(slot, child)
        return TreeNode(node.item, children)

    node_at(tree, path)
    return _edit(tree, path, editor)


def replace_value(tree: AquaTree, path: Path, payload: Any) -> AquaTree:
    """A new tree with the node at ``path`` re-pointed at ``payload``
    (children preserved)."""

    def editor(node: TreeNode) -> TreeNode:
        return TreeNode(as_cell(payload), list(node.children))

    node_at(tree, path)
    return _edit(tree, path, editor)


def promote_children(tree: AquaTree, path: Path) -> AquaTree:
    """Delete the node at ``path``, splicing its children into its place
    (the update-flavored cousin of select's edge contraction)."""
    if not path:
        raise QueryError("cannot promote the root's children over the root")
    target = node_at(tree, path)

    def editor(node: TreeNode) -> TreeNode:
        del node
        return None  # type: ignore[return-value]

    parent_path, index = path[:-1], path[-1]

    def parent_editor(parent: TreeNode) -> TreeNode:
        children = list(parent.children)
        children[index : index + 1] = list(target.children)
        return TreeNode(parent.item, children)

    return _edit(tree, parent_path, parent_editor)


# ---------------------------------------------------------------------------
# Database-level updates
# ---------------------------------------------------------------------------


def apply_update(db, root_name: str, updater, *args, **kwargs):
    """Apply a persistent update to a named root and rebind the result.

    ``updater`` is one of this module's operators (or any function taking
    the current value first): ``apply_update(db, "T", replace_subtree,
    (0, 1), new_sub)`` computes ``replace_subtree(db.root("T"), (0, 1),
    new_sub)`` and rebinds ``"T"`` to it.  Rebinding goes through
    :meth:`~repro.storage.database.Database.rebind_root`, which bumps the
    database epoch — cached prepared plans against ``db`` lazily
    invalidate on their next lookup.  Returns the new value.
    """
    new_value = updater(db.root(root_name), *args, **kwargs)
    db.rebind_root(root_name, new_value)
    return new_value
