"""Tree query operators (paper §4).

Two families:

* common to all bulk types — :func:`select`, :func:`apply_tree`;
* specific to ordered bulk types — :func:`split`, :func:`sub_select`,
  :func:`all_anc`, :func:`all_desc` (all pattern-driven).

``split`` is the primitive: "it allows us to break up a tree and put it
back together later".  For each match it produces

* ``x`` — the input with the match's subtree excised and a fresh ``α``
  marking the attachment point ("all ancestors of the match and their
  descendants (except the match itself)"),
* ``y`` — the match, with ``α1..αn`` where subtrees were pruned,
* ``z`` — the list of pruned subtrees ``[t1..tn]``,

and applies the caller's 3-place function.  The reassembly invariant
``x ∘α (y ∘α1 z1 ... ∘αn zn) = T`` (the formal definition in §4) is
property-tested in the suite and used by :func:`reassemble`.

All operators are **stable**: the relative order/ancestry of surviving
nodes is preserved (paper §1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree, TreeNode
from ..core.concat import ALPHA, ConcatPoint
from ..core.identity import as_cell
from ..errors import TypeMismatchError
from ..patterns.tree_ast import TreePattern
from ..patterns.tree_match import TreeMatch, find_tree_matches
from ..patterns.tree_parser import SymbolResolver, tree_pattern

PredicateLike = Callable[[Any], bool]
PatternLike = "str | TreePattern"


def select(predicate: PredicateLike, tree: AquaTree) -> AquaSet:
    """Order-preserving select (paper §4).

    Keeps every node satisfying ``predicate``; ancestry among survivors
    is preserved, and an edge ``(n1, n2)`` appears iff no node strictly
    between them survived (edge contraction).  The result is a *set* of
    trees: a single tree when the root survives, otherwise the forest of
    maximal surviving subtrees.
    """
    if tree.root is None:
        return AquaSet()

    # Iterative post-order so list-like trees (out-degree 1, depth = n)
    # do not hit Python's recursion limit.  ``survivors[id(node)]`` holds
    # the roots of the surviving forest for that node's subtree.
    survivors: dict[int, list[TreeNode]] = {}
    stack: list[tuple[TreeNode, bool]] = [(tree.root, False)]
    while stack:
        node, processed = stack.pop()
        if not processed:
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
            continue
        # Labeled NULLs are invisible to queries (§3.5) and are leaves,
        # so they simply never survive.
        if node.is_concat_point:
            survivors[id(node)] = []
            continue
        surviving_children: list[TreeNode] = []
        for child in node.children:
            surviving_children.extend(survivors.pop(id(child)))
        if predicate(node.value):
            survivors[id(node)] = [TreeNode(node.item, surviving_children)]
        else:
            survivors[id(node)] = surviving_children

    return AquaSet(AquaTree(root) for root in survivors[id(tree.root)])


def apply_tree(function: Callable[[Any], Any], tree: AquaTree) -> AquaTree:
    """``apply(f)(T)``: isomorphic tree of ``f``-images (paper §4).

    Labeled NULLs pass through untouched; element nodes get fresh cells
    holding the function's result.
    """
    if tree.root is None:
        return AquaTree(None)

    # Iterative post-order (deep list-like trees must not overflow).
    rebuilt: dict[int, TreeNode] = {}
    stack: list[tuple[TreeNode, bool]] = [(tree.root, False)]
    while stack:
        node, processed = stack.pop()
        if not processed:
            stack.append((node, True))
            for child in node.children:
                stack.append((child, False))
            continue
        children = [rebuilt.pop(id(c)) for c in node.children]
        if node.is_concat_point:
            rebuilt[id(node)] = TreeNode(node.item, children)
        else:
            rebuilt[id(node)] = TreeNode(as_cell(function(node.value)), children)

    return AquaTree(rebuilt[id(tree.root)])


@dataclass
class SplitPiece:
    """The three pieces ``split`` produces for one match, plus metadata.

    The context ``x`` is the expensive piece — a full rebuild of the
    input with α at the attachment site — and many split functions
    (``sub_select``'s λ, the docstore's subtree reattachment) never look
    at it.  It is therefore built lazily on first access; functions that
    provably ignore it declare ``needs_context = False`` (see
    :func:`invoke_split_function`) and skip the rebuild entirely.
    """

    match: AquaTree            # y — the match, with α1..αn at pruned sites
    descendants: AquaList      # z — the pruned subtrees [t1..tn]
    points: list[ConcatPoint]  # the α1..αn, aligned with ``descendants``
    tree_match: TreeMatch      # the underlying match (kept/pruned data nodes)
    source: AquaTree           # the input T the piece was cut from
    _context: AquaTree | None = None

    @property
    def context(self) -> AquaTree:
        """x — ancestors, with α at the attachment site (built lazily)."""
        if self._context is None:
            self._context = _context_tree(self.source, self.tree_match.root)
        return self._context

    def reassembled(self) -> AquaTree:
        """``x ∘α (y ∘α1 z1 ... ∘αn zn)`` — the reassembly invariant."""
        rebuilt = self.match
        for point, subtree in zip(self.points, self.descendants.values()):
            rebuilt = rebuilt.concat(point, subtree)
        return self.context.concat(ALPHA, rebuilt)


def _context_tree(tree: AquaTree, target: TreeNode) -> AquaTree:
    """The ``x`` piece: the input with ``target``'s subtree replaced by α."""

    def rebuild(node: TreeNode) -> TreeNode:
        if node is target:
            return TreeNode(ALPHA)
        return TreeNode(node.item, [rebuild(c) for c in node.children])

    assert tree.root is not None
    return AquaTree(rebuild(tree.root))


def split_pieces(
    pattern: "str | TreePattern",
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
    roots: Sequence[TreeNode] | None = None,
) -> list[SplitPiece]:
    """Enumerate the ``(x, y, z)`` decompositions for every match.

    ``roots`` restricts candidate match roots (the optimizer's index
    hook).  Pieces share payload objects with the input; structure is
    fresh, so callers may reassemble or edit freely.
    """
    tp = tree_pattern(pattern, resolver)
    pieces: list[SplitPiece] = []
    for match in find_tree_matches(tp, tree, roots=roots):
        y, points = match.match_tree()
        z = match.pruned_subtrees()
        pieces.append(
            SplitPiece(
                match=y,
                descendants=AquaList.from_values(z),
                points=points,
                tree_match=match,
                source=tree,
            )
        )
    return pieces


def invoke_split_function(function: Callable[..., Any], piece: SplitPiece) -> Any:
    """Apply a split function ``f(x, y, z)`` to one piece.

    A function that declares ``needs_context = False`` promises never to
    read ``x``; it receives ``None`` there and the context rebuild is
    skipped — the declaration idiom callables already use for
    ``plan_fingerprint``.  A function that further declares
    ``returns_match_subtree = True`` promises ``f(x, y, z)`` *is* the §4
    identity reassembly ``y ∘α1..αn z`` — the full subtree at the match
    root — which the source tree already holds, so it is served by
    structure sharing without calling ``function`` at all.
    """
    if getattr(function, "returns_match_subtree", False):
        from ..core.aqua_tree import subtree_at

        return subtree_at(piece.tree_match.root)
    if getattr(function, "needs_context", True):
        return function(piece.context, piece.match, piece.descendants)
    return function(None, piece.match, piece.descendants)


def split(
    pattern: "str | TreePattern",
    function: Callable[[AquaTree, AquaTree, AquaList], Any],
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
    roots: Sequence[TreeNode] | None = None,
) -> AquaSet:
    """``split(tp, f)(T)`` (paper §4): apply ``f(x, y, z)`` per match."""
    if getattr(function, "returns_match_subtree", False):
        from ..core.aqua_tree import subtree_at

        tp = tree_pattern(pattern, resolver)
        return AquaSet(
            subtree_at(match.root)
            for match in find_tree_matches(tp, tree, roots=roots)
        )
    return AquaSet(
        invoke_split_function(function, piece)
        for piece in split_pieces(pattern, tree, resolver, roots)
    )


def sub_select(
    pattern: "str | TreePattern",
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
    roots: Sequence[TreeNode] | None = None,
) -> AquaSet:
    """``sub_select(tp)(T)``: the set of subgraphs matching ``tp`` (§4).

    Defined in the paper as ``split(tp, λ(a,b,c) b ∘α1..αn [])`` — the
    match piece with its points closed off by NULL.  Implemented
    natively (no context construction) for speed; the derived form lives
    in :mod:`repro.algebra.derived` and the suite checks they agree.
    """
    tp = tree_pattern(pattern, resolver)
    results = []
    for match in find_tree_matches(tp, tree, roots=roots):
        y, points = match.match_tree()
        results.append(y.close_points(points))
    return AquaSet(results)


def all_anc(
    pattern: "str | TreePattern",
    function: Callable[[AquaTree, AquaTree], Any],
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``all_anc(tp, f)(T)``: ``f(ancestors, match)`` per match (§4)."""
    return AquaSet(
        function(piece.context, piece.match.close_points(piece.points))
        for piece in split_pieces(pattern, tree, resolver)
    )


def all_desc(
    pattern: "str | TreePattern",
    function: Callable[[AquaTree, AquaList], Any],
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``all_desc(tp, f)(T)``: ``f(match, descendants)`` per match (§4).

    The match keeps its ``α1..αn`` so ``f`` can reattach descendants.
    """
    return AquaSet(
        function(piece.match, piece.descendants)
        for piece in split_pieces(pattern, tree, resolver)
    )


def reassemble(match: AquaTree, descendants: "AquaList | Sequence[AquaTree]") -> AquaTree:
    """``y ∘α1,α2...αn z`` — the paper's §5 shorthand.

    Plugs ``z``'s ``i``-th element into the point labeled ``i``.
    """
    if isinstance(descendants, AquaList):
        subtrees = list(descendants.values())
    else:
        subtrees = list(descendants)
    result = match
    for index, subtree in enumerate(subtrees, start=1):
        if not isinstance(subtree, AquaTree):
            raise TypeMismatchError(f"cannot reattach {subtree!r}: not a tree")
        result = result.concat(ConcatPoint(str(index)), subtree)
    return result
