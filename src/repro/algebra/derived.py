"""Derived operator definitions, verbatim from the paper (§4).

"AQUA has a large number of query operators ... however they can all be
expressed in terms of a smaller subset of primitive operators.  The
primitive tree query operators are **apply** and **split**."

This module implements ``sub_select``, ``all_anc`` and ``all_desc``
*literally* from their ``split``-based definitions::

    sub_select(tp)(T)  = split(tp, λ(a,b,c) b ∘α1..αn [])(T)
    all_anc(tp, f)(T)  = apply(λ(a) f(1(a), 2(a)))(A)
                         where A = split(tp, λ(a,b,c)⟨a, b ∘α1..αn []⟩)(T)
    all_desc(tp, f)(T) = apply(λ(a) f(1(a), 2(a)))(A)
                         where A = split(tp, λ(a,b,c)⟨b, c⟩)(T)

(The outer ``apply`` is set-apply; ``1``/``2`` are tuple projections.)
The property suite checks these against the native implementations in
:mod:`repro.algebra.tree_ops` — a strong end-to-end exercise of ``split``,
tuple formation and projection.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..core.aqua_list import AquaList
from ..core.aqua_tuple import AquaTuple, make_tuple
from ..patterns.tree_ast import TreePattern
from ..patterns.tree_parser import SymbolResolver
from .tree_ops import split


def sub_select_via_split(
    pattern: "str | TreePattern",
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``sub_select`` from its defining equation."""

    def close(a: AquaTree, b: AquaTree, c: AquaList) -> AquaTree:
        del a, c
        return b.close_points()

    return split(pattern, close, tree, resolver)


def all_anc_via_split(
    pattern: "str | TreePattern",
    function: Callable[[AquaTree, AquaTree], Any],
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``all_anc`` from its defining equation (split, then set-apply)."""

    def g(a: AquaTree, b: AquaTree, c: AquaList) -> AquaTuple:
        del c
        return make_tuple(a, b.close_points())

    intermediate = split(pattern, g, tree, resolver)
    return intermediate.apply(lambda t: function(t.project(1), t.project(2)))


def all_desc_via_split(
    pattern: "str | TreePattern",
    function: Callable[[AquaTree, AquaList], Any],
    tree: AquaTree,
    resolver: SymbolResolver | None = None,
) -> AquaSet:
    """``all_desc`` from its defining equation (split, then set-apply)."""

    def g(a: AquaTree, b: AquaTree, c: AquaList) -> AquaTuple:
        del a
        return make_tuple(b, c)

    intermediate = split(pattern, g, tree, resolver)
    return intermediate.apply(lambda t: function(t.project(1), t.project(2)))
