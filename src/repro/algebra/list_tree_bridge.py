"""The list ⇄ tree correspondence (paper §6).

"Ignoring typing issues for the moment, we can view a list as a tree in
which each tree-node has at most one child."  §6 then maps every list
operator to the corresponding tree operator on such *list-like trees*,
including a translation of list patterns to tree patterns:

* ``[abc]`` becomes ``a(b(c))``;
* ``[abc] ∘ [cba]`` becomes ``a(b(c(α))) ∘α c(b(a))``;
* ``[d [[ac]]* b]`` — viewed as ``[d] ∘ [ac]* ∘ [b]`` — becomes
  ``d(α1) ∘α1 [[a(c(α2))]]*α2 ∘α2 b``.

:func:`list_pattern_to_tree_pattern` implements that translation in
general (continuation-passing over the list AST, one fresh point per
closure or concatenation boundary), and the ``*_via_tree`` operators run
list queries through the tree engine.  The property suite checks the
natives in :mod:`repro.algebra.list_ops` against these round-trips —
the paper's central §6 claim made executable.

Limitations (documented in DESIGN.md):

* **Empty matches** — a tree pattern matches *at a node*, so the empty
  sublist (which nullable list patterns match) has no tree image; the
  engines agree on all non-empty matches.
* **Prunes** — ``!`` prunes do not translate —
a pruned *run* in the middle of a list corresponds to excising part of a
chain, whereas the tree ``!`` prunes a whole subtree, which in a
list-like tree would swallow the rest of the list.  Patterns containing
prunes therefore only run on the native list engine.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from ..core.aqua_list import AquaList
from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree
from ..core.concat import ConcatPoint
from ..errors import PatternError
from ..patterns.list_ast import (
    Atom,
    Concat,
    Epsilon,
    ListPattern,
    ListPatternNode,
    Plus,
    Prune,
    Star,
    Union,
)
from ..patterns.tree_ast import (
    CHILD_EPSILON,
    PointAtom,
    TreeAtom,
    TreeConcat,
    TreePattern,
    TreePatternNode,
    TreePlus,
    TreePrune,
    TreeStar,
    TreeUnion,
)
from ..predicates.alphabet import ANY
from .tree_ops import select as tree_select
from .tree_ops import sub_select as tree_sub_select


class _PointSupply:
    """Fresh, collision-free concatenation points for the translation."""

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def fresh(self) -> ConcatPoint:
        return ConcatPoint(f"t{next(self._counter)}")


def list_pattern_to_tree_pattern(pattern: ListPattern) -> TreePattern:
    """Translate a list pattern into the equivalent tree pattern (§6).

    The translated pattern matches exactly the list-like-tree images of
    the sublists the list pattern matches.  An end anchor forces the
    last matched node to be the tree's leaf (children = ε); without it
    the chain's tail is implicitly pruned, mirroring how a bare tree
    atom prunes descendants.
    """
    if pattern.contains_prune():
        raise PatternError("prune markers do not translate to tree patterns")
    supply = _PointSupply()
    body = _translate(pattern.body, None, pattern.anchor_end, supply)
    return TreePattern(body, root_anchor=pattern.anchor_start)


def _translate(
    node: ListPatternNode,
    continuation: TreePatternNode | None,
    anchored_end: bool,
    supply: _PointSupply,
) -> TreePatternNode:
    """CPS translation: build the pattern for ``node`` followed by
    ``continuation`` (None = end of pattern)."""
    if isinstance(node, Epsilon):
        if continuation is None:
            raise PatternError("cannot translate a pattern matching only []")
        return continuation
    if isinstance(node, Atom):
        if continuation is not None:
            return TreeAtom(node.predicate, continuation)
        if anchored_end:
            return TreeAtom(node.predicate, CHILD_EPSILON)
        return TreeAtom(node.predicate, None)  # bare: tail pruned implicitly
    if isinstance(node, Concat):
        result = continuation
        for part in reversed(node.parts):
            result = _translate(part, result, anchored_end, supply)
            anchored_end = False  # only the last part sees the anchor
        if result is None:
            raise PatternError("cannot translate an empty concatenation")
        return result
    if isinstance(node, Union):
        return TreeUnion(
            [_translate(a, continuation, anchored_end, supply) for a in node.alternatives]
        )
    if isinstance(node, (Star, Plus)):
        point = supply.fresh()
        inner = _translate(node.inner, PointAtom(point), False, supply)
        closure: TreePatternNode = (
            TreeStar(inner, point) if isinstance(node, Star) else TreePlus(inner, point)
        )
        if continuation is None:
            if anchored_end:
                return closure  # exits must land exactly on the leaf
            # A trailing closure's exit sits mid-chain: the rest of the
            # list is outside the match.  Absorb it with an optional
            # whole-subtree prune (the chain-tail), mirroring how a bare
            # atom implicitly prunes its descendants.
            continuation = TreePrune(TreeAtom(ANY, None), optional=True)
        return TreeConcat(closure, point, continuation)
    if isinstance(node, Prune):
        raise PatternError("prune markers do not translate to tree patterns")
    raise PatternError(f"cannot translate {node!r}")


# ---------------------------------------------------------------------------
# List operators routed through the tree engine (§6's defining view)
# ---------------------------------------------------------------------------


def select_via_tree(predicate: Callable[[Any], bool], aqua_list: AquaList) -> AquaList:
    """List select as tree select on the list-like tree (§6).

    On a list-like tree, select returns a singleton set containing a
    list-like tree (or the empty set); converting back yields the list.
    """
    forest = tree_select(predicate, aqua_list.to_list_like_tree())
    trees = list(forest)
    if not trees:
        return AquaList.empty()
    if len(trees) != 1:
        raise PatternError("select on a list-like tree must yield one tree")
    return AquaList.from_list_like_tree(trees[0])


def sub_select_via_tree(
    pattern: ListPattern, aqua_list: AquaList
) -> AquaSet:
    """List sub_select as tree sub_select on the translated pattern."""
    tp = list_pattern_to_tree_pattern(pattern)
    tree_results = tree_sub_select(tp, aqua_list.to_list_like_tree())
    return AquaSet(
        AquaList.from_list_like_tree(result.close_points())
        for result in tree_results
        if isinstance(result, AquaTree)
    )
