"""The AQUA query operators for trees, lists, sets and multisets (§4–§6),
plus navigation/update/structural operators (§4's undiscussed family)
and approximate matching (§7)."""

from .approximate import (
    ApproxMatch,
    approx_matches,
    nearest_subtrees,
    sub_select_approx,
    tree_edit_distance,
)
from .derived import all_anc_via_split, all_desc_via_split, sub_select_via_split
from .list_ops import (
    ListSplitPiece,
    all_anc_list,
    all_desc_list,
    apply_list,
    select_list,
    split_list,
    split_list_pieces,
    sub_select_list,
)
from .list_tree_bridge import (
    list_pattern_to_tree_pattern,
    select_via_tree,
    sub_select_via_tree,
)
from .set_ops import (
    apply_set,
    difference,
    dup_elim,
    fold_set,
    intersection,
    multiset_of,
    select_set,
    set_of,
    union,
)
from .tree_ops import (
    SplitPiece,
    all_anc,
    all_desc,
    apply_tree,
    reassemble,
    select,
    split,
    split_pieces,
    sub_select,
)

from . import navigation, update

__all__ = [
    "ApproxMatch",
    "ListSplitPiece",
    "approx_matches",
    "navigation",
    "nearest_subtrees",
    "sub_select_approx",
    "tree_edit_distance",
    "update",
    "SplitPiece",
    "all_anc",
    "all_anc_list",
    "all_anc_via_split",
    "all_desc",
    "all_desc_list",
    "all_desc_via_split",
    "apply_list",
    "apply_set",
    "apply_tree",
    "difference",
    "dup_elim",
    "fold_set",
    "intersection",
    "list_pattern_to_tree_pattern",
    "multiset_of",
    "reassemble",
    "select",
    "select_list",
    "select_set",
    "select_via_tree",
    "set_of",
    "split",
    "split_list",
    "split_list_pieces",
    "split_pieces",
    "sub_select",
    "sub_select_list",
    "sub_select_via_split",
    "sub_select_via_tree",
    "union",
]
