"""Operator-style wrappers for the set/multiset algebra (paper §2, [19]).

The bulk types carry their operators as methods; this module provides
the free-standing operator spelling the algebra papers use, with the
equality notion as an explicit parameter — "AQUA allows equality to be
specified as a parameter to some of its operators (e.g., set union)".
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..core.aqua_set import AquaMultiset, AquaSet
from ..core.equality import DEFAULT, Equality
from ..errors import TypeMismatchError


def select_set(predicate: Callable[[Any], bool], collection: AquaSet | AquaMultiset):
    """``select(p)(S)`` for sets and multisets."""
    return collection.select(predicate)


def apply_set(function: Callable[[Any], Any], collection: AquaSet | AquaMultiset):
    """``apply(f)(S)`` — the functor/map."""
    return collection.apply(function)


def fold_set(
    function: Callable[[Any, Any], Any],
    initial: Any,
    collection: AquaSet | AquaMultiset,
) -> Any:
    """``fold(f, z)(S)`` — the unordered catamorphism (split's cousin)."""
    return collection.fold(function, initial)


def union(
    left: AquaSet,
    right: AquaSet,
    equality: Equality | None = None,
) -> AquaSet:
    return left.union(right, equality)


def intersection(
    left: AquaSet,
    right: AquaSet,
    equality: Equality | None = None,
) -> AquaSet:
    return left.intersection(right, equality)


def difference(
    left: AquaSet,
    right: AquaSet,
    equality: Equality | None = None,
) -> AquaSet:
    return left.difference(right, equality)


def dup_elim(collection: AquaMultiset) -> AquaSet:
    """Duplicate elimination: multiset → set of representatives."""
    if not isinstance(collection, AquaMultiset):
        raise TypeMismatchError("dup_elim expects a multiset")
    return collection.dup_elim()


def set_of(items: Iterable[Any], equality: Equality = DEFAULT) -> AquaSet:
    return AquaSet(items, equality)


def multiset_of(items: Iterable[Any], equality: Equality = DEFAULT) -> AquaMultiset:
    return AquaMultiset(items, equality)
