"""Approximate tree matching (paper §7, references [35, 36]).

"Recent work on approximate tree matching ... propose[s] various
distance metrics for trees.  These metrics are useful in answering
queries such as 'give me all the subtrees of T which almost satisfy
pattern P'.  Such metrics are easily accommodated in our formalisms."

This module accommodates them: the Zhang–Shasha ordered tree edit
distance (the metric of reference [36]) and distance-thresholded query
operators built on it.

* :func:`tree_edit_distance` — minimum-cost sequence of node
  relabelings, deletions and insertions turning one ordered tree into
  another; ``O(|T1|·|T2|·min(depth,leaves)²)`` dynamic programming.
* :func:`sub_select_approx` — "all subtrees of T within distance k of
  the target"; the approximate analog of ``sub_select`` (an exact match
  is distance 0).
* :func:`nearest_subtrees` — the ranked top-``n`` closest subtrees,
  the distance-based retrieval of [35].

Costs default to unit insert/delete and 0/1 relabel (values compared
with ``==``); pass ``relabel``/``indel`` for weighted metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..core.aqua_set import AquaSet
from ..core.aqua_tree import AquaTree, TreeNode
from ..errors import QueryError

RelabelCost = Callable[[Any, Any], float]
IndelCost = Callable[[Any], float]


def _default_relabel(a: Any, b: Any) -> float:
    return 0.0 if a == b else 1.0


def _default_indel(value: Any) -> float:
    del value
    return 1.0


@dataclass
class _Annotated:
    """Postorder arrays for Zhang–Shasha (1-indexed)."""

    values: list[Any]          # values[i] = payload of postorder node i
    leftmost: list[int]        # l(i) = postorder index of i's leftmost leaf
    keyroots: list[int]        # LR-keyroots, ascending


def _annotate(tree: AquaTree) -> _Annotated:
    values: list[Any] = [None]  # 1-indexed
    leftmost: list[int] = [0]

    def walk(node: TreeNode) -> int:
        """Postorder-number the subtree; return this node's index."""
        first_leaf: int | None = None
        for child in node.children:
            child_index = walk(child)
            if first_leaf is None:
                first_leaf = leftmost[child_index]
        values.append(node.value)
        index = len(values) - 1
        leftmost.append(first_leaf if first_leaf is not None else index)
        return index

    if tree.root is not None:
        walk(tree.root)

    n = len(values) - 1
    seen: set[int] = set()
    keyroots = []
    for i in range(n, 0, -1):  # highest postorder wins per leftmost-leaf class
        if leftmost[i] not in seen:
            seen.add(leftmost[i])
            keyroots.append(i)
    keyroots.sort()
    return _Annotated(values, leftmost, keyroots)


def tree_edit_distance(
    t1: AquaTree,
    t2: AquaTree,
    relabel: RelabelCost | None = None,
    indel: IndelCost | None = None,
) -> float:
    """The Zhang–Shasha ordered edit distance between two trees."""
    relabel = relabel or _default_relabel
    indel = indel or _default_indel

    a = _annotate(t1)
    b = _annotate(t2)
    n = len(a.values) - 1
    m = len(b.values) - 1
    if n == 0 or m == 0:
        return float(
            sum(indel(v) for v in a.values[1:]) + sum(indel(v) for v in b.values[1:])
        )

    distance = [[0.0] * (m + 1) for _ in range(n + 1)]

    def treedist(i: int, j: int) -> None:
        li, lj = a.leftmost[i], b.leftmost[j]
        rows = i - li + 2
        cols = j - lj + 2
        forest = [[0.0] * cols for _ in range(rows)]
        for di in range(1, rows):
            forest[di][0] = forest[di - 1][0] + indel(a.values[li + di - 1])
        for dj in range(1, cols):
            forest[0][dj] = forest[0][dj - 1] + indel(b.values[lj + dj - 1])
        for di in range(1, rows):
            ii = li + di - 1
            for dj in range(1, cols):
                jj = lj + dj - 1
                delete = forest[di - 1][dj] + indel(a.values[ii])
                insert = forest[di][dj - 1] + indel(b.values[jj])
                if a.leftmost[ii] == li and b.leftmost[jj] == lj:
                    match = forest[di - 1][dj - 1] + relabel(a.values[ii], b.values[jj])
                    forest[di][dj] = min(delete, insert, match)
                    distance[ii][jj] = forest[di][dj]
                else:
                    bridge = (
                        forest[a.leftmost[ii] - li][b.leftmost[jj] - lj]
                        + distance[ii][jj]
                    )
                    forest[di][dj] = min(delete, insert, bridge)

    for i in a.keyroots:
        for j in b.keyroots:
            treedist(i, j)
    return distance[n][m]


@dataclass(frozen=True)
class ApproxMatch:
    """A subtree of the input within the distance threshold."""

    subtree: AquaTree
    distance: float
    root: TreeNode

    def __repr__(self) -> str:
        return f"ApproxMatch(d={self.distance}, {self.subtree.to_notation()})"


def _all_subtrees(tree: AquaTree) -> list[TreeNode]:
    return [node for node in tree.element_nodes()]


def approx_matches(
    target: AquaTree,
    max_distance: float,
    tree: AquaTree,
    relabel: RelabelCost | None = None,
    indel: IndelCost | None = None,
    size_window: int | None = None,
) -> list[ApproxMatch]:
    """All subtrees of ``tree`` within ``max_distance`` of ``target``.

    ``size_window`` prunes candidates whose node count differs from the
    target's by more than the window (defaults to ``max_distance`` with
    unit costs — a valid lower bound on the edit distance).
    """
    if target.root is None:
        raise QueryError("the approximate target must be non-empty")
    target_size = target.size()
    if size_window is None and relabel is None and indel is None:
        size_window = int(max_distance)

    results: list[ApproxMatch] = []
    for node in _all_subtrees(tree):
        candidate = AquaTree(node)
        if size_window is not None:
            if abs(candidate.size() - target_size) > size_window:
                continue
        d = tree_edit_distance(candidate, target, relabel, indel)
        if d <= max_distance:
            results.append(
                ApproxMatch(subtree=candidate.clone(), distance=d, root=node)
            )
    results.sort(key=lambda m: m.distance)
    return results


def sub_select_approx(
    target: AquaTree,
    max_distance: float,
    tree: AquaTree,
    relabel: RelabelCost | None = None,
    indel: IndelCost | None = None,
) -> AquaSet:
    """"All the subtrees of T which almost satisfy" the target (§7).

    Returns the set of qualifying subtrees; distance 0 members are
    exactly the anchored-at-node exact matches.
    """
    return AquaSet(
        match.subtree
        for match in approx_matches(target, max_distance, tree, relabel, indel)
    )


def nearest_subtrees(
    target: AquaTree,
    count: int,
    tree: AquaTree,
    relabel: RelabelCost | None = None,
    indel: IndelCost | None = None,
) -> list[ApproxMatch]:
    """The ``count`` closest subtrees, ranked by edit distance ([35])."""
    scored = approx_matches(
        target,
        float("inf"),
        tree,
        relabel,
        indel,
        size_window=10**9,
    )
    return scored[:count]
