"""Exception hierarchy for the AQUA reproduction.

Every error raised by the library derives from :class:`AquaError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure families below.
"""

from __future__ import annotations


class AquaError(Exception):
    """Base class for all errors raised by this library."""


class NotationError(AquaError):
    """A textual list/tree/pattern notation could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class PatternError(AquaError):
    """A pattern is structurally invalid (e.g. misplaced anchor or prune)."""


class PredicateError(AquaError):
    """An alphabet-predicate is invalid or cannot be evaluated."""


class ConcatenationError(AquaError):
    """A concatenation (``∘α``) was applied to incompatible operands."""


class TypeMismatchError(AquaError):
    """An algebra operator was applied to a value of the wrong bulk type."""


class StorageError(AquaError):
    """Raised by the storage substrate (unknown OID, duplicate root...)."""


class IndexError_(StorageError):
    """An index was used inconsistently (duplicate key in unique index...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has unrelated semantics.
    """


class OptimizerError(AquaError):
    """The optimizer was given an invalid plan or rule configuration."""


class QueryError(AquaError):
    """A logical query expression is malformed or cannot be evaluated."""
