"""Exception hierarchy for the AQUA reproduction.

Every error raised by the library derives from :class:`AquaError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure families below.
"""

from __future__ import annotations


class AquaError(Exception):
    """Base class for all errors raised by this library."""


class NotationError(AquaError):
    """A textual list/tree/pattern notation could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class PatternError(AquaError):
    """A pattern is structurally invalid (e.g. misplaced anchor or prune)."""


class PredicateError(AquaError):
    """An alphabet-predicate is invalid or cannot be evaluated."""


class ConcatenationError(AquaError):
    """A concatenation (``∘α``) was applied to incompatible operands."""


class TypeMismatchError(AquaError):
    """An algebra operator was applied to a value of the wrong bulk type."""


class StorageError(AquaError):
    """Raised by the storage substrate (unknown OID, duplicate root...)."""


class SnapshotPinError(StorageError):
    """A consistent snapshot could not be pinned (a racing writer moved
    the version cut mid-pin).

    Unlike its parent, this failure is *transient*: the base database is
    intact, and re-pinning a fresh snapshot succeeds once the writer's
    commit completes.  The serving layer's retry policy treats it as
    retryable-with-repin (see :mod:`repro.serving.taxonomy`).
    """


class IndexError_(StorageError):
    """An index was used inconsistently (duplicate key in unique index...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has unrelated semantics.
    """


class OptimizerError(AquaError):
    """The optimizer was given an invalid plan or rule configuration."""


class QueryError(AquaError):
    """A logical query expression is malformed or cannot be evaluated."""


class ResourceExhaustedError(AquaError):
    """A query exceeded a configured execution budget.

    Raised cooperatively by the hot loops (matcher steps, storage scans,
    interpreter dispatch) when a :class:`~repro.guardrails.Budget` limit
    trips.  The error is structured so callers can recover and report:

    * ``limit_name``/``limit``/``spent`` — which knob tripped and how;
    * ``seam`` — where in the engine the check fired (e.g. ``"matcher
      step"``, ``"storage scan"``);
    * ``usage`` — the guard's resource snapshot at trip time;
    * ``metrics`` — the partial
      :class:`~repro.query.metrics.PlanMetrics` collected so far when the
      trip happened inside an instrumented run (attached by the
      interpreter, ``None`` otherwise);
    * ``plan_path``/``operator`` — the plan node being evaluated when the
      budget tripped (attached by the interpreter).
    """

    def __init__(
        self,
        message: str,
        *,
        limit_name: str = "",
        limit: float | int | None = None,
        spent: float | int | None = None,
        seam: str = "",
        usage: dict | None = None,
        metrics: object | None = None,
    ) -> None:
        self.limit_name = limit_name
        self.limit = limit
        self.spent = spent
        self.seam = seam
        self.usage = dict(usage or {})
        self.metrics = metrics
        self.plan_path: tuple[int, ...] | None = None
        self.operator: str | None = None
        super().__init__(message)


class QueryCancelledError(AquaError):
    """A cooperative :class:`~repro.guardrails.CancellationToken` fired."""


class ServerOverloadedError(AquaError):
    """Admission control shed a request: the serving queue is full.

    Carries the queue statistics at rejection time so clients (and the
    chaos benchmark) can report *why* they were shed and back off
    accordingly:

    * ``queued`` — requests admitted but not yet executing;
    * ``in_flight`` — requests currently executing on a worker;
    * ``max_queue_depth`` / ``max_in_flight`` — the configured caps;
    * ``shed`` — total requests this controller has rejected so far.
    """

    def __init__(
        self,
        message: str,
        *,
        queued: int = 0,
        in_flight: int = 0,
        max_queue_depth: int | None = None,
        max_in_flight: int | None = None,
        shed: int = 0,
    ) -> None:
        self.queued = queued
        self.in_flight = in_flight
        self.max_queue_depth = max_queue_depth
        self.max_in_flight = max_in_flight
        self.shed = shed
        super().__init__(message)

    def queue_stats(self) -> dict:
        """JSON-ready statistics snapshot carried by this rejection."""
        return {
            "queued": self.queued,
            "in_flight": self.in_flight,
            "max_queue_depth": self.max_queue_depth,
            "max_in_flight": self.max_in_flight,
            "shed": self.shed,
        }


class CircuitOpenError(AquaError):
    """A circuit breaker is open for the failing seam/resource.

    Raised by the retry loop instead of burning further retry budget
    when the seam that just failed has tripped its breaker: the original
    failure is chained as ``__cause__``, and ``seam`` names the breaker.
    """

    def __init__(self, seam: str, message: str = "") -> None:
        self.seam = seam
        super().__init__(
            message or f"circuit breaker open for seam {seam!r}; request shed"
        )


class InjectedFaultError(AquaError):
    """A deterministic fault injected at a named seam (testing only).

    Never raised in production configurations; see :mod:`repro.faults`.
    """

    def __init__(self, seam: str, hit: int) -> None:
        self.seam = seam
        self.hit = hit
        super().__init__(f"injected fault at seam {seam!r} (hit #{hit})")
