"""Exception hierarchy for the AQUA reproduction.

Every error raised by the library derives from :class:`AquaError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure families below.
"""

from __future__ import annotations


class AquaError(Exception):
    """Base class for all errors raised by this library."""


class NotationError(AquaError):
    """A textual list/tree/pattern notation could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int | None = None):
        self.text = text
        self.position = position
        if position is not None:
            message = f"{message} (at position {position} in {text!r})"
        super().__init__(message)


class PatternError(AquaError):
    """A pattern is structurally invalid (e.g. misplaced anchor or prune)."""


class PredicateError(AquaError):
    """An alphabet-predicate is invalid or cannot be evaluated."""


class ConcatenationError(AquaError):
    """A concatenation (``∘α``) was applied to incompatible operands."""


class TypeMismatchError(AquaError):
    """An algebra operator was applied to a value of the wrong bulk type."""


class StorageError(AquaError):
    """Raised by the storage substrate (unknown OID, duplicate root...)."""


class IndexError_(StorageError):
    """An index was used inconsistently (duplicate key in unique index...).

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which has unrelated semantics.
    """


class OptimizerError(AquaError):
    """The optimizer was given an invalid plan or rule configuration."""


class QueryError(AquaError):
    """A logical query expression is malformed or cannot be evaluated."""


class ResourceExhaustedError(AquaError):
    """A query exceeded a configured execution budget.

    Raised cooperatively by the hot loops (matcher steps, storage scans,
    interpreter dispatch) when a :class:`~repro.guardrails.Budget` limit
    trips.  The error is structured so callers can recover and report:

    * ``limit_name``/``limit``/``spent`` — which knob tripped and how;
    * ``seam`` — where in the engine the check fired (e.g. ``"matcher
      step"``, ``"storage scan"``);
    * ``usage`` — the guard's resource snapshot at trip time;
    * ``metrics`` — the partial
      :class:`~repro.query.metrics.PlanMetrics` collected so far when the
      trip happened inside an instrumented run (attached by the
      interpreter, ``None`` otherwise);
    * ``plan_path``/``operator`` — the plan node being evaluated when the
      budget tripped (attached by the interpreter).
    """

    def __init__(
        self,
        message: str,
        *,
        limit_name: str = "",
        limit: float | int | None = None,
        spent: float | int | None = None,
        seam: str = "",
        usage: dict | None = None,
        metrics: object | None = None,
    ) -> None:
        self.limit_name = limit_name
        self.limit = limit
        self.spent = spent
        self.seam = seam
        self.usage = dict(usage or {})
        self.metrics = metrics
        self.plan_path: tuple[int, ...] | None = None
        self.operator: str | None = None
        super().__init__(message)


class QueryCancelledError(AquaError):
    """A cooperative :class:`~repro.guardrails.CancellationToken` fired."""


class InjectedFaultError(AquaError):
    """A deterministic fault injected at a named seam (testing only).

    Never raised in production configurations; see :mod:`repro.faults`.
    """

    def __init__(self, seam: str, hit: int) -> None:
        self.seam = seam
        self.hit = hit
        super().__init__(f"injected fault at seam {seam!r} (hit #{hit})")
