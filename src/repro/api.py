"""The unified query API: one Session object, one precedence story.

Every way of running a query — ``evaluate()``, ``Q.run()``,
``run_aql()``, the shell, the benchmarks — now funnels through a
:class:`Session`, which is the *single* place the execution knobs are
resolved.  Precedence, highest first:

1. a per-call keyword (``session.query(q, executor="eager")``);
2. the Session's own keyword (``Session(db, executor="eager")``);
3. the ``AQUA_*`` environment variable (``AQUA_EXECUTOR``,
   ``AQUA_TREE_ENGINE``, budget knobs via
   :meth:`repro.guardrails.Budget.from_env`);
4. the built-in default (``streaming`` / ``memo`` / unlimited).

Values are validated on first read by :mod:`repro.config`; a typo
raises a one-line :class:`~repro.errors.QueryError` naming the knob and
the accepted values instead of failing deep in the stack.

A Session owns a :class:`~repro.query.plan_cache.PlanCache` (shared
process-wide by default), so ``session.query(...)`` transparently
prepares-and-caches: repeated shapes skip the optimizer, the pattern
compilers and the lowering pass.  ``session.prepare(...)`` exposes the
:class:`~repro.query.prepare.PreparedQuery` explicitly for
parameterized workloads.
"""

from __future__ import annotations

from typing import Any, Mapping

from . import config
from .guardrails import Budget
from .query import expr as E
from .query.metrics import PlanMetrics
from .query.plan_cache import DEFAULT_CACHE, PlanCache
from .query.prepare import PreparedQuery, prepare as _prepare
from .storage.database import Database


class Session:
    """A database handle with resolved execution knobs and a plan cache.

    Parameters mirror the knobs: ``executor`` (``streaming`` |
    ``eager``), ``engine`` (tree-pattern engine, ``memo`` |
    ``backtrack``), ``budget`` (a :class:`~repro.guardrails.Budget`),
    ``plan_cache`` (a :class:`~repro.query.plan_cache.PlanCache`; the
    process-wide default when omitted; ``plan_cache=None`` is replaced
    by that default — pass ``cache=None`` per call via :meth:`prepare`
    to bypass caching).  All are optional; ``None`` defers to the
    environment, then the default.
    """

    def __init__(
        self,
        db: Database,
        *,
        executor: str | None = None,
        engine: str | None = None,
        budget: Budget | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if executor is not None:
            config.validated_executor(executor)
        if engine is not None:
            config.validated_tree_engine(engine)
        self.db = db
        self.executor = executor
        self.engine = engine
        self.budget = budget
        self.plan_cache = plan_cache if plan_cache is not None else DEFAULT_CACHE

    # -- knob resolution -------------------------------------------------------

    def _executor(self, executor: str | None) -> str | None:
        return executor if executor is not None else self.executor

    def _engine(self, engine: str | None) -> str | None:
        return engine if engine is not None else self.engine

    def _budget(self, budget: Budget | None) -> Budget | None:
        return budget if budget is not None else self.budget

    @staticmethod
    def _default_optimize(source: Any, optimize: bool | None) -> bool:
        """AQL text optimizes by default (``run_aql`` parity); built
        expressions run as written (``evaluate`` / ``Q.run`` parity)."""
        if optimize is not None:
            return optimize
        return isinstance(source, str)

    # -- the API ---------------------------------------------------------------

    def prepare(
        self, source: Any, *, optimize: bool | None = None
    ) -> PreparedQuery:
        """Plan ``source`` (Expr | Q | AQL text), served from the cache."""
        return _prepare(
            source,
            self.db,
            optimize=self._default_optimize(source, optimize),
            cache=self.plan_cache,
        )

    def query(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
    ) -> Any:
        """Prepare (or fetch from cache) and execute in one call."""
        prepared = self.prepare(source, optimize=optimize)
        # db=self.db: the cache is shared across views of one base
        # database (snapshots share its cache identity), so the entry
        # may have been planned against a different view — execute
        # against *this* session's view regardless.
        return prepared.run(
            params,
            budget=self._budget(budget),
            executor=self._executor(executor),
            engine=self._engine(engine),
            db=self.db,
        )

    def query_with_metrics(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        metrics: PlanMetrics | None = None,
    ) -> tuple[Any, PlanMetrics]:
        """Like :meth:`query`, also collecting per-operator metrics."""
        prepared = self.prepare(source, optimize=optimize)
        return prepared.run_with_metrics(
            params,
            metrics=metrics,
            budget=self._budget(budget),
            executor=self._executor(executor),
            engine=self._engine(engine),
            db=self.db,
        )

    def explain(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        optimize: bool | None = None,
        analyze: bool = True,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
    ) -> str:
        """EXPLAIN (ANALYZE) with the planning footer.

        With ``analyze`` the query is prepared *under a private
        instrumentation sink* — capturing the plan-cache traffic,
        optimizer rewrites and pattern compilations this call actually
        performed — then executed with per-operator metrics, and both
        are rendered: a warm cache shows ``plan_cache_hits=1`` with zero
        rewrites and zero compilations.
        """
        from .query.explain import explain as render_plan
        from .query.explain import render_analysis, render_planning
        from .storage.stats import Instrumentation

        planning = Instrumentation()
        with planning.activated():
            prepared = self.prepare(source, optimize=optimize)
        if not analyze:
            return "\n".join(
                [render_plan(prepared.plan, self.db), render_planning(planning)]
            )
        _, metrics = prepared.run_with_metrics(
            params,
            budget=self._budget(budget),
            executor=self._executor(executor),
            engine=self._engine(engine),
            db=self.db,
        )
        report = render_analysis(prepared.plan, self.db, metrics)
        return "\n".join([report, render_planning(planning)])

    def snapshot(self) -> "Session":
        """A Session over a pinned copy-on-write snapshot of the view.

        The returned Session sees the database exactly as of this call —
        no later insert, root rebind or index change is visible — and
        inherits this Session's knobs and plan cache.  Snapshotting a
        snapshot re-pins nothing (the view is already immutable).
        """
        return Session(
            self.db.snapshot(),
            executor=self.executor,
            engine=self.engine,
            budget=self.budget,
            plan_cache=self.plan_cache,
        )

    def __repr__(self) -> str:
        knobs = []
        if self.executor is not None:
            knobs.append(f"executor={self.executor}")
        if self.engine is not None:
            knobs.append(f"engine={self.engine}")
        if self.budget is not None:
            knobs.append("budget=set")
        suffix = f" ({', '.join(knobs)})" if knobs else ""
        return f"Session<{self.db!r}>{suffix}"


class SessionPool:
    """A thread-pooled serving front end with snapshot-isolated readers.

    The concurrent counterpart of :class:`Session`: ``submit()`` runs a
    query on a worker thread against a :meth:`Database.snapshot` pinned
    at submission time, so every read observes one consistent version
    cut no matter how many writers commit while it executes.
    ``submit_update()`` routes writes through
    :func:`repro.algebra.update.apply_update`, whose transaction holds
    the database write lock — writers serialize, readers never block.

    All workers share the pool's plan cache (snapshots share the base
    database's cache identity), so a shape warmed by one client is warm
    for every client.  Per-query state — parameter bindings, guards,
    match scopes, predicate bitmaps — is thread-local *and* reset on
    scope exit, so nothing bleeds between queries that happen to reuse
    a worker thread (see the PR-6 regression tests).

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        db: Database,
        *,
        workers: int = 4,
        executor: str | None = None,
        engine: str | None = None,
        budget: Budget | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.db = db
        self.workers = workers
        self._session_knobs = dict(
            executor=executor, engine=engine, budget=budget
        )
        self.plan_cache = plan_cache if plan_cache is not None else DEFAULT_CACHE
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="aqua-session"
        )

    # -- internals -------------------------------------------------------------

    def _session(self, view: Database) -> Session:
        return Session(view, plan_cache=self.plan_cache, **self._session_knobs)

    # -- reads -----------------------------------------------------------------

    def submit(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        snapshot: Database | None = None,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
    ):
        """Schedule ``source`` on a worker; returns a Future.

        The read is pinned to ``snapshot`` when given (obtain one from
        :meth:`pin`), else to a fresh snapshot taken *now*, at
        submission — not when the worker dequeues the job.
        """
        view = snapshot if snapshot is not None else self.db.snapshot()
        session = self._session(view)
        return self._pool.submit(
            session.query,
            source,
            params,
            optimize=optimize,
            budget=budget,
            executor=executor,
            engine=engine,
        )

    def query(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> Any:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(source, params, **kwargs).result()

    def pin(self) -> Database:
        """A snapshot to share across several :meth:`submit` calls."""
        return self.db.snapshot()

    # -- writes ----------------------------------------------------------------

    def submit_update(self, root_name: str, updater, *args: Any, **kwargs: Any):
        """Schedule ``apply_update(db, root_name, updater, ...)``.

        Writers go against the *base* database (never a snapshot) and
        serialize on its write lock; the returned Future resolves to the
        new root value.  A raising updater rolls back and re-raises
        through the Future.
        """
        from .algebra.update import apply_update

        return self._pool.submit(
            apply_update, self.db, root_name, updater, *args, **kwargs
        )

    # -- lifecycle -------------------------------------------------------------

    def close(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait)

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"SessionPool<{self.db!r}, workers={self.workers}>"


def default_session(db: Database) -> Session:
    """The Session behind the legacy entry points.

    Constructed per call (Sessions are cheap handles) but sharing the
    process-wide plan cache, so ``evaluate()`` / ``Q.run()`` /
    ``run_aql()`` transparently benefit from prepared-plan reuse.
    """
    return Session(db)


__all__ = ["Session", "SessionPool", "default_session"]
