"""The unified query API: one Session object, one precedence story.

Every way of running a query — ``evaluate()``, ``Q.run()``,
``run_aql()``, the shell, the benchmarks — now funnels through a
:class:`Session`, which is the *single* place the execution knobs are
resolved.  Precedence, highest first:

1. a per-call keyword (``session.query(q, executor="eager")``);
2. the Session's own keyword (``Session(db, executor="eager")``);
3. the ``AQUA_*`` environment variable (``AQUA_EXECUTOR``,
   ``AQUA_TREE_ENGINE``, budget knobs via
   :meth:`repro.guardrails.Budget.from_env`);
4. the built-in default (``streaming`` / ``memo`` / unlimited).

Values are validated on first read by :mod:`repro.config`; a typo
raises a one-line :class:`~repro.errors.QueryError` naming the knob and
the accepted values instead of failing deep in the stack.

A Session owns a :class:`~repro.query.plan_cache.PlanCache` (shared
process-wide by default), so ``session.query(...)`` transparently
prepares-and-caches: repeated shapes skip the optimizer, the pattern
compilers and the lowering pass.  ``session.prepare(...)`` exposes the
:class:`~repro.query.prepare.PreparedQuery` explicitly for
parameterized workloads.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping, NamedTuple

from . import config
from .errors import QueryError
from .guardrails import Budget
from .query import expr as E
from .query.metrics import PlanMetrics
from .query.plan_cache import DEFAULT_CACHE, PlanCache
from .query.prepare import PreparedQuery, prepare as _prepare
from .serving import (
    AdmissionController,
    BreakerBoard,
    DEFAULT_LADDER,
    DegradationLadder,
    DegradationStep,
    PoolStats,
    RetryPolicy,
    run_with_policy,
)
from .storage.database import Database

#: Sentinel distinguishing "not passed" from an explicit ``None`` for
#: the per-call plan-cache override (``cache=None`` bypasses caching).
_UNSET = object()


class ResolvedKnobs(NamedTuple):
    """One query's fully resolved execution knobs.

    Produced by :meth:`Session.resolve_knobs` — the *single* place the
    per-call > session > environment > default precedence is applied.
    Every entry point (``Session.query``, ``SessionPool.submit``,
    ``run_aql``, ``Q.run``, the shell) funnels through it, so the knob
    names and their precedence cannot drift between APIs.
    """

    optimize: bool
    budget: Budget | None
    executor: str | None
    engine: str | None
    parallel: str | None
    parallel_workers: int | str | None
    cache: Any

    def run_kwargs(self) -> dict:
        """The keywords :meth:`PreparedQuery.run` accepts, ready to splat."""
        return dict(
            budget=self.budget,
            executor=self.executor,
            engine=self.engine,
            parallel=self.parallel,
            parallel_workers=self.parallel_workers,
        )


class Session:
    """A database handle with resolved execution knobs and a plan cache.

    Parameters mirror the knobs: ``executor`` (``streaming`` |
    ``eager``), ``engine`` (tree-pattern engine, ``memo`` |
    ``backtrack``), ``budget`` (a :class:`~repro.guardrails.Budget`),
    ``parallel`` (``on`` | ``off`` — sharded exchange execution),
    ``parallel_workers`` (``auto`` or a worker count; all of a
    process's Sessions draw from one shared worker budget, so pooled
    serving and per-query fan-out compose without multiplying),
    ``plan_cache`` (a :class:`~repro.query.plan_cache.PlanCache`; the
    process-wide default when omitted; ``plan_cache=None`` is replaced
    by that default — pass ``cache=None`` per call via :meth:`prepare`
    to bypass caching).  All are optional; ``None`` defers to the
    environment, then the default.
    """

    def __init__(
        self,
        db: Database,
        *,
        executor: str | None = None,
        engine: str | None = None,
        budget: Budget | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        plan_cache: PlanCache | None = None,
    ) -> None:
        if executor is not None:
            config.validated_executor(executor)
        if engine is not None:
            config.validated_tree_engine(engine)
        if parallel is not None:
            config.validated_parallel(parallel)
        if parallel_workers is not None:
            config.validated_parallel_workers(parallel_workers)
        self.db = db
        self.executor = executor
        self.engine = engine
        self.budget = budget
        self.parallel = parallel
        self.parallel_workers = parallel_workers
        self.plan_cache = plan_cache if plan_cache is not None else DEFAULT_CACHE

    # -- knob resolution -------------------------------------------------------

    @staticmethod
    def _default_optimize(source: Any, optimize: bool | None) -> bool:
        """AQL text optimizes by default (``run_aql`` parity); built
        expressions run as written (``evaluate`` / ``Q.run`` parity)."""
        if optimize is not None:
            return optimize
        return isinstance(source, str)

    def resolve_knobs(
        self,
        source: Any,
        *,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        cache: Any = _UNSET,
    ) -> ResolvedKnobs:
        """Apply the per-call > session precedence once, for every knob.

        (Environment and built-in defaults resolve later, inside
        :mod:`repro.config`, at the point of use — they are thread-local
        scopes, not values.)  This is the shared resolver behind
        :meth:`query`, :meth:`query_with_metrics`, :meth:`explain`,
        ``run_aql`` and ``Q.run``.
        """
        return ResolvedKnobs(
            optimize=self._default_optimize(source, optimize),
            budget=budget if budget is not None else self.budget,
            executor=executor if executor is not None else self.executor,
            engine=engine if engine is not None else self.engine,
            parallel=parallel if parallel is not None else self.parallel,
            parallel_workers=(
                parallel_workers
                if parallel_workers is not None
                else self.parallel_workers
            ),
            cache=self.plan_cache if cache is _UNSET else cache,
        )

    # -- the API ---------------------------------------------------------------

    def prepare(
        self, source: Any, *, optimize: bool | None = None, cache: Any = _UNSET
    ) -> PreparedQuery:
        """Plan ``source`` (Expr | Q | AQL text), served from the cache.

        ``cache`` overrides the Session's plan cache for this call:
        pass ``cache=None`` to plan from scratch without touching the
        shared cache (the serving layer's degradation ladder uses this
        so degraded plans are never cached).
        """
        knobs = self.resolve_knobs(source, optimize=optimize, cache=cache)
        return _prepare(
            source, self.db, optimize=knobs.optimize, cache=knobs.cache
        )

    def query(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        cache: Any = _UNSET,
    ) -> Any:
        """Prepare (or fetch from cache) and execute in one call."""
        knobs = self.resolve_knobs(
            source,
            optimize=optimize,
            budget=budget,
            executor=executor,
            engine=engine,
            parallel=parallel,
            parallel_workers=parallel_workers,
            cache=cache,
        )
        prepared = _prepare(
            source, self.db, optimize=knobs.optimize, cache=knobs.cache
        )
        # db=self.db: the cache is shared across views of one base
        # database (snapshots share its cache identity), so the entry
        # may have been planned against a different view — execute
        # against *this* session's view regardless.
        return prepared.run(params, db=self.db, **knobs.run_kwargs())

    def query_with_metrics(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        metrics: PlanMetrics | None = None,
    ) -> tuple[Any, PlanMetrics]:
        """Like :meth:`query`, also collecting per-operator metrics."""
        knobs = self.resolve_knobs(
            source,
            optimize=optimize,
            budget=budget,
            executor=executor,
            engine=engine,
            parallel=parallel,
            parallel_workers=parallel_workers,
        )
        prepared = _prepare(
            source, self.db, optimize=knobs.optimize, cache=knobs.cache
        )
        return prepared.run_with_metrics(
            params, metrics=metrics, db=self.db, **knobs.run_kwargs()
        )

    def explain(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        optimize: bool | None = None,
        analyze: bool = True,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
    ) -> str:
        """EXPLAIN (ANALYZE) with the planning footer.

        With ``analyze`` the query is prepared *under a private
        instrumentation sink* — capturing the plan-cache traffic,
        optimizer rewrites and pattern compilations this call actually
        performed — then executed with per-operator metrics, and both
        are rendered: a warm cache shows ``plan_cache_hits=1`` with zero
        rewrites and zero compilations.
        """
        from .query.explain import explain as render_plan
        from .query.explain import render_analysis, render_planning
        from .storage.stats import Instrumentation

        knobs = self.resolve_knobs(
            source, optimize=optimize, budget=budget, executor=executor, engine=engine
        )
        planning = Instrumentation()
        with planning.activated():
            prepared = _prepare(
                source, self.db, optimize=knobs.optimize, cache=knobs.cache
            )
        if not analyze:
            return "\n".join(
                [render_plan(prepared.plan, self.db), render_planning(planning)]
            )
        _, metrics = prepared.run_with_metrics(
            params, db=self.db, **knobs.run_kwargs()
        )
        report = render_analysis(prepared.plan, self.db, metrics)
        return "\n".join([report, render_planning(planning)])

    def snapshot(self) -> "Session":
        """A Session over a pinned copy-on-write snapshot of the view.

        The returned Session sees the database exactly as of this call —
        no later insert, root rebind or index change is visible — and
        inherits this Session's knobs and plan cache.  Snapshotting a
        snapshot re-pins nothing (the view is already immutable).
        """
        return Session(
            self.db.snapshot(),
            executor=self.executor,
            engine=self.engine,
            budget=self.budget,
            parallel=self.parallel,
            parallel_workers=self.parallel_workers,
            plan_cache=self.plan_cache,
        )

    def __repr__(self) -> str:
        knobs = []
        if self.executor is not None:
            knobs.append(f"executor={self.executor}")
        if self.engine is not None:
            knobs.append(f"engine={self.engine}")
        if self.budget is not None:
            knobs.append("budget=set")
        if self.parallel is not None:
            knobs.append(f"parallel={self.parallel}")
        if self.parallel_workers is not None:
            knobs.append(f"parallel_workers={self.parallel_workers}")
        suffix = f" ({', '.join(knobs)})" if knobs else ""
        return f"Session<{self.db!r}>{suffix}"


class SessionPool:
    """A thread-pooled serving front end with snapshot-isolated readers.

    The concurrent counterpart of :class:`Session`: ``submit()`` runs a
    query on a worker thread against a :meth:`Database.snapshot` pinned
    at submission time, so every read observes one consistent version
    cut no matter how many writers commit while it executes.
    ``submit_update()`` routes writes through
    :func:`repro.algebra.update.apply_update`, whose transaction holds
    the database write lock — writers serialize, readers never block.

    All workers share the pool's plan cache (snapshots share the base
    database's cache identity), so a shape warmed by one client is warm
    for every client.  Per-query state — parameter bindings, guards,
    match scopes, predicate bitmaps — is thread-local *and* reset on
    scope exit, so nothing bleeds between queries that happen to reuse
    a worker thread (see the PR-6 regression tests).

    **Fault tolerance** (PR 7, all opt-in, see README "Fault-tolerant
    serving"):

    * ``retry_policy`` — a :class:`~repro.serving.RetryPolicy` retries
      reads whose failures classify as *transient* (injected faults,
      deadline pressure, snapshot-pin races), with capped exponential
      backoff under seeded deterministic jitter, each attempt's deadline
      carved out of the caller's overall budget, optional per-attempt
      snapshot re-pin, and the graceful-degradation ladder
      (``ladder``, default :data:`~repro.serving.DEFAULT_LADDER`);
    * ``breakers`` — a :class:`~repro.serving.BreakerBoard` (created
      automatically when a retry policy is set) opens a per-seam
      circuit after repeated failures so a persistently failing index
      or storage path sheds fast instead of burning retry budget;
    * ``max_queue_depth`` / ``max_in_flight`` — admission control:
      excess load is rejected at submission with a structured
      :class:`~repro.errors.ServerOverloadedError` carrying queue
      statistics;
    * ``pool.stats`` — a :class:`~repro.serving.PoolStats` bag counting
      attempts, retries, backoff time, breaker transitions, sheds,
      degraded runs and latency percentiles.

    Writes are **never retried**: the transaction layer makes a failed
    update roll back cleanly, but whether a *commit* landed cannot be
    re-checked from out here, so re-applying is the caller's decision.

    Use as a context manager, or call :meth:`close` when done.
    """

    def __init__(
        self,
        db: Database,
        *,
        workers: int = 4,
        executor: str | None = None,
        engine: str | None = None,
        budget: Budget | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        plan_cache: PlanCache | None = None,
        retry_policy: RetryPolicy | None = None,
        ladder: DegradationLadder | None = DEFAULT_LADDER,
        breakers: BreakerBoard | None = None,
        max_queue_depth: int | None = None,
        max_in_flight: int | None = None,
        pool_stats: PoolStats | None = None,
    ) -> None:
        from concurrent.futures import ThreadPoolExecutor

        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.db = db
        self.workers = workers
        self._session_knobs = dict(
            executor=executor,
            engine=engine,
            budget=budget,
            parallel=parallel,
            parallel_workers=parallel_workers,
        )
        self.plan_cache = plan_cache if plan_cache is not None else DEFAULT_CACHE
        self.retry_policy = retry_policy
        self.ladder = ladder
        self.stats = pool_stats if pool_stats is not None else PoolStats()
        self.breakers = breakers if breakers is not None else BreakerBoard()
        self.breakers.observe(self.stats.note_breaker_transition)
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth, max_in_flight=max_in_flight
        )
        self._closed = False
        self._lifecycle_lock = threading.Lock()
        self._sequence = 0
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="aqua-session"
        )

    # -- internals -------------------------------------------------------------

    def _session(self, view: Database) -> Session:
        return Session(view, plan_cache=self.plan_cache, **self._session_knobs)

    def _next_key(self) -> str:
        """A stable per-request key for the seeded jitter stream."""
        with self._lifecycle_lock:
            self._sequence += 1
            return str(self._sequence)

    def _check_open(self) -> None:
        if self._closed:
            raise QueryError(
                "SessionPool is closed: submit after close() is not allowed"
            )

    def _admit(self) -> None:
        """Admission control for one request; stats-visible shedding."""
        self.stats.note_submitted()
        try:
            self.admission.admit()
        except Exception:
            self.stats.note_shed()
            raise
        self.stats.note_admitted()

    def _schedule(self, fn, *args: Any, **kwargs: Any):
        """Submit to the executor, converting its shutdown error."""
        try:
            return self._pool.submit(fn, *args, **kwargs)
        except RuntimeError as exc:  # racing close(): executor refused
            self.admission.release_unstarted()
            raise QueryError(
                "SessionPool is closed: submit after close() is not allowed"
            ) from exc

    # -- reads -----------------------------------------------------------------

    def submit(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        *,
        snapshot: Database | None = None,
        optimize: bool | None = None,
        budget: Budget | None = None,
        executor: str | None = None,
        engine: str | None = None,
        parallel: str | None = None,
        parallel_workers: int | str | None = None,
        cache: Any = _UNSET,
        retry_policy: RetryPolicy | None | Any = _UNSET,
    ):
        """Schedule ``source`` on a worker; returns a Future.

        The knob keywords (``optimize`` / ``budget`` / ``executor`` /
        ``engine`` / ``parallel`` / ``parallel_workers`` / ``cache``)
        are :meth:`Session.query`'s, with identical precedence — a
        per-call value beats the pool's, which beats the environment.

        The read is pinned to ``snapshot`` when given (obtain one from
        :meth:`pin`), else to a fresh snapshot taken *now*, at
        submission — not when the worker dequeues the job.  When a
        retry policy is active (the pool's, or a per-call override —
        pass ``retry_policy=None`` to disable for one call), transient
        failures are retried as documented on the class; an explicitly
        shared ``snapshot`` is never re-pinned, a pool-pinned one may
        be when the policy asks for it.
        """
        self._check_open()
        self._admit()
        view = snapshot if snapshot is not None else self.db.snapshot()
        policy = self.retry_policy if retry_policy is _UNSET else retry_policy
        effective_budget = (
            budget if budget is not None else self._session_knobs["budget"]
        )
        return self._schedule(
            self._serve_read,
            self._next_key(),
            source,
            params,
            view,
            snapshot is None,  # repinnable only if the pool pinned it
            policy,
            effective_budget,
            dict(
                optimize=optimize,
                executor=executor,
                engine=engine,
                parallel=parallel,
                parallel_workers=parallel_workers,
                cache=cache,
            ),
        )

    def _serve_read(
        self,
        key: str,
        source: Any,
        params: Mapping[str, Any] | None,
        view: Database,
        repinnable: bool,
        policy: RetryPolicy | None,
        budget: Budget | None,
        knobs: dict,
    ) -> Any:
        """Worker-side read path: admission bracket + retry loop."""
        self.admission.begin()
        started = time.perf_counter()
        try:
            result = self._read_attempts(
                key, source, params, view, repinnable, policy, budget, knobs
            )
        except BaseException:
            self.stats.note_failed(time.perf_counter() - started)
            raise
        else:
            self.stats.note_success(time.perf_counter() - started)
            return result
        finally:
            self.admission.finish()

    def _read_attempts(
        self,
        key: str,
        source: Any,
        params: Mapping[str, Any] | None,
        view: Database,
        repinnable: bool,
        policy: RetryPolicy | None,
        budget: Budget | None,
        knobs: dict,
    ) -> Any:
        holder = {"view": view}

        def runner(
            step: DegradationStep | None, attempt_budget: Budget | None
        ) -> Any:
            optimize = knobs["optimize"]
            executor = knobs["executor"]
            engine = knobs["engine"]
            cache: Any = knobs["cache"]
            if step is not None:
                if step.bypass_cache:
                    cache = None
                if step.engine is not None:
                    engine = step.engine
                if step.executor is not None:
                    executor = step.executor
                if step.optimize is not None:
                    optimize = step.optimize
            session = self._session(holder["view"])
            return session.query(
                source,
                params,
                optimize=optimize,
                budget=attempt_budget if attempt_budget is not None else budget,
                executor=executor,
                engine=engine,
                parallel=knobs["parallel"],
                parallel_workers=knobs["parallel_workers"],
                cache=cache,
            )

        if policy is None:
            self.stats.note_attempt()
            return runner(None, budget)

        def repin() -> None:
            holder["view"] = self.db.snapshot()

        return run_with_policy(
            runner,
            policy=policy,
            key=key,
            budget=budget,
            breakers=self.breakers,
            ladder=self.ladder,
            stats=self.stats,
            repin=repin if repinnable else None,
        )

    def query(
        self,
        source: Any,
        params: Mapping[str, Any] | None = None,
        **kwargs: Any,
    ) -> Any:
        """Synchronous convenience: ``submit(...).result()``."""
        return self.submit(source, params, **kwargs).result()

    def pin(self) -> Database:
        """A snapshot to share across several :meth:`submit` calls."""
        return self.db.snapshot()

    # -- writes ----------------------------------------------------------------

    def submit_update(self, root_name: str, updater, *args: Any, **kwargs: Any):
        """Schedule ``apply_update(db, root_name, updater, ...)``.

        Writers go against the *base* database (never a snapshot) and
        serialize on its write lock; the returned Future resolves to the
        new root value.  A raising updater rolls back and re-raises
        through the Future.  Updates pass admission control like reads
        but are never retried (see the class docstring).
        """
        from .algebra.update import apply_update

        self._check_open()
        self._admit()
        return self._schedule(
            self._serve_update, apply_update, root_name, updater, args, kwargs
        )

    def _serve_update(self, apply_update, root_name, updater, args, kwargs):
        self.admission.begin()
        started = time.perf_counter()
        self.stats.note_attempt()
        try:
            result = apply_update(self.db, root_name, updater, *args, **kwargs)
        except BaseException:
            self.stats.note_failed(time.perf_counter() - started)
            raise
        else:
            self.stats.note_success(time.perf_counter() - started)
            return result
        finally:
            self.admission.finish()

    # -- observability ---------------------------------------------------------

    def observability(self) -> dict:
        """One JSON-ready report: pool stats, breakers, admission."""
        return {
            "pool": self.stats.snapshot(),
            "breakers": self.breakers.snapshot(),
            "admission": self.admission.snapshot(),
        }

    # -- lifecycle -------------------------------------------------------------

    def close(self, wait: bool = True, *, cancel_futures: bool = False) -> None:
        """Shut the pool down; idempotent.

        ``cancel_futures=True`` additionally cancels queued work that
        has not started executing (their Futures report cancelled).
        Further ``submit`` / ``submit_update`` calls raise a
        :class:`~repro.errors.QueryError` instead of the executor's raw
        ``RuntimeError``.
        """
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:
        suffix = ", closed" if self._closed else ""
        return f"SessionPool<{self.db!r}, workers={self.workers}{suffix}>"


def default_session(db: Database) -> Session:
    """The Session behind the legacy entry points.

    Constructed per call (Sessions are cheap handles) but sharing the
    process-wide plan cache, so ``evaluate()`` / ``Q.run()`` /
    ``run_aql()`` transparently benefit from prepared-plan reuse.
    """
    return Session(db)


__all__ = ["Session", "SessionPool", "default_session"]
