"""Parameterized equality, per §2 of the paper.

Because every AQUA entity has identity, "are these equal?" has several
legitimate answers.  AQUA therefore lets queries pass an equality notion as
a parameter (e.g. to set ``union``).  This module provides the standard
notions as first-class strategy objects:

* :data:`IDENTITY` — same object (same OID).
* :data:`SHALLOW` — same stored attribute values, compared with ``==``
  (one level deep; attribute values that are themselves objects are
  compared by identity).
* :data:`DEEP` — structural equality that recursively descends into
  database objects, cells, tuples, lists and dicts.

Each strategy is both an equivalence predicate and a key function, so the
set/multiset algebra can use hash-based implementations.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from .identity import Cell, DatabaseObject


class Equality:
    """An equality notion usable by algebra operators.

    ``eq(a, b)`` decides equivalence and ``key(a)`` produces a hashable
    canonical key such that ``eq(a, b)`` iff ``key(a) == key(b)``.  The
    ``key`` contract is what allows linear-time duplicate elimination.
    """

    def __init__(
        self,
        name: str,
        eq: Callable[[Any, Any], bool],
        key: Callable[[Any], Hashable],
    ) -> None:
        self.name = name
        self._eq = eq
        self._key = key

    def eq(self, a: Any, b: Any) -> bool:
        return self._eq(a, b)

    def key(self, value: Any) -> Hashable:
        return self._key(value)

    def __call__(self, a: Any, b: Any) -> bool:
        return self.eq(a, b)

    def __repr__(self) -> str:
        return f"Equality({self.name})"


def _identity_key(value: Any) -> Hashable:
    if isinstance(value, DatabaseObject):
        return ("oid", value.oid)
    return ("val", _hashable(value))


def _hashable(value: Any) -> Hashable:
    """Coerce arbitrary values into something hashable for keying."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(_hashable(v) for v in value)
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _shallow_key(value: Any) -> Hashable:
    if isinstance(value, Cell):
        return _shallow_key(value.contents)
    if isinstance(value, DatabaseObject):
        attrs = value.stored_attributes()
        return (
            type(value).__name__,
            tuple(sorted((k, _identity_key(v)) for k, v in attrs.items())),
        )
    return ("val", _hashable(value))


def _deep_key(value: Any, _depth: int = 0) -> Hashable:
    if _depth > 64:
        raise RecursionError("deep equality exceeded recursion budget")
    if isinstance(value, Cell):
        return _deep_key(value.contents, _depth + 1)
    if isinstance(value, DatabaseObject):
        attrs = value.stored_attributes()
        return (
            type(value).__name__,
            tuple(sorted((k, _deep_key(v, _depth + 1)) for k, v in attrs.items())),
        )
    if isinstance(value, (list, tuple)):
        return tuple(_deep_key(v, _depth + 1) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _deep_key(v, _depth + 1)) for k, v in value.items()))
    return ("val", _hashable(value))


IDENTITY = Equality("identity", lambda a, b: _identity_key(a) == _identity_key(b), _identity_key)
SHALLOW = Equality("shallow", lambda a, b: _shallow_key(a) == _shallow_key(b), _shallow_key)
DEEP = Equality("deep", lambda a, b: _deep_key(a) == _deep_key(b), _deep_key)

#: The default equality used by operators when none is supplied.
DEFAULT = IDENTITY
