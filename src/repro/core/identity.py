"""Object identity: OIDs, database objects, and cells.

The AQUA data model (paper §2) is object-oriented: *every* entity has
identity.  Lists and trees additionally require their node sets to be real
sets (no duplicate members), yet users want the same conceptual object to
appear several times in one list or tree.  The paper resolves this with the
``Cell[T]`` type: a node of a list or tree is a cell whose only job is to
hold the identity of the element object.  Two cells are always distinct
objects even when they reference the same contents, so duplicates are
representable while node sets remain sets.

Query operators "implicitly dereference the contents of the cell" (§2);
in this library that dereferencing is performed by the algebra layer via
:func:`deref`.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

#: Module-level monotonically increasing OID source.  A plain counter is
#: sufficient for a single-process, in-memory OODB substrate.
_OID_COUNTER: Iterator[int] = itertools.count(1)


def fresh_oid() -> int:
    """Return a process-unique object identifier."""
    return next(_OID_COUNTER)


class DatabaseObject:
    """Base class for objects with AQUA identity.

    Subclasses get an ``oid`` assigned at construction time.  Equality and
    hashing default to *identity* equality (the strictest of the equality
    notions in §2); value-based equality is provided separately by
    :mod:`repro.core.equality` so operators can be parameterized by it.
    """

    __slots__ = ("oid",)

    def __init__(self) -> None:
        self.oid = fresh_oid()

    def __eq__(self, other: object) -> bool:
        return self is other

    def __hash__(self) -> int:
        return object.__hash__(self)

    def stored_attributes(self) -> dict[str, Any]:
        """Return the stored (non-computed) attributes of this object.

        Alphabet-predicates may only consult stored attributes (§3.1); the
        optimizer uses this hook to verify that constraint.  The default
        implementation exposes everything in ``__dict__`` plus declared
        ``__slots__`` values.
        """
        attrs: dict[str, Any] = {}
        for klass in type(self).__mro__:
            for name in getattr(klass, "__slots__", ()):
                if name != "oid" and hasattr(self, name):
                    attrs[name] = getattr(self, name)
        attrs.update(getattr(self, "__dict__", {}))
        return attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} oid={self.oid}>"


class Record(DatabaseObject):
    """A generic database object with keyword-supplied stored attributes.

    ``Record(name="Mat", citizen="Brazil")`` is the idiomatic way for the
    examples and workloads to build typed-ish payload objects without
    declaring a class per experiment.
    """

    def __init__(self, **attributes: Any) -> None:
        super().__init__()
        for name, value in attributes.items():
            setattr(self, name, value)

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in sorted(self.__dict__.items()))
        return f"Record({attrs})"


class Cell(DatabaseObject):
    """A node-holder: a unique object referencing the actual list/tree element.

    ``List[T]`` is shorthand for ``List[Cell[T]]`` (§2).  Cells compare by
    identity; the *contents* may be shared between many cells.
    """

    __slots__ = ("contents",)

    def __init__(self, contents: Any) -> None:
        super().__init__()
        self.contents = contents

    def __repr__(self) -> str:
        return f"Cell(oid={self.oid}, contents={self.contents!r})"


def as_cell(value: Any) -> Cell:
    """Wrap ``value`` in a fresh :class:`Cell` unless it already is one."""
    if isinstance(value, Cell):
        return value
    return Cell(value)


def deref(value: Any) -> Any:
    """Implicitly dereference a cell, per §2 of the paper.

    Non-cell values pass through unchanged, which lets the algebra layer be
    agnostic about whether a caller handed it raw payloads or cells.
    """
    if isinstance(value, Cell):
        return value.contents
    return value
