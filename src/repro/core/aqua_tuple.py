"""The AQUA ``Tuple`` type constructor (paper §2).

AQUA tuples are positional records written ``⟨x, y, z⟩`` in the paper; the
``split`` examples build them with the tuple-formation function
``λ(x, y, z)⟨x, y, z⟩`` and project them with the functions ``1``, ``2``,
``3`` (e.g. ``f(1(a), 2(a))`` in the ``all_anc`` definition).  We mirror
that with 1-based :meth:`AquaTuple.project` plus Python-native 0-based
indexing.
"""

from __future__ import annotations

from typing import Any, Iterator

from ..errors import TypeMismatchError


class AquaTuple:
    """An immutable positional tuple with 1-based paper-style projection."""

    __slots__ = ("_items",)

    def __init__(self, *items: Any) -> None:
        self._items = tuple(items)

    @property
    def arity(self) -> int:
        return len(self._items)

    def project(self, position: int) -> Any:
        """Paper-style projection: ``project(1)`` is the first component."""
        if not 1 <= position <= len(self._items):
            raise TypeMismatchError(
                f"projection {position} out of range for arity {len(self._items)}"
            )
        return self._items[position - 1]

    def __getitem__(self, index: int) -> Any:
        return self._items[index]

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AquaTuple):
            return self._items == other._items
        if isinstance(other, tuple):
            return self._items == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("AquaTuple", self._items))

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self._items)
        return f"⟨{inner}⟩"


def make_tuple(*items: Any) -> AquaTuple:
    """Tuple formation, the ``⟨...⟩`` of the paper."""
    return AquaTuple(*items)
