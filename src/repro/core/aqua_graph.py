"""A minimal AQUA ``Graph`` bulk type (paper §2).

The paper lists ``Graph`` among AQUA's type constructors but defines no
graph-specific query operators (related work points at GraphDB [14]).
This module provides the constructor itself so the bulk-type family is
complete, with the two operators every bulk type shares — ``select``
and ``apply`` — given their natural graph semantics:

* ``select(p)`` keeps the satisfying nodes and the edges *between*
  them (the induced subgraph).  Unlike trees there is no meaningful
  order-contraction for arbitrary graphs, so no edges are synthesized;
  this matches the set-operators-generalize design rule of §2 (a graph
  with no edges behaves exactly like a set).
* ``apply(f)`` maps payloads, preserving the edge structure.

Nodes are cells, so duplicate payloads are representable, exactly as in
lists and trees.  Trees embed via :func:`from_tree`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from ..errors import TypeMismatchError
from .aqua_set import AquaSet
from .aqua_tree import AquaTree
from .identity import Cell, as_cell, deref


class AquaGraph:
    """A directed graph of cells with ordered adjacency lists."""

    def __init__(self) -> None:
        self._nodes: list[Cell] = []
        self._successors: dict[int, list[Cell]] = {}

    # -- construction -------------------------------------------------------

    def add_node(self, payload: Any) -> Cell:
        cell = as_cell(payload)
        if id(cell) in self._successors:
            raise TypeMismatchError("cell is already a node of this graph")
        self._nodes.append(cell)
        self._successors[id(cell)] = []
        return cell

    def add_edge(self, source: Cell, target: Cell) -> None:
        if id(source) not in self._successors or id(target) not in self._successors:
            raise TypeMismatchError("both endpoints must be nodes of this graph")
        self._successors[id(source)].append(target)

    @classmethod
    def from_edges(
        cls, payloads: Iterable[Any], edges: Iterable[tuple[int, int]]
    ) -> "AquaGraph":
        """Build from payloads plus (source-index, target-index) pairs."""
        graph = cls()
        cells = [graph.add_node(p) for p in payloads]
        for source, target in edges:
            graph.add_edge(cells[source], cells[target])
        return graph

    @classmethod
    def from_tree(cls, tree: AquaTree) -> "AquaGraph":
        """Embed a tree: same cells, parent→child edges."""
        graph = cls()
        if tree.root is None:
            return graph
        mapping: dict[int, Cell] = {}
        for node in tree.element_nodes():
            mapping[id(node)] = graph.add_node(node.item)
        for parent, child in tree.edges():
            if parent.is_concat_point or child.is_concat_point:
                continue
            graph.add_edge(mapping[id(parent)], mapping[id(child)])
        return graph

    # -- inspection ------------------------------------------------------------

    def nodes(self) -> list[Cell]:
        return list(self._nodes)

    def values(self) -> list[Any]:
        return [deref(cell) for cell in self._nodes]

    def successors(self, node: Cell) -> list[Cell]:
        return list(self._successors[id(node)])

    def edges(self) -> Iterator[tuple[Cell, Cell]]:
        for node in self._nodes:
            for successor in self._successors[id(node)]:
                yield (node, successor)

    def node_count(self) -> int:
        return len(self._nodes)

    def edge_count(self) -> int:
        return sum(len(s) for s in self._successors.values())

    # -- the shared bulk-type operators ---------------------------------------------

    def select(self, predicate: Callable[[Any], bool]) -> "AquaGraph":
        """The induced subgraph over satisfying nodes."""
        result = AquaGraph()
        kept: dict[int, Cell] = {}
        for cell in self._nodes:
            if predicate(deref(cell)):
                kept[id(cell)] = cell
                result._nodes.append(cell)
                result._successors[id(cell)] = []
        for cell in result._nodes:
            for successor in self._successors[id(cell)]:
                if id(successor) in kept:
                    result._successors[id(cell)].append(successor)
        return result

    def apply(self, function: Callable[[Any], Any]) -> "AquaGraph":
        """An isomorphic graph of ``f``-images (fresh cells)."""
        result = AquaGraph()
        mapping: dict[int, Cell] = {}
        for cell in self._nodes:
            mapping[id(cell)] = result.add_node(function(deref(cell)))
        for source, target in self.edges():
            result.add_edge(mapping[id(source)], mapping[id(target)])
        return result

    def node_set(self) -> AquaSet:
        """The nodes as an AQUA set — a graph with no edges *is* a set."""
        return AquaSet(self._nodes)

    # -- reachability helpers -----------------------------------------------------

    def reachable_from(self, node: Cell) -> list[Cell]:
        """Nodes reachable from ``node`` (inclusive), DFS preorder."""
        seen: set[int] = set()
        order: list[Cell] = []
        stack = [node]
        while stack:
            current = stack.pop()
            if id(current) in seen:
                continue
            seen.add(id(current))
            order.append(current)
            stack.extend(reversed(self._successors[id(current)]))
        return order

    def __repr__(self) -> str:
        return f"AquaGraph(nodes={self.node_count()}, edges={self.edge_count()})"
