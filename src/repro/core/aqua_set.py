"""AQUA sets and multisets (paper §2; operators from the DBPL'93 algebra).

The ICDE'95 list/tree operators were designed to *generalize* the existing
set and multiset operators, and the paper leans on that correspondence: a
tree or list with an empty edge set behaves exactly like a set under the
shared operators.  This module implements the unordered substrate the
paper assumes: ``select``, ``apply``, ``fold``, ``union``, ``intersection``
and ``difference`` (all parameterizable by an :class:`~repro.core.equality.
Equality` notion), plus duplicate elimination and cartesian product.

Both collections preserve *insertion order of representatives* internally.
That is an implementation convenience (it makes results deterministic and
testable); semantically they remain unordered, and ``__eq__`` ignores
order.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Hashable, Iterable, Iterator

from ..errors import TypeMismatchError
from .aqua_tuple import AquaTuple
from .equality import DEFAULT, Equality


class AquaSet:
    """An AQUA set: no duplicates under the set's equality notion.

    The equality notion is fixed at construction (it determines membership)
    but binary operators accept an override, mirroring the paper's
    "equality as a parameter to some of its operators".
    """

    __slots__ = ("_items", "_keys", "equality")

    def __init__(self, items: Iterable[Any] = (), equality: Equality = DEFAULT) -> None:
        self.equality = equality
        self._items: list[Any] = []
        self._keys: set[Hashable] = set()
        for item in items:
            self.add(item)

    # -- basic protocol ---------------------------------------------------

    def add(self, item: Any) -> bool:
        """Insert ``item``; return True if it was new under this equality."""
        key = self.equality.key(item)
        if key in self._keys:
            return False
        self._keys.add(key)
        self._items.append(item)
        return True

    def __contains__(self, item: Any) -> bool:
        return self.equality.key(item) in self._keys

    def __iter__(self) -> Iterator[Any]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AquaSet):
            return self._keys == other._keys
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._keys))

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self._items)
        return f"AquaSet{{{inner}}}"

    # -- query operators --------------------------------------------------

    def select(self, predicate: Callable[[Any], bool]) -> "AquaSet":
        """All members satisfying ``predicate`` (a unary boolean function)."""
        return AquaSet((i for i in self._items if predicate(i)), self.equality)

    def apply(self, function: Callable[[Any], Any]) -> "AquaSet":
        """Apply ``function`` to every member (the set functor/map)."""
        return AquaSet((function(i) for i in self._items), self.equality)

    def fold(self, function: Callable[[Any, Any], Any], initial: Any) -> Any:
        """Structural reduction: ``fold(f, z)`` combines members into ``z``.

        AQUA's ``fold`` is the set-structure catamorphism; ``split`` is its
        order-preserving, pattern-driven analog for trees (paper §4).
        """
        accumulator = initial
        for item in self._items:
            accumulator = function(accumulator, item)
        return accumulator

    def union(self, other: "AquaSet", equality: Equality | None = None) -> "AquaSet":
        eq = equality or self.equality
        result = AquaSet(self._items, eq)
        for item in other:
            result.add(item)
        return result

    def intersection(self, other: "AquaSet", equality: Equality | None = None) -> "AquaSet":
        eq = equality or self.equality
        other_keys = {eq.key(i) for i in other}
        return AquaSet((i for i in self._items if eq.key(i) in other_keys), eq)

    def difference(self, other: "AquaSet", equality: Equality | None = None) -> "AquaSet":
        eq = equality or self.equality
        other_keys = {eq.key(i) for i in other}
        return AquaSet((i for i in self._items if eq.key(i) not in other_keys), eq)

    def product(self, other: "AquaSet") -> "AquaSet":
        """Cartesian product; pairs are :class:`AquaTuple` of arity 2."""
        return AquaSet(
            (AquaTuple(a, b) for a in self._items for b in other),
            self.equality,
        )

    def exists(self, predicate: Callable[[Any], bool]) -> bool:
        return any(predicate(i) for i in self._items)

    def for_all(self, predicate: Callable[[Any], bool]) -> bool:
        return all(predicate(i) for i in self._items)


class AquaMultiset:
    """An AQUA multiset (bag): membership with multiplicity.

    Multiplicities follow the conventional bag algebra: ``union`` adds
    them, ``intersection`` takes the minimum and ``difference`` subtracts
    (floored at zero).
    """

    __slots__ = ("_counts", "_representatives", "equality")

    def __init__(self, items: Iterable[Any] = (), equality: Equality = DEFAULT) -> None:
        self.equality = equality
        self._counts: Counter = Counter()
        self._representatives: dict[Hashable, Any] = {}
        for item in items:
            self.add(item)

    def add(self, item: Any, count: int = 1) -> None:
        if count < 0:
            raise TypeMismatchError("multiset multiplicities cannot be negative")
        key = self.equality.key(item)
        self._counts[key] += count
        self._representatives.setdefault(key, item)

    def count(self, item: Any) -> int:
        return self._counts[self.equality.key(item)]

    def __contains__(self, item: Any) -> bool:
        return self.count(item) > 0

    def __iter__(self) -> Iterator[Any]:
        for key, count in self._counts.items():
            representative = self._representatives[key]
            for _ in range(count):
                yield representative

    def __len__(self) -> int:
        return sum(self._counts.values())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AquaMultiset):
            return self._counts == other._counts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        inner = ", ".join(repr(i) for i in self)
        return f"AquaMultiset{{{inner}}}"

    # -- query operators --------------------------------------------------

    def select(self, predicate: Callable[[Any], bool]) -> "AquaMultiset":
        result = AquaMultiset((), self.equality)
        for key, count in self._counts.items():
            representative = self._representatives[key]
            if predicate(representative):
                result.add(representative, count)
        return result

    def apply(self, function: Callable[[Any], Any]) -> "AquaMultiset":
        result = AquaMultiset((), self.equality)
        for key, count in self._counts.items():
            result.add(function(self._representatives[key]), count)
        return result

    def fold(self, function: Callable[[Any, Any], Any], initial: Any) -> Any:
        accumulator = initial
        for item in self:
            accumulator = function(accumulator, item)
        return accumulator

    def union(self, other: "AquaMultiset") -> "AquaMultiset":
        result = AquaMultiset((), self.equality)
        for key, count in self._counts.items():
            result.add(self._representatives[key], count)
        for item in other:
            result.add(item)
        return result

    def intersection(self, other: "AquaMultiset") -> "AquaMultiset":
        result = AquaMultiset((), self.equality)
        for key, count in self._counts.items():
            representative = self._representatives[key]
            other_count = other.count(representative)
            if other_count:
                result.add(representative, min(count, other_count))
        return result

    def difference(self, other: "AquaMultiset") -> "AquaMultiset":
        result = AquaMultiset((), self.equality)
        for key, count in self._counts.items():
            representative = self._representatives[key]
            remaining = count - other.count(representative)
            if remaining > 0:
                result.add(representative, remaining)
        return result

    def dup_elim(self) -> AquaSet:
        """Collapse to an :class:`AquaSet` of representatives."""
        return AquaSet(self._representatives.values(), self.equality)
