"""Concatenation points: labeled NULLs (paper §3.3 and §3.5).

Regular-expression concatenation does not generalize directly to trees
because it is not clear *where* the right operand should attach.  The paper
adopts *concatenation points* (after Doner; Thatcher & Wright): designated
leaves labeled ``α``, ``α1``, ``α2``, ... mark the attachment sites, and
concatenation is parameterized by a label, written ``∘α``.

Concatenation points also appear in *instances* (not just patterns): when a
concatenation point occurs in a list or tree it is treated as a **labeled
NULL**.  Only the concatenation operator can observe such NULLs (§3.5);
every query operator skips over them.  This is the mechanism that lets
``split`` hand back three pieces that reassemble exactly into the input.
"""

from __future__ import annotations

from typing import Any


class ConcatPoint:
    """A labeled NULL / attachment site.

    Instances are value objects: two concatenation points are equal iff
    their labels are equal, so a pattern and a piece produced by ``split``
    agree on which sites line up.  The conventional plain point ``α`` is
    represented by the empty-string label and prints as ``@``; subscripted
    points ``α1``, ``α2`` carry their subscript as the label and print as
    ``@1``, ``@2``.
    """

    __slots__ = ("label",)

    #: Label reserved for the single anonymous point ``α``.
    PLAIN = ""

    def __init__(self, label: str = PLAIN) -> None:
        self.label = str(label)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConcatPoint) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("ConcatPoint", self.label))

    def __repr__(self) -> str:
        return f"ConcatPoint({self.label!r})"

    def __str__(self) -> str:
        return f"@{self.label}"


#: The anonymous concatenation point ``α``.
ALPHA = ConcatPoint()


def alpha(label: int | str = ConcatPoint.PLAIN) -> ConcatPoint:
    """Convenience constructor: ``alpha(1)`` is ``α1``; ``alpha()`` is ``α``."""
    return ConcatPoint(str(label))


def is_concat_point(value: Any) -> bool:
    """True when ``value`` is a labeled NULL (concatenation point)."""
    return isinstance(value, ConcatPoint)


class Nil:
    """The NULL tree/list.

    Concatenating :data:`NIL` into a concatenation point *deletes* the
    labeled leaf — this is how the "last iteration" of an iterative
    self-concatenation closes off remaining points (§3.3).  ``Nil`` is a
    singleton.
    """

    _instance: "Nil | None" = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NIL"


#: The unique NULL structure.
NIL = Nil()
