"""Core AQUA data model: identity, equality, bulk types, concatenation.

This package implements §2 and §3.5 of the paper: the object model with
identity and cells, parameterized equality, the unordered bulk types (set,
multiset, tuple) from the DBPL'93 algebra, the ordered bulk types (list,
tree) with labeled-NULL concatenation points, and the textual notation
used throughout the paper's figures.
"""

from .aqua_graph import AquaGraph
from .aqua_list import AquaList
from .aqua_set import AquaMultiset, AquaSet
from .aqua_tree import AquaTree, TreeNode, subtree_at, tree
from .aqua_tuple import AquaTuple, make_tuple
from .concat import ALPHA, NIL, ConcatPoint, Nil, alpha, is_concat_point
from .equality import DEEP, DEFAULT, IDENTITY, SHALLOW, Equality
from .identity import Cell, DatabaseObject, Record, as_cell, deref, fresh_oid
from .notation import format_list, format_tree, parse_list, parse_tree

__all__ = [
    "ALPHA",
    "AquaGraph",
    "AquaList",
    "AquaMultiset",
    "AquaSet",
    "AquaTree",
    "AquaTuple",
    "Cell",
    "ConcatPoint",
    "DatabaseObject",
    "DEEP",
    "DEFAULT",
    "Equality",
    "IDENTITY",
    "NIL",
    "Nil",
    "Record",
    "SHALLOW",
    "TreeNode",
    "alpha",
    "as_cell",
    "deref",
    "format_list",
    "format_tree",
    "fresh_oid",
    "is_concat_point",
    "make_tuple",
    "parse_list",
    "parse_tree",
    "subtree_at",
    "tree",
]
